"""End-to-end integration tests across subsystems.

These exercise realistic multi-step workflows — the paths a downstream
user strings together — rather than single modules.
"""

import numpy as np
import pytest

import repro
from repro.baselines import SAGS, MoSSo, Randomized, SWeG
from repro.binaryio import read_summary_binary, write_summary_binary
from repro.core.validate import check_summary
from repro.graph.io import read_summary, write_summary
from repro.graph.transform import largest_component, remove_edges
from repro.queries import SummaryIndex


ALGORITHMS = [
    ("LDME5", lambda: repro.LDME(k=5, iterations=6, seed=0)),
    ("LDME20", lambda: repro.LDME(k=20, iterations=6, seed=0)),
    ("SWeG", lambda: SWeG(iterations=4, seed=0)),
    ("MoSSo", lambda: MoSSo(seed=0, sample_size=10)),
    ("SAGS", lambda: SAGS(seed=0, rounds=2)),
    ("Randomized", lambda: Randomized(seed=0, max_passes=2)),
]


@pytest.fixture(scope="module")
def pipeline_graph():
    return repro.web_host_graph(num_hosts=6, host_size=12, seed=21)


class TestEveryAlgorithmFullPipeline:
    @pytest.mark.parametrize("name,factory", ALGORITHMS)
    def test_summarize_validate_store_query(self, tmp_path, pipeline_graph,
                                            name, factory):
        graph = pipeline_graph
        summary = factory().summarize(graph)
        # 1. structural validity + losslessness
        assert check_summary(summary, graph) == [], name
        # 2. text round trip
        text_path = tmp_path / f"{name}.summary"
        write_summary(summary, text_path)
        loaded = read_summary(text_path)
        assert repro.reconstruct(loaded) == graph
        # 3. binary round trip
        bin_path = tmp_path / f"{name}.ldmeb"
        write_summary_binary(summary, bin_path)
        loaded_bin = read_summary_binary(bin_path)
        assert repro.reconstruct(loaded_bin) == graph
        # 4. queries on the loaded summary agree with the graph
        index = SummaryIndex(loaded_bin)
        for v in range(0, graph.num_nodes, 13):
            assert index.neighbors(v) == graph.neighbors(v).tolist()


class TestPreprocessThenSummarize:
    def test_component_extraction_pipeline(self):
        # Disconnect the graph, extract the giant component, summarize it.
        base = repro.web_host_graph(num_hosts=5, host_size=10, seed=8)
        cut = remove_edges(
            base, [e for e in base.edges() if e[0] < 10]
        )
        giant, ids = largest_component(cut)
        summary = repro.LDME(k=5, iterations=5, seed=0).summarize(giant)
        assert repro.reconstruct(summary) == giant
        assert ids.size == giant.num_nodes


class TestLossyToQueries:
    def test_lossy_summary_queries_within_bound(self, pipeline_graph):
        epsilon = 0.3
        summary = repro.LDME(k=5, iterations=6, seed=0,
                             epsilon=epsilon).summarize(pipeline_graph)
        repro.verify_error_bound(pipeline_graph, summary, epsilon)
        index = SummaryIndex(summary)
        # Per-node neighbourhood error stays within ε·|N_v|.
        for v in range(pipeline_graph.num_nodes):
            truth = set(pipeline_graph.neighbors(v).tolist())
            answer = set(index.neighbors(v))
            err = len(truth - answer) + len(answer - truth)
            assert err <= epsilon * len(truth) + 1e-9


class TestDynamicToStatic:
    def test_stream_snapshot_matches_static_run_quality(self):
        graph = repro.web_host_graph(num_hosts=5, host_size=12, seed=4)
        ds = repro.DynamicSummarizer(graph.num_nodes, sample_size=20, seed=0)
        for u, v in graph.edges():
            ds.insert(u, v)
        dynamic = ds.snapshot()
        static = repro.LDME(k=5, iterations=10, seed=0).summarize(graph)
        assert repro.reconstruct(dynamic) == graph
        # Both compress; the static batch algorithm should not be wildly
        # worse than the incremental one.
        assert static.compression > 0
        assert dynamic.compression > 0


class TestDistributedAgreement:
    def test_simulated_and_serial_agree(self, pipeline_graph):
        serial = repro.LDME(k=5, iterations=4, seed=9).summarize(pipeline_graph)
        simulated = repro.run_distributed(
            repro.LDME(k=5, iterations=4, seed=9), pipeline_graph,
            repro.ClusterSpec(num_workers=4),
        )
        assert simulated.summarization.objective == serial.objective

    def test_multiprocess_output_valid(self, pipeline_graph):
        from repro.distributed.multiprocess import _fork_available

        if not _fork_available():
            pytest.skip("no fork on this platform")
        result = repro.MultiprocessLDME(
            k=5, iterations=3, seed=0, num_workers=2
        ).summarize(pipeline_graph)
        assert check_summary(result, pipeline_graph) == []


class TestSizeAccounting:
    def test_bit_model_tracks_real_file_size_ordering(self, tmp_path,
                                                      pipeline_graph):
        loose = repro.LDME(k=20, iterations=2, seed=0).summarize(pipeline_graph)
        tight = repro.LDME(k=2, iterations=12, seed=0).summarize(pipeline_graph)
        assert tight.objective <= loose.objective
        loose_bits = repro.size_report(pipeline_graph, loose).summary_bits
        tight_bits = repro.size_report(pipeline_graph, tight).summary_bits
        loose_file = write_summary_binary(loose, tmp_path / "loose.ldmeb")
        tight_file = write_summary_binary(tight, tmp_path / "tight.ldmeb")
        # The bit model and the real serializer must agree on which
        # summary is smaller.
        assert (tight_bits <= loose_bits) == (tight_file <= loose_file)
