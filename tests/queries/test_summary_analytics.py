"""Accuracy contract of the summary-native analytics estimators.

Property-based: on random graphs summarized at random ``k``/seeds, every
:class:`~repro.queries.summary_analytics.SummaryAnalytics` estimator must
sit within its own declared bound of the exact
:mod:`repro.queries.analytics` answer computed by reconstruction — for
lossless *and* lossy (ε > 0) summaries. At ε = 0 the degree vector and
histogram must be **bit-for-bit** equal to ground truth (and, lossless
summaries being exact, to the original graph).

Also pinned here: the adjacency-snapshot memoization bug fix (triangle /
diameter / modularity passes reconstruct each neighbourhood exactly once
per index, not once per call) and the slice/merge scatter-gather
identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ldme import LDME
from repro.graph.graph import Graph
from repro.queries import analytics as exact
from repro.queries.compiled import CompiledSummaryIndex
from repro.queries.summary_analytics import (
    SummaryAnalytics,
    execute_analytics,
    merge_slices,
    summary_slice,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def graphs(draw, max_nodes=28, max_edges=80):
    """A small random simple graph (possibly with isolated nodes)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if n < 2 or num_edges == 0:
        return Graph.from_edges(n, [])
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    return Graph.from_edge_arrays(n, src, dst)


summarizer_params = st.tuples(
    st.integers(min_value=2, max_value=6),      # k
    st.integers(min_value=1, max_value=5),      # iterations
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)

epsilons = st.sampled_from([0.0, 0.1, 0.3, 0.5])


def compiled(graph, params, epsilon=0.0):
    k, iterations, seed = params
    summary = LDME(
        k=k, iterations=iterations, seed=seed, epsilon=epsilon
    ).summarize(graph)
    return CompiledSummaryIndex(summary)


def exact_degrees(index):
    snapshot = exact.adjacency_snapshot(index)
    return np.asarray([len(s) for s in snapshot], dtype=np.int64)


# ---------------------------------------------------------------------------
# estimate-within-bound properties
# ---------------------------------------------------------------------------


class TestBounds:
    @settings(max_examples=25, deadline=None)
    @given(graphs(), summarizer_params, epsilons)
    def test_degree_exact_on_reconstruction(self, graph, params, eps):
        """Degrees are exact vs the reconstruction at *every* ε — the
        estimator reads the same structures reconstruction expands."""
        index = compiled(graph, params, eps)
        analytics = SummaryAnalytics(index, epsilon=eps)
        assert np.array_equal(analytics.degrees(), exact_degrees(index))

    @settings(max_examples=25, deadline=None)
    @given(graphs(), summarizer_params, epsilons)
    def test_degree_histogram_exact_on_reconstruction(
        self, graph, params, eps
    ):
        index = compiled(graph, params, eps)
        analytics = SummaryAnalytics(index, epsilon=eps)
        hist, bound = analytics.degree_histogram()
        assert np.array_equal(hist, exact.degree_histogram(index))
        assert bound >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(graphs(), summarizer_params, epsilons)
    def test_pagerank_within_bound(self, graph, params, eps):
        index = compiled(graph, params, eps)
        analytics = SummaryAnalytics(index, epsilon=eps)
        rank, bound = analytics.pagerank()
        reference = exact.pagerank(index)
        assert rank.shape == reference.shape
        assert float(np.abs(rank - reference).sum()) <= bound
        assert rank.sum() == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(graphs(), summarizer_params, epsilons)
    def test_triangles_within_bound(self, graph, params, eps):
        index = compiled(graph, params, eps)
        analytics = SummaryAnalytics(index, epsilon=eps)
        estimate, bound = analytics.triangles()
        assert abs(estimate - exact.triangle_count(index)) <= bound

    @settings(max_examples=20, deadline=None)
    @given(graphs(), summarizer_params, epsilons)
    def test_modularity_within_bound(self, graph, params, eps):
        index = compiled(graph, params, eps)
        analytics = SummaryAnalytics(index, epsilon=eps)
        estimate, bound = analytics.modularity()
        reference = exact.modularity(index, index._node2dense)
        assert abs(estimate - reference) <= bound


class TestLosslessExactness:
    @settings(max_examples=25, deadline=None)
    @given(graphs(), summarizer_params)
    def test_eps0_degree_bitfor_bit_vs_original_graph(self, graph, params):
        """ε = 0 ⇒ lossless ⇒ the estimator equals the *original graph*
        exactly, bit for bit, with a zero bound."""
        index = compiled(graph, params, 0.0)
        analytics = SummaryAnalytics(index, epsilon=0.0)
        true_deg = np.asarray(
            [graph.degree(v) for v in range(graph.num_nodes)],
            dtype=np.int64,
        )
        assert np.array_equal(analytics.degrees(), true_deg)
        for v in range(graph.num_nodes):
            d, bound = analytics.degree(v)
            assert d == int(true_deg[v])
            assert bound == 0.0

    @settings(max_examples=25, deadline=None)
    @given(graphs(), summarizer_params)
    def test_eps0_histogram_bit_for_bit(self, graph, params):
        index = compiled(graph, params, 0.0)
        analytics = SummaryAnalytics(index, epsilon=0.0)
        hist, bound = analytics.degree_histogram()
        true_deg = [graph.degree(v) for v in range(graph.num_nodes)]
        true_hist = (
            np.bincount(np.asarray(true_deg, dtype=np.int64))
            if true_deg else np.zeros(1, dtype=np.int64)
        )
        assert np.array_equal(hist, true_hist)
        assert bound == 0.0

    @settings(max_examples=15, deadline=None)
    @given(graphs(), summarizer_params)
    def test_eps0_modularity_matches_exact(self, graph, params):
        index = compiled(graph, params, 0.0)
        analytics = SummaryAnalytics(index, epsilon=0.0)
        estimate, _ = analytics.modularity()
        assert estimate == pytest.approx(
            exact.modularity(index, index._node2dense), abs=1e-9
        )


# ---------------------------------------------------------------------------
# estimator plumbing
# ---------------------------------------------------------------------------


class TestPlumbing:
    def small_index(self):
        rng = np.random.default_rng(11)
        src = rng.integers(0, 30, size=70)
        dst = rng.integers(0, 30, size=70)
        graph = Graph.from_edge_arrays(30, src, dst)
        summary = LDME(k=4, iterations=4, seed=1).summarize(graph)
        return CompiledSummaryIndex(summary)

    def test_engine_cached_per_epsilon(self):
        index = self.small_index()
        assert index.analytics() is index.analytics(0.0)
        assert index.analytics(0.1) is not index.analytics(0.0)
        assert index.analytics(0.1) is index.analytics(0.1)

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            SummaryAnalytics(self.small_index(), epsilon=-0.1)

    def test_degree_out_of_range(self):
        index = self.small_index()
        with pytest.raises(IndexError):
            index.analytics().degree(30)
        with pytest.raises(IndexError):
            index.analytics().degree(-1)

    def test_pagerank_params_validated(self):
        analytics = self.small_index().analytics()
        with pytest.raises(ValueError):
            analytics.pagerank(damping=1.0)
        with pytest.raises(ValueError):
            analytics.pagerank(max_iterations=0)
        with pytest.raises(ValueError):
            analytics.pagerank(tolerance=-1.0)

    def test_empty_graph(self):
        summary = LDME(k=2, iterations=1, seed=0).summarize(
            Graph.from_edges(0, [])
        )
        analytics = CompiledSummaryIndex(summary).analytics()
        hist, bound = analytics.degree_histogram()
        assert hist.tolist() == [0] and bound == 0.0
        rank, _ = analytics.pagerank()
        assert rank.size == 0
        assert analytics.modularity() == (0.0, 0.0)

    def test_wire_adapter_shapes(self):
        index = self.small_index()
        payload = execute_analytics(index, "analytics.degree", {"v": 3})
        assert payload["value"] == index.degree(3)
        ranked = execute_analytics(
            index, "analytics.pagerank", {"top": 4}
        )
        assert len(ranked["value"]) == 4
        ranks = [r for _, r in ranked["value"]]
        assert ranks == sorted(ranks, reverse=True)
        full = execute_analytics(index, "analytics.pagerank", {})
        assert len(full["value"]) == index.num_nodes
        with pytest.raises(ValueError):
            execute_analytics(index, "analytics.pagerank", {"top": 0})
        with pytest.raises(ValueError):
            execute_analytics(index, "analytics.nope", {})
        with pytest.raises(IndexError):
            execute_analytics(index, "analytics.degree", {"v": 99})


# ---------------------------------------------------------------------------
# adjacency snapshot (the per-call reconstruction bug fix)
# ---------------------------------------------------------------------------


class CountingIndex:
    """Proxy that counts every neighbourhood reconstruction."""

    def __init__(self, index):
        self._index = index
        self.calls = 0

    @property
    def num_nodes(self):
        return self._index.num_nodes

    def neighbors(self, v):
        self.calls += 1
        return self._index.neighbors(v)

    def __getattr__(self, name):
        return getattr(self._index, name)


class TestAdjacencySnapshot:
    def counting(self):
        rng = np.random.default_rng(5)
        src = rng.integers(0, 24, size=60)
        dst = rng.integers(0, 24, size=60)
        graph = Graph.from_edge_arrays(24, src, dst)
        summary = LDME(k=4, iterations=4, seed=3).summarize(graph)
        return CountingIndex(CompiledSummaryIndex(summary))

    def test_triangle_count_reconstructs_each_node_once(self):
        index = self.counting()
        first = exact.triangle_count(index)
        assert index.calls == index.num_nodes
        assert exact.triangle_count(index) == first
        assert index.calls == index.num_nodes  # snapshot reused, 0 new

    def test_diameter_estimate_reuses_the_snapshot(self):
        index = self.counting()
        first = exact.diameter_estimate(index, probes=4, seed=1)
        assert index.calls == index.num_nodes
        assert exact.diameter_estimate(index, probes=4, seed=1) == first
        assert index.calls == index.num_nodes

    def test_snapshot_shared_across_analyses(self):
        index = self.counting()
        exact.triangle_count(index)
        exact.diameter_estimate(index, probes=2, seed=0)
        exact.modularity(index, [0] * index.num_nodes)
        assert index.calls == index.num_nodes

    def test_results_unchanged_by_memoization(self):
        """The snapshot rewrite must not change any answer."""
        rng = np.random.default_rng(17)
        src = rng.integers(0, 20, size=50)
        dst = rng.integers(0, 20, size=50)
        graph = Graph.from_edge_arrays(20, src, dst)
        summary = LDME(k=3, iterations=4, seed=0).summarize(graph)
        index = CompiledSummaryIndex(summary)
        brute = 0
        for v in range(graph.num_nodes):
            higher = [u for u in graph.neighbors(v).tolist() if u > v]
            for i, a in enumerate(higher):
                for b in higher[i + 1:]:
                    if graph.has_edge(a, b):
                        brute += 1
        assert exact.triangle_count(index) == brute
        distances = index.bfs_distances(0)
        assert exact.diameter_estimate(index, probes=8, seed=0) >= max(
            distances.values()
        )


class TestExactModularity:
    def test_all_one_community_is_zero(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        summary = LDME(k=2, iterations=3, seed=0).summarize(g)
        index = CompiledSummaryIndex(summary)
        assert exact.modularity(index, [0, 0, 0, 0]) == pytest.approx(0.0)

    def test_two_cliques_split(self):
        edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
        g = Graph.from_edges(6, edges)
        summary = LDME(k=2, iterations=3, seed=0).summarize(g)
        index = CompiledSummaryIndex(summary)
        good = exact.modularity(index, [0, 0, 0, 1, 1, 1])
        bad = exact.modularity(index, [0, 1, 0, 1, 0, 1])
        assert good > bad

    def test_shape_validated(self):
        g = Graph.from_edges(3, [(0, 1)])
        summary = LDME(k=2, iterations=2, seed=0).summarize(g)
        index = CompiledSummaryIndex(summary)
        with pytest.raises(ValueError):
            exact.modularity(index, [0, 1])


# ---------------------------------------------------------------------------
# slice / merge scatter-gather identity
# ---------------------------------------------------------------------------


def _index_arrays(index):
    return (
        index._member_indptr, index._member_indices,
        index._super_indptr, index._super_indices,
        index._has_loop.astype(np.int64),
        index._add_indptr, index._add_indices,
        index._del_indptr, index._del_indices,
    )


class TestSliceMerge:
    @settings(max_examples=20, deadline=None)
    @given(graphs(), summarizer_params, epsilons)
    def test_single_slice_round_trip_is_identity(self, graph, params, eps):
        """One shard owning everything: merge(slice(S)) rebuilds S's
        compiled arrays exactly (singleton omission included)."""
        index = compiled(graph, params, eps)
        merged = merge_slices(
            {0: summary_slice(index)}, lambda v: 0
        )
        rebuilt = CompiledSummaryIndex(merged)
        for ours, theirs in zip(
            _index_arrays(rebuilt), _index_arrays(index)
        ):
            assert np.array_equal(ours, theirs)

    def test_mismatched_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="num_nodes"):
            merge_slices(
                {
                    0: {"num_nodes": 3, "supernodes": [],
                        "superedges": [], "additions": [],
                        "deletions": []},
                    1: {"num_nodes": 4, "supernodes": [],
                        "superedges": [], "additions": [],
                        "deletions": []},
                },
                lambda v: 0,
            )

    def test_empty_slices_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_slices({}, lambda v: 0)

    def test_slice_omits_bare_singletons(self):
        g = Graph.from_edges(6, [(0, 1)])
        summary = LDME(k=2, iterations=2, seed=0).summarize(g)
        index = CompiledSummaryIndex(summary)
        piece = summary_slice(index)
        shipped = {sid for sid, _ in piece["supernodes"]}
        # Nodes 2..5 are isolated; any singleton supernode of an
        # isolated node carries no structure and must not be shipped.
        for sid, members in piece["supernodes"]:
            assert (
                len(members) > 1
                or any(sid in edge for edge in piece["superedges"])
            )
        merged = merge_slices({0: piece}, lambda v: 0)
        assert merged.num_nodes == 6
        rebuilt = CompiledSummaryIndex(merged)
        assert rebuilt.neighbors(0) == index.neighbors(0)
        assert rebuilt.neighbors(4) == []
        assert shipped  # the (0, 1) component did ship
