"""Tests for summary-resident analytics (exact on lossless summaries)."""

import itertools

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.graph.graph import Graph
from repro.queries import (
    SummaryIndex,
    common_neighbors,
    degree_histogram,
    neighborhood_jaccard,
    pagerank,
    top_degree_nodes,
    triangle_count,
)


@pytest.fixture
def indexed(small_web):
    summary = LDME(k=5, iterations=10, seed=0).summarize(small_web)
    return small_web, SummaryIndex(summary)


def _index_of(graph):
    return SummaryIndex(LDME(k=3, iterations=5, seed=0).summarize(graph))


class TestDegreeHistogram:
    def test_matches_graph(self, indexed):
        graph, index = indexed
        from repro.graph.stats import degree_histogram as graph_hist

        assert np.array_equal(degree_histogram(index), graph_hist(graph))


class TestTriangles:
    def test_matches_bruteforce(self, indexed):
        graph, index = indexed
        expected = 0
        for v in range(graph.num_nodes):
            higher = [u for u in graph.neighbors(v).tolist() if u > v]
            for a, b in itertools.combinations(higher, 2):
                if graph.has_edge(a, b):
                    expected += 1
        assert triangle_count(index) == expected

    def test_triangle_free(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert triangle_count(_index_of(g)) == 0

    def test_single_triangle(self, triangle):
        assert triangle_count(_index_of(triangle)) == 1


class TestPageRank:
    def test_probability_vector(self, indexed):
        _, index = indexed
        rank = pagerank(index)
        assert rank.shape == (index.num_nodes,)
        assert rank.sum() == pytest.approx(1.0)
        assert np.all(rank > 0)

    def test_hub_dominates_star(self, star):
        rank = pagerank(_index_of(star))
        assert np.argmax(rank) == 0

    def test_symmetric_graph_uniform(self, triangle):
        rank = pagerank(_index_of(triangle))
        assert np.allclose(rank, 1 / 3)

    def test_damping_validated(self, indexed):
        _, index = indexed
        with pytest.raises(ValueError):
            pagerank(index, damping=1.0)


class TestSimilarityQueries:
    def test_common_neighbors_matches_graph(self, indexed):
        graph, index = indexed
        for u, v in [(0, 1), (5, 9), (20, 21)]:
            expected = sorted(
                set(graph.neighbors(u).tolist())
                & set(graph.neighbors(v).tolist())
            )
            assert common_neighbors(index, u, v) == expected

    def test_jaccard_bounds(self, indexed):
        _, index = indexed
        value = neighborhood_jaccard(index, 0, 1)
        assert 0.0 <= value <= 1.0

    def test_jaccard_identical_node(self, indexed):
        _, index = indexed
        assert neighborhood_jaccard(index, 4, 4) == 1.0


class TestTopDegree:
    def test_star_hub_first(self, star):
        assert top_degree_nodes(_index_of(star), 1) == [0]

    def test_count_zero(self, indexed):
        _, index = indexed
        assert top_degree_nodes(index, 0) == []

    def test_negative_rejected(self, indexed):
        _, index = indexed
        with pytest.raises(ValueError):
            top_degree_nodes(index, -1)

    def test_order_matches_degrees(self, indexed):
        graph, index = indexed
        top = top_degree_nodes(index, 5)
        degrees = [graph.degree(v) for v in top]
        assert degrees == sorted(degrees, reverse=True)


class TestComponents:
    def test_matches_graph_components(self, indexed):
        graph, index = indexed
        from repro.graph.stats import connected_components as graph_comps
        from repro.queries import connected_components as index_comps

        expected = sorted(
            sorted(c.tolist()) for c in graph_comps(graph)
        )
        assert sorted(index_comps(index)) == expected

    def test_disconnected(self):
        from repro.graph.graph import Graph
        from repro.queries import connected_components

        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        comps = connected_components(_index_of(g))
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]


class TestDiameterEstimate:
    def test_path_diameter_exact(self, path4):
        from repro.queries import diameter_estimate

        assert diameter_estimate(_index_of(path4), probes=4) == 3

    def test_lower_bound_property(self, indexed):
        graph, index = indexed
        from repro.queries import diameter_estimate

        estimate = diameter_estimate(index, probes=3)
        # A BFS eccentricity can never exceed the true diameter; check the
        # estimate is achievable from node 0's eccentricity at least.
        ecc0 = max(index.bfs_distances(0).values())
        assert estimate >= ecc0 or estimate >= 0

    def test_probes_validated(self, indexed):
        from repro.queries import diameter_estimate

        _, index = indexed
        with pytest.raises(ValueError):
            diameter_estimate(index, probes=0)

    def test_edgeless_graph(self):
        from repro.graph.graph import Graph
        from repro.queries import diameter_estimate

        g = Graph.from_edges(3, [])
        assert diameter_estimate(_index_of(g)) == 0
