"""Tests for summary-resident query answering."""

import pytest

from repro.core.ldme import LDME
from repro.queries.index import SummaryIndex


@pytest.fixture
def indexed(small_web):
    summary = LDME(k=5, iterations=10, seed=0).summarize(small_web)
    return small_web, SummaryIndex(summary)


class TestNeighborQueries:
    def test_every_neighborhood_matches(self, indexed):
        graph, index = indexed
        for v in range(graph.num_nodes):
            assert index.neighbors(v) == graph.neighbors(v).tolist(), v

    def test_degree_matches(self, indexed):
        graph, index = indexed
        for v in range(0, graph.num_nodes, 7):
            assert index.degree(v) == graph.degree(v)

    def test_out_of_range_rejected(self, indexed):
        _, index = indexed
        with pytest.raises(IndexError):
            index.neighbors(10**6)


class TestEdgeQueries:
    def test_positive_and_negative_edges(self, indexed):
        graph, index = indexed
        src, dst = graph.edge_arrays()
        for u, v in list(zip(src.tolist(), dst.tolist()))[:50]:
            assert index.has_edge(u, v)
            assert index.has_edge(v, u)
        for v in range(min(30, graph.num_nodes)):
            for u in range(v + 1, min(30, graph.num_nodes)):
                assert index.has_edge(v, u) == graph.has_edge(v, u)

    def test_self_edge_false(self, indexed):
        _, index = indexed
        assert not index.has_edge(3, 3)

    def test_out_of_range_rejected(self, indexed):
        _, index = indexed
        with pytest.raises(IndexError):
            index.has_edge(0, 10**6)


class TestTraversal:
    def test_bfs_matches_graph_bfs(self, indexed):
        graph, index = indexed
        from collections import deque

        expected = {0: 0}
        queue = deque([0])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v).tolist():
                if u not in expected:
                    expected[u] = expected[v] + 1
                    queue.append(u)
        assert index.bfs_distances(0) == expected

    def test_bfs_source_validated(self, indexed):
        _, index = indexed
        with pytest.raises(IndexError):
            index.bfs_distances(-1)


class TestBulk:
    def test_iter_edges_matches_graph(self, indexed):
        graph, index = indexed
        assert sorted(index.iter_edges()) == list(graph.edges())

    def test_to_graph_roundtrip(self, indexed):
        graph, index = indexed
        assert index.to_graph() == graph

    def test_num_nodes(self, indexed):
        graph, index = indexed
        assert index.num_nodes == graph.num_nodes
