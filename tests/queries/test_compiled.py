"""Tests for the array-backed summary index (parity with SummaryIndex)."""

import pytest

from repro.core.ldme import LDME
from repro.graph.graph import Graph
from repro.queries import CompiledSummaryIndex, SummaryIndex


@pytest.fixture
def both(small_web):
    summary = LDME(k=5, iterations=10, seed=0).summarize(small_web)
    return small_web, SummaryIndex(summary), CompiledSummaryIndex(summary)


def _compiled_of(graph):
    return CompiledSummaryIndex(
        LDME(k=3, iterations=5, seed=0).summarize(graph)
    )


class TestParity:
    def test_all_neighborhoods_match(self, both):
        graph, plain, compiled = both
        for v in range(graph.num_nodes):
            assert compiled.neighbors(v) == plain.neighbors(v), v

    def test_degrees_match(self, both):
        graph, plain, compiled = both
        for v in range(0, graph.num_nodes, 11):
            assert compiled.degree(v) == plain.degree(v)

    def test_edge_queries_match(self, both):
        graph, plain, compiled = both
        for u in range(0, 40):
            for v in range(u + 1, 40):
                assert compiled.has_edge(u, v) == plain.has_edge(u, v)

    def test_matches_original_graph(self, both):
        graph, _, compiled = both
        for v in range(graph.num_nodes):
            assert compiled.neighbors(v) == graph.neighbors(v).tolist()


class TestEdgeCases:
    def test_superloop_handling(self, triangle):
        compiled = _compiled_of(triangle)
        for v in range(3):
            expected = sorted(set(range(3)) - {v})
            assert compiled.neighbors(v) == expected

    def test_isolated_nodes(self):
        g = Graph.from_edges(5, [(0, 1)])
        compiled = _compiled_of(g)
        assert compiled.neighbors(4) == []
        assert compiled.degree(4) == 0

    def test_empty_graph(self):
        g = Graph.from_edges(3, [])
        compiled = _compiled_of(g)
        assert compiled.neighbors(0) == []
        assert not compiled.has_edge(0, 1)

    def test_self_edge_false(self, both):
        _, _, compiled = both
        assert not compiled.has_edge(7, 7)

    def test_range_checks(self, both):
        _, _, compiled = both
        with pytest.raises(IndexError):
            compiled.neighbors(10**6)
        with pytest.raises(IndexError):
            compiled.has_edge(0, 10**6)

    def test_lossy_summary_parity(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0,
                       epsilon=0.3).summarize(small_web)
        plain = SummaryIndex(summary)
        compiled = CompiledSummaryIndex(summary)
        for v in range(small_web.num_nodes):
            assert compiled.neighbors(v) == plain.neighbors(v), v

    def test_num_nodes(self, both):
        graph, _, compiled = both
        assert compiled.num_nodes == graph.num_nodes
