"""Tests for the array-backed summary index (parity with SummaryIndex)."""

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.graph.graph import Graph
from repro.queries import CompiledSummaryIndex, SummaryIndex


@pytest.fixture
def both(small_web):
    summary = LDME(k=5, iterations=10, seed=0).summarize(small_web)
    return small_web, SummaryIndex(summary), CompiledSummaryIndex(summary)


def _compiled_of(graph):
    return CompiledSummaryIndex(
        LDME(k=3, iterations=5, seed=0).summarize(graph)
    )


class TestParity:
    def test_all_neighborhoods_match(self, both):
        graph, plain, compiled = both
        for v in range(graph.num_nodes):
            assert compiled.neighbors(v) == plain.neighbors(v), v

    def test_degrees_match(self, both):
        graph, plain, compiled = both
        for v in range(0, graph.num_nodes, 11):
            assert compiled.degree(v) == plain.degree(v)

    def test_edge_queries_match(self, both):
        graph, plain, compiled = both
        for u in range(0, 40):
            for v in range(u + 1, 40):
                assert compiled.has_edge(u, v) == plain.has_edge(u, v)

    def test_matches_original_graph(self, both):
        graph, _, compiled = both
        for v in range(graph.num_nodes):
            assert compiled.neighbors(v) == graph.neighbors(v).tolist()


class TestEdgeCases:
    def test_superloop_handling(self, triangle):
        compiled = _compiled_of(triangle)
        for v in range(3):
            expected = sorted(set(range(3)) - {v})
            assert compiled.neighbors(v) == expected

    def test_isolated_nodes(self):
        g = Graph.from_edges(5, [(0, 1)])
        compiled = _compiled_of(g)
        assert compiled.neighbors(4) == []
        assert compiled.degree(4) == 0

    def test_empty_graph(self):
        g = Graph.from_edges(3, [])
        compiled = _compiled_of(g)
        assert compiled.neighbors(0) == []
        assert not compiled.has_edge(0, 1)

    def test_self_edge_false(self, both):
        _, _, compiled = both
        assert not compiled.has_edge(7, 7)

    def test_range_checks(self, both):
        _, _, compiled = both
        with pytest.raises(IndexError):
            compiled.neighbors(10**6)
        with pytest.raises(IndexError):
            compiled.has_edge(0, 10**6)

    def test_lossy_summary_parity(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0,
                       epsilon=0.3).summarize(small_web)
        plain = SummaryIndex(summary)
        compiled = CompiledSummaryIndex(summary)
        for v in range(small_web.num_nodes):
            assert compiled.neighbors(v) == plain.neighbors(v), v

    def test_num_nodes(self, both):
        graph, _, compiled = both
        assert compiled.num_nodes == graph.num_nodes


class TestNeighborsBatch:
    def test_matches_per_call_loop(self, both):
        graph, _, compiled = both
        nodes = np.arange(graph.num_nodes)
        batch = compiled.neighbors_batch(nodes)
        assert batch == [compiled.neighbors(v) for v in range(
            graph.num_nodes)]

    def test_duplicates_and_order_preserved(self, both):
        _, _, compiled = both
        nodes = np.asarray([5, 0, 5, 3, 0])
        batch = compiled.neighbors_batch(nodes)
        assert batch == [compiled.neighbors(v) for v in (5, 0, 5, 3, 0)]

    def test_accepts_plain_lists(self, both):
        _, _, compiled = both
        assert compiled.neighbors_batch([1, 2]) == [
            compiled.neighbors(1), compiled.neighbors(2)
        ]

    def test_empty_batch(self, both):
        _, _, compiled = both
        assert compiled.neighbors_batch(np.empty(0, dtype=np.int64)) == []

    def test_range_check(self, both):
        _, _, compiled = both
        with pytest.raises(IndexError):
            compiled.neighbors_batch(np.asarray([0, 10**6]))
        with pytest.raises(IndexError):
            compiled.neighbors_batch(np.asarray([-1]))

    def test_rejects_2d_input(self, both):
        _, _, compiled = both
        with pytest.raises(ValueError):
            compiled.neighbors_batch(np.zeros((2, 2), dtype=np.int64))

    def test_lossy_summary_batch_parity(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0,
                       epsilon=0.3).summarize(small_web)
        compiled = CompiledSummaryIndex(summary)
        nodes = np.arange(small_web.num_nodes)
        assert compiled.neighbors_batch(nodes) == [
            compiled.neighbors(v) for v in range(small_web.num_nodes)
        ]


class TestBfs:
    def test_matches_summary_index(self, both):
        graph, plain, compiled = both
        for source in range(0, graph.num_nodes, 13):
            assert compiled.bfs_distances(source) == \
                plain.bfs_distances(source)

    def test_range_check(self, both):
        _, _, compiled = both
        with pytest.raises(IndexError):
            compiled.bfs_distances(10**6)
