"""Event sources: stream-file feeder resume and the TCP ack listener."""

import socket

import pytest

from repro.ingest import (
    IngestListener,
    IngestService,
    feed_stream_file,
    send_events,
)
from repro.streaming import write_stream

from .test_service import sample_events


def open_service(tmp_path, **kwargs):
    kwargs.setdefault("num_nodes", 24)
    kwargs.setdefault("fsync", False)
    return IngestService.open(tmp_path / "wal", **kwargs)


class TestFeedStreamFile:
    def test_feeds_every_event(self, tmp_path):
        events = sample_events(count=80)
        stream = tmp_path / "s.stream"
        write_stream(events, stream)
        service, _ = open_service(tmp_path)
        with service:
            submitted = feed_stream_file(service, stream)
            assert service.drain(10)
        assert submitted == len(events)
        assert service.applied_seq == len(events)

    def test_start_index_resumes_exactly(self, tmp_path):
        events = sample_events(count=100)
        stream = tmp_path / "s.stream"
        write_stream(events, stream)
        service, _ = open_service(tmp_path)
        with service:
            feed_stream_file(service, stream)
            assert service.drain(10)
        # Second pass with the recovered last_seq submits nothing new:
        # stream index i and WAL seq i advance in lockstep.
        reopened, report = open_service(tmp_path)
        with reopened:
            submitted = feed_stream_file(
                reopened, stream, start_index=report.last_seq
            )
        assert submitted == 0
        assert reopened.applied_seq == len(events)

    def test_partial_run_then_resume_covers_stream_once(self, tmp_path):
        events = sample_events(count=100)
        stream = tmp_path / "s.stream"
        write_stream(events, stream)
        service, _ = open_service(tmp_path)
        service.start()
        for op, u, v in events[:37]:
            service.submit(op, u, v)
        assert service.drain(10)
        service.stop()
        reopened, report = open_service(tmp_path)
        assert report.last_seq == 37
        with reopened:
            submitted = feed_stream_file(
                reopened, stream, start_index=report.last_seq
            )
            assert reopened.drain(10)
        assert submitted == len(events) - 37
        assert reopened.applied_seq == len(events)

    def test_negative_start_index_rejected(self, tmp_path):
        service, _ = open_service(tmp_path)
        with pytest.raises(ValueError, match="non-negative"):
            feed_stream_file(service, tmp_path / "x", start_index=-1)
        service.stop()


class TestListener:
    def test_ack_carries_durable_seq(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service, IngestListener(service, port=0) as listener:
            seqs = send_events(
                listener.address,
                [("+", 0, 1), ("+", 1, 2), ("-", 0, 1)],
            )
            assert seqs == [1, 2, 3]
        assert service.applied_seq == 3

    def test_malformed_lines_get_err_not_disconnect(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service, IngestListener(service, port=0) as listener:
            with socket.create_connection(listener.address, timeout=10) as s:
                fh = s.makefile("rwb")
                for bad in (b"bogus\n", b"+ 1\n", b"+ a b\n", b"+ -1 2\n"):
                    fh.write(bad)
                    fh.flush()
                    assert fh.readline().startswith(b"err ")
                # The connection is still usable afterwards.
                fh.write(b"+ 5 6\n")
                fh.flush()
                assert fh.readline() == b"ack 1\n"

    def test_ping_and_quit(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service, IngestListener(service, port=0) as listener:
            with socket.create_connection(listener.address, timeout=10) as s:
                fh = s.makefile("rwb")
                fh.write(b"ping\n")
                fh.flush()
                assert fh.readline() == b"pong\n"
                fh.write(b"quit\n")
                fh.flush()
                assert fh.readline() == b"bye\n"

    def test_stopped_service_reports_err(self, tmp_path):
        service, _ = open_service(tmp_path)
        service.start()
        listener = IngestListener(service, port=0).start()
        try:
            service.stop()
            with socket.create_connection(listener.address, timeout=10) as s:
                fh = s.makefile("rwb")
                fh.write(b"+ 0 1\n")
                fh.flush()
                assert fh.readline().startswith(b"err ")
        finally:
            listener.stop()

    def test_send_events_raises_on_err(self, tmp_path):
        service, _ = open_service(tmp_path)
        service.start()
        listener = IngestListener(service, port=0).start()
        try:
            service.stop()
            with pytest.raises(RuntimeError, match="refused"):
                send_events(listener.address, [("+", 0, 1)])
        finally:
            listener.stop()
