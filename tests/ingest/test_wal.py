"""Segmented WAL: framing, rotation, recovery, and damage classification."""

import os

import pytest

from repro.errors import CorruptWALError
from repro.ingest.wal import (
    FOOTER_BYTES,
    SEGMENT_FOOTER_MAGIC,
    WalWriter,
    iter_wal,
    list_segments,
    read_segment,
    recover_wal,
    segment_path,
)
from repro.resilience import flip_bit, torn_tail


def make_events(count, start=0):
    return [
        ("+" if i % 3 else "-", i + start, i + start + 1)
        for i in range(count)
    ]


class TestAppendAndRead:
    def test_append_assigns_contiguous_seqs(self, tmp_path):
        with WalWriter(tmp_path, fsync=False) as writer:
            first, last = writer.append(make_events(5))
            assert (first, last) == (1, 5)
            first, last = writer.append(make_events(3))
            assert (first, last) == (6, 8)
            assert writer.last_seq == 8

    def test_empty_append_is_noop(self, tmp_path):
        with WalWriter(tmp_path, fsync=False) as writer:
            first, last = writer.append([])
            assert first == last + 1
            assert writer.last_seq == 0

    def test_roundtrip_preserves_events(self, tmp_path):
        events = make_events(40)
        with WalWriter(tmp_path, fsync=False) as writer:
            writer.append(events)
        recovered = recover_wal(tmp_path)
        assert recovered.events() == events
        assert [r.seq for r in recovered.records] == list(range(1, 41))

    def test_iter_wal_respects_from_seq(self, tmp_path):
        with WalWriter(tmp_path, fsync=False) as writer:
            writer.append(make_events(10))
        seqs = [r.seq for r in iter_wal(tmp_path, from_seq=7)]
        assert seqs == [7, 8, 9, 10]

    def test_rejects_bad_op_and_negative_ids(self, tmp_path):
        with WalWriter(tmp_path, fsync=False) as writer:
            with pytest.raises(ValueError, match="unknown stream op"):
                writer.append([("x", 0, 1)])
            with pytest.raises(ValueError, match="negative node id"):
                writer.append([("+", -1, 2)])


class TestRotation:
    def test_rotate_seals_and_advances(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(4))
        sealed = writer.rotate()
        writer.append(make_events(4, start=100))
        writer.close(seal=False)
        info = read_segment(sealed)
        assert info.sealed and len(info.records) == 4
        assert len(list_segments(tmp_path)) == 2
        recovered = recover_wal(tmp_path)
        assert [r.seq for r in recovered.records] == list(range(1, 9))

    def test_size_threshold_triggers_rotation(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_bytes=1024, fsync=False)
        for _ in range(20):
            writer.append(make_events(20))
        writer.close(seal=False)
        assert writer.rotations > 0
        assert len(list_segments(tmp_path)) == writer.rotations + 1
        recovered = recover_wal(tmp_path)
        assert recovered.records[-1].seq == 400

    def test_new_segment_base_seq_continues(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(6))
        writer.rotate()
        writer.close(seal=False)
        info = read_segment(writer.active_segment)
        assert info.base_seq == 7

    def test_resume_unsealed_segment(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(5))
        writer.close(seal=False)
        resumed = WalWriter(tmp_path, last_seq=5, fsync=False)
        resumed.append(make_events(5, start=50))
        resumed.close(seal=True)
        assert len(list_segments(tmp_path)) == 1
        info = read_segment(segment_path(tmp_path, 1))
        assert info.sealed and len(info.records) == 10

    def test_reopen_after_clean_seal_starts_new_segment(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(5))
        writer.close(seal=True)
        resumed = WalWriter(tmp_path, last_seq=5, fsync=False)
        assert resumed.active_segment == segment_path(tmp_path, 2)
        resumed.close(seal=False)


class TestTornTailRecovery:
    def test_torn_tail_truncated_in_place(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(10))
        writer.close(seal=False)
        path = segment_path(tmp_path, 1)
        torn_tail(path, keep_records=7)
        recovered = recover_wal(tmp_path)
        assert recovered.last_seq == 7
        assert recovered.truncated_bytes > 0
        assert recovered.truncated_path == path
        # The file itself was repaired: a second scan is clean.
        again = recover_wal(tmp_path)
        assert again.truncated_bytes == 0
        assert [r.seq for r in again.records] == list(range(1, 8))

    def test_append_resumes_after_tail_repair(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(10))
        writer.close(seal=False)
        torn_tail(segment_path(tmp_path, 1), keep_records=6)
        recovered = recover_wal(tmp_path)
        resumed = WalWriter(tmp_path, last_seq=recovered.last_seq,
                            fsync=False)
        assert resumed.append(make_events(2, start=30)) == (7, 8)
        resumed.close(seal=True)
        final = recover_wal(tmp_path)
        assert [r.seq for r in final.records] == list(range(1, 9))

    def test_half_written_footer_treated_as_torn(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(5))
        writer.close(seal=True)
        path = segment_path(tmp_path, 1)
        # Chop the footer mid-way: magic gone, CRC half-present.
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - FOOTER_BYTES + 2)
        recovered = recover_wal(tmp_path)
        assert [r.seq for r in recovered.records] == list(range(1, 6))
        assert recovered.truncated_bytes == 2

    def test_headerless_final_segment_discarded(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(5))
        writer.rotate()
        writer.close(seal=False)
        # Simulate a crash right after the new segment file was created
        # but before its header bytes landed.
        path = segment_path(tmp_path, 2)
        with open(path, "wb") as fh:
            fh.write(b"WA")
        recovered = recover_wal(tmp_path)
        assert recovered.discarded_segments == [path]
        assert [r.seq for r in recovered.records] == list(range(1, 6))
        assert not os.path.exists(path)


class TestDamageClassification:
    def test_bit_flip_in_sealed_segment_raises(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(20))
        writer.rotate()
        writer.append(make_events(5, start=90))
        writer.close(seal=False)
        flip_bit(segment_path(tmp_path, 1))
        with pytest.raises(CorruptWALError):
            recover_wal(tmp_path)

    def test_bit_flip_skipped_when_checkpoint_covers_it(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(20))
        writer.rotate()
        writer.append(make_events(5, start=90))
        writer.close(seal=False)
        damaged = segment_path(tmp_path, 1)
        flip_bit(damaged)
        # Replay starts past the damaged segment: tolerated + reported.
        recovered = recover_wal(tmp_path, from_seq=21)
        assert recovered.skipped_segments == [damaged]
        assert [r.seq for r in recovered.records] == list(range(21, 26))

    def test_flip_back_restores_readability(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(20))
        writer.rotate()
        writer.close(seal=False)
        damaged = segment_path(tmp_path, 1)
        offset = flip_bit(damaged)
        with pytest.raises(CorruptWALError):
            recover_wal(tmp_path)
        flip_bit(damaged, byte_offset=offset)
        assert recover_wal(tmp_path).last_seq == 20

    def test_missing_middle_segment_raises_gap(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_bytes=1024, fsync=False)
        for _ in range(10):
            writer.append(make_events(30))
        writer.close(seal=False)
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        os.unlink(segments[1][1])
        with pytest.raises(CorruptWALError, match="sequence gap"):
            recover_wal(tmp_path)

    def test_from_seq_filters_replay(self, tmp_path):
        with WalWriter(tmp_path, fsync=False) as writer:
            writer.append(make_events(10))
        recovered = recover_wal(tmp_path, from_seq=6)
        assert [r.seq for r in recovered.records] == [6, 7, 8, 9, 10]
        assert recovered.last_seq == 10

    def test_empty_directory_recovers_empty(self, tmp_path):
        recovered = recover_wal(tmp_path / "nowhere")
        assert recovered.records == [] and recovered.last_seq == 0

    def test_sealed_footer_magic(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(3))
        writer.close(seal=True)
        with open(segment_path(tmp_path, 1), "rb") as fh:
            data = fh.read()
        assert data.endswith(SEGMENT_FOOTER_MAGIC)


class TestPruning:
    def build(self, tmp_path, rounds=6):
        writer = WalWriter(tmp_path, segment_max_bytes=1024, fsync=False)
        for _ in range(rounds):
            writer.append(make_events(30))
        return writer

    def test_prune_removes_covered_segments(self, tmp_path):
        writer = self.build(tmp_path)
        before = writer.segment_count()
        removed = writer.prune_through(writer.last_seq)
        assert removed
        assert writer.segment_count() == before - len(removed)
        writer.close(seal=False)
        # Everything still needed replays cleanly from the prune point.
        recovered = recover_wal(tmp_path, from_seq=writer.last_seq + 1)
        assert recovered.records == []

    def test_prune_keeps_uncovered_suffix(self, tmp_path):
        writer = self.build(tmp_path)
        writer.prune_through(40)
        writer.close(seal=False)
        recovered = recover_wal(tmp_path, from_seq=41)
        assert [r.seq for r in recovered.records] == \
            list(range(41, writer.last_seq + 1))

    def test_prune_never_touches_active_segment(self, tmp_path):
        writer = WalWriter(tmp_path, fsync=False)
        writer.append(make_events(5))
        assert writer.prune_through(999) == []
        assert os.path.exists(writer.active_segment)
        writer.close(seal=False)
