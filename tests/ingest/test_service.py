"""IngestService: acks, backpressure, recovery, snapshots, swaps."""

import os
import threading

import numpy as np
import pytest

from repro.errors import CheckpointError, IngestOverloadError
from repro.ingest import (
    INGEST_PAYLOAD_KIND,
    IngestService,
    list_segments,
    recover_wal,
)
from repro.resilience import CheckpointManager, flip_bit, torn_tail
from repro.serve.cluster import SummaryCluster
from repro.streaming import DynamicSummarizer


def sample_events(num_nodes=24, count=200, seed=7):
    rng = np.random.default_rng(seed)
    events = []
    live = set()
    for _ in range(count):
        u, v = int(rng.integers(num_nodes)), int(rng.integers(num_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in live and rng.random() < 0.3:
            events.append(("-", u, v))
            live.discard(key)
        else:
            events.append(("+", u, v))
            live.add(key)
    return events


def open_service(tmp_path, **kwargs):
    kwargs.setdefault("num_nodes", 24)
    kwargs.setdefault("fsync", False)
    return IngestService.open(tmp_path / "wal", **kwargs)


def run_events(service, events, timeout=10.0):
    acks = service.submit_many(events)
    assert service.drain(timeout)
    return [ack.wait(timeout) for ack in acks]


class TestAcks:
    def test_acks_carry_contiguous_seqs(self, tmp_path):
        service, report = open_service(tmp_path)
        assert report.last_seq == 0
        events = sample_events(count=50)
        with service:
            seqs = run_events(service, events)
        assert seqs == list(range(1, len(events) + 1))
        assert service.applied_seq == len(events)

    def test_acked_events_are_on_disk(self, tmp_path):
        service, _ = open_service(tmp_path)
        events = sample_events(count=30)
        with service:
            run_events(service, events)
        recovered = recover_wal(tmp_path / "wal")
        assert recovered.events() == events

    def test_on_ack_hook_sees_every_batch(self, tmp_path):
        seen = []
        service, _ = open_service(
            tmp_path, on_ack=lambda first, last: seen.append((first, last))
        )
        with service:
            run_events(service, sample_events(count=40))
        covered = [s for first, last in seen
                   for s in range(first, last + 1)]
        assert covered == sorted(set(covered))
        assert covered[0] == 1 and covered[-1] == service.applied_seq

    def test_submit_rejects_bad_op(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service:
            with pytest.raises(ValueError, match="unknown stream op"):
                service.submit("x", 0, 1)

    def test_submit_before_start_rejected(self, tmp_path):
        service, _ = open_service(tmp_path)
        with pytest.raises(RuntimeError, match="not accepting"):
            service.submit("+", 0, 1)
        service.stop()

    def test_submit_after_stop_rejected(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service:
            pass
        with pytest.raises(RuntimeError, match="not accepting"):
            service.submit("+", 0, 1)


class TestBackpressure:
    def test_nonblocking_submit_raises_when_full(self, tmp_path):
        service, _ = open_service(tmp_path, queue_max=4)
        # Not started: nothing drains the queue.
        service._accepting = True
        for i in range(4):
            service.submit("+", i, i + 1, block=False)
        with pytest.raises(IngestOverloadError, match="backpressure"):
            service.submit("+", 9, 10, block=False)
        assert service.metrics.counter("ingest_rejected_total") == 1
        # The rejected event does not count as submitted: drain of the
        # accepted 4 must not wait for a 5th.
        service._accepting = False
        service.start()
        assert service.drain(10)
        service.stop()
        assert service.applied_seq == 4

    def test_blocking_submit_waits_out_pressure(self, tmp_path):
        service, _ = open_service(tmp_path, queue_max=2, batch_max=2)
        with service:
            seqs = run_events(service, sample_events(count=60))
        assert len(seqs) == len(sample_events(count=60))


class TestRecovery:
    def test_wal_only_recovery_matches_clean_replay(self, tmp_path):
        events = sample_events(count=120)
        service, _ = open_service(tmp_path)
        with service:
            run_events(service, events)
        # No snapshot_every: stop() wrote one final checkpoint; delete
        # it to force a pure WAL replay.
        for entry in service.checkpoints.entries():
            os.unlink(os.path.join(service.checkpoints.directory,
                                   entry.file))
        reopened, report = open_service(tmp_path)
        assert report.checkpoint_seq == 0
        assert report.replayed == len(events)
        clean = DynamicSummarizer(num_nodes=24, seed=0)
        clean.apply(events)
        # Pure replay from seq 1 is the clean run, bit for bit.
        assert reopened.summarizer.state_dict() == clean.state_dict()
        reopened.stop()

    def test_checkpoint_plus_replay_is_query_equivalent(self, tmp_path):
        events = sample_events(count=150)
        service, _ = open_service(tmp_path, snapshot_every=40)
        with service:
            run_events(service, events)
        reopened, report = open_service(tmp_path)
        assert report.checkpoint_seq > 0
        clean = DynamicSummarizer(num_nodes=24, seed=0)
        clean.apply(events)
        ga, gb = reopened.summarizer.current_graph(), clean.current_graph()
        assert ga == gb
        ia = reopened.summarizer.snapshot_compiled()
        ib = clean.snapshot_compiled()
        assert all(
            sorted(ia.neighbors(v)) == sorted(ib.neighbors(v))
            for v in range(24)
        )
        reopened.stop()

    def test_resume_continues_sequence(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service:
            run_events(service, sample_events(count=30))
        reopened, report = open_service(tmp_path)
        with reopened:
            ack = reopened.submit("+", 0, 1)
            assert ack.wait(10) == report.last_seq + 1

    def test_recovery_replays_after_torn_tail(self, tmp_path):
        events = sample_events(count=60)
        service, _ = open_service(tmp_path)
        with service:
            run_events(service, events)
        # Un-seal and tear the final segment mid-record, as a crash
        # between write() and fsync() would.
        wal_dir = tmp_path / "wal"
        segments = list_segments(wal_dir)
        torn_tail(segments[-1][1], keep_records=40)
        for entry in service.checkpoints.entries():
            os.unlink(os.path.join(service.checkpoints.directory,
                                   entry.file))
        reopened, report = open_service(tmp_path)
        assert report.replayed == 40
        assert report.wal.truncated_bytes > 0
        clean = DynamicSummarizer(num_nodes=24, seed=0)
        clean.apply(events[:40])
        assert reopened.summarizer.state_dict() == clean.state_dict()
        reopened.stop()

    def test_recovery_rejects_foreign_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path / "wal" / "checkpoints")
        manager.save(3, {"kind": "something-else", "seq": 3})
        with pytest.raises(CheckpointError, match=INGEST_PAYLOAD_KIND):
            open_service(tmp_path)

    def test_recovery_raises_on_corrupt_needed_segment(self, tmp_path):
        service, _ = open_service(tmp_path, segment_max_bytes=1024,
                                  batch_max=20)
        service.start()
        run_events(service, sample_events(count=400))
        # No checkpoint: recovery must replay the whole WAL, so every
        # sealed segment is load-bearing.
        service.stop(snapshot=False)
        segments = list_segments(tmp_path / "wal")
        assert len(segments) >= 2
        from repro.errors import CorruptWALError

        flip_bit(segments[0][1])
        with pytest.raises(CorruptWALError):
            open_service(tmp_path)


class TestSnapshots:
    def test_snapshot_cadence_prunes_wal(self, tmp_path):
        service, _ = open_service(
            tmp_path, snapshot_every=50, segment_max_bytes=1024,
            batch_max=20,
        )
        with service:
            run_events(service, sample_events(count=500))
        assert service.metrics.counter("ingest_snapshots_total") >= 2
        # Pruning keeps the WAL from growing without bound: segments
        # fully below the *oldest retained* checkpoint are gone, while
        # everything at or above it still replays cleanly.
        oldest = service.checkpoints.entries()[0].iteration
        surviving = recover_wal(tmp_path / "wal", from_seq=oldest + 1)
        if surviving.records:
            assert surviving.records[0].seq == oldest + 1
        segments = list_segments(tmp_path / "wal")
        from repro.ingest import read_segment

        assert len(segments) < 10   # pruned, not the full history
        first_kept = read_segment(segments[0][1])
        if first_kept.records:
            # Nothing older than one segment-width before the oldest
            # checkpoint survives.
            successor = read_segment(segments[1][1]) \
                if len(segments) > 1 else None
            if successor is not None:
                assert successor.base_seq - 1 > oldest or \
                    segments[0][0] == segments[-1][0]

    def test_recovery_survives_newest_checkpoint_corruption(self, tmp_path):
        # The reason pruning stops at the *oldest* checkpoint: if the
        # newest one rots, load_latest falls back to an older one, whose
        # WAL suffix must still exist.
        events = sample_events(count=300)
        service, _ = open_service(tmp_path, snapshot_every=60,
                                  batch_max=20)
        with service:
            run_events(service, events)
        entries = service.checkpoints.entries()
        assert len(entries) >= 2
        newest = os.path.join(service.checkpoints.directory,
                              entries[-1].file)
        flip_bit(newest)
        reopened, report = open_service(tmp_path)
        assert report.skipped_checkpoints == [entries[-1].file]
        assert report.checkpoint_seq == entries[-2].iteration
        clean = DynamicSummarizer(num_nodes=24, seed=0)
        clean.apply(events)
        assert reopened.summarizer.current_graph() == clean.current_graph()
        reopened.stop()

    def test_stop_writes_final_checkpoint(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service:
            run_events(service, sample_events(count=30))
        entries = service.checkpoints.entries()
        assert entries and entries[-1].iteration == service.applied_seq
        loaded = service.checkpoints.load_latest()
        assert loaded.payload["kind"] == INGEST_PAYLOAD_KIND
        assert loaded.payload["seq"] == service.applied_seq

    def test_snapshot_now_requires_stopped_pipeline(self, tmp_path):
        service, _ = open_service(tmp_path)
        service.start()
        with pytest.raises(RuntimeError, match="running"):
            service.snapshot_now()
        service.stop()


class TestClusterSwap:
    def test_snapshots_roll_into_cluster(self, tmp_path):
        events = sample_events(count=160)
        service, _ = open_service(tmp_path)
        cluster = SummaryCluster(
            service.summarizer.snapshot(), replicas=2
        )
        cluster.start()
        try:
            service.cluster = cluster
            service.snapshot_every = 50
            with service:
                run_events(service, events)
                assert service.drain(10)
            assert service.swap_reports
            assert all(r.ok for r in service.swap_reports)
            assert service.metrics.counter("ingest_swaps_total") >= 1
            # Replicas now answer from the final snapshot, zero restarts.
            client = cluster.client()
            try:
                clean = DynamicSummarizer(num_nodes=24, seed=0)
                clean.apply(events)
                graph = clean.current_graph()
                for node in range(0, 24, 5):
                    assert sorted(client.neighbors(node)) == \
                        sorted(graph.neighbors(node))
            finally:
                client.shutdown()
        finally:
            cluster.stop()


class TestMetricsAndStatus:
    def test_prometheus_rows_present(self, tmp_path):
        service, _ = open_service(tmp_path, snapshot_every=30)
        with service:
            run_events(service, sample_events(count=80))
        text = service.prometheus()
        for name in (
            "repro_ingest_applied_total",
            "repro_ingest_acked_total",
            "repro_ingest_snapshots_total",
            "repro_ingest_lag_events",
            "repro_ingest_last_seq",
            "repro_wal_segments_active",
        ):
            assert any(line.startswith(name + " ") for line
                       in text.splitlines()), name

    def test_status_shape(self, tmp_path):
        service, _ = open_service(tmp_path)
        with service:
            run_events(service, sample_events(count=20))
        status = service.status()
        assert status["stopped"] and not status["accepting"]
        assert status["applied_seq"] == status["wal_last_seq"]
        assert status["error"] is None

    def test_pipeline_failure_fails_acks_and_submit(self, tmp_path):
        service, _ = open_service(tmp_path)
        service.start()
        # Sabotage the WAL under the pipeline.
        service.wal.close(seal=False)
        ack = service.submit("+", 0, 1)
        with pytest.raises(RuntimeError, match="closed"):
            ack.wait(10)
        # Subsequent submits surface the pipeline failure eagerly.
        deadline = threading.Event()
        for _ in range(50):
            try:
                service.submit("+", 1, 2)
            except RuntimeError:
                deadline.set()
                break
        assert deadline.is_set()
        service.stop(drain=False, snapshot=False)
