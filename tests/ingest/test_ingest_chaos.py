"""Ingest chaos gate: SIGKILL the ingester, damage the WAL, lose nothing.

The acceptance bar from ROADMAP item 2 / ISSUE 7: across >= 3
SIGKILL-and-recover cycles under a mixed insert/delete stream — plus a
torn WAL tail and a corrupt sealed segment injected between cycles — no
acknowledged event is lost and the recovered ingester's final summary is
query-equivalent to a clean one-pass replay of the same stream.

The ingester runs as a real subprocess (``python -m repro ingest``) so a
SIGKILL is a genuine crash: no ``finally`` blocks, no flusher threads,
nothing but what fsync already put on disk. The ``--ack-log`` file
(fsynced per batch, strictly after the WAL fsync) is the evidence: any
sequence number in it was acknowledged, so recovery must preserve it.

Run with ``-m chaos`` (the ``ingest-chaos`` CI job does).
"""

import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.reconstruct import reconstruct
from repro.graph.io import read_summary
from repro.ingest import list_segments, read_segment
from repro.resilience import CheckpointManager, flip_bit, torn_tail
from repro.streaming import DynamicSummarizer, write_stream

pytestmark = pytest.mark.chaos

NUM_NODES = 60
SNAPSHOT_EVERY = 400
SEGMENT_BYTES = 1024
KILL_MARKS = (300, 900, 1500)          # cumulative acked-event counts
RESUME_RE = re.compile(r"resuming at seq (\d+)")


def make_stream(count=4000, seed=11):
    rng = np.random.default_rng(seed)
    events = []
    live = set()
    for _ in range(count):
        u, v = int(rng.integers(NUM_NODES)), int(rng.integers(NUM_NODES))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in live and rng.random() < 0.3:
            events.append(("-", u, v))
            live.discard(key)
        else:
            events.append(("+", u, v))
            live.add(key)
    return events


class IngesterHarness:
    """Drive the CLI ingester subprocess against one WAL directory."""

    def __init__(self, tmp_path, events):
        self.stream = str(tmp_path / "updates.stream")
        write_stream(events, self.stream)
        self.wal_dir = str(tmp_path / "wal")
        self.ack_log = str(tmp_path / "acks.log")
        self.out = str(tmp_path / "final.summary")
        self.env = dict(os.environ)
        self.env["PYTHONPATH"] = (
            "src" + os.pathsep + self.env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        # The recovery banner must reach the pipe before the SIGKILL.
        self.env["PYTHONUNBUFFERED"] = "1"

    def argv(self):
        return [
            sys.executable, "-m", "repro", "ingest", self.stream,
            "--wal-dir", self.wal_dir,
            "--num-nodes", str(NUM_NODES),
            "--snapshot-every", str(SNAPSHOT_EVERY),
            "--segment-bytes", str(SEGMENT_BYTES),
            "--ack-log", self.ack_log,
            "--output", self.out,
        ]

    def acked(self):
        """Fully-written acked seqs (a torn final line is not evidence)."""
        if not os.path.exists(self.ack_log):
            return []
        with open(self.ack_log, "rb") as fh:
            data = fh.read()
        lines = data.split(b"\n")
        if lines and lines[-1] != b"":
            lines = lines[:-1]      # torn tail from the kill
        return [int(line) for line in lines if line]

    def run_until_killed(self, ack_mark, timeout=120.0):
        """Start the ingester, SIGKILL it once ``ack_mark`` acks exist.

        Returns ``(stdout_so_far, acked_seqs_at_kill)``.
        """
        proc = subprocess.Popen(
            self.argv(), env=self.env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        deadline = time.time() + timeout
        try:
            while time.time() < deadline:
                if proc.poll() is not None:
                    out, err = proc.communicate()
                    raise AssertionError(
                        f"ingester finished before the kill mark "
                        f"{ack_mark} (rc={proc.returncode}):\n"
                        f"{out.decode()}\n{err.decode()}"
                    )
                if len(self.acked()) >= ack_mark:
                    break
                time.sleep(0.002)
            else:
                proc.kill()
                proc.communicate()
                raise AssertionError(
                    f"never reached ack mark {ack_mark} in {timeout}s"
                )
            os.kill(proc.pid, signal.SIGKILL)
        except Exception:
            proc.kill()
            raise
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode != 0      # it really was killed
        return out.decode(), self.acked()

    def run_to_completion(self, timeout=180.0, expect_rc=0):
        result = subprocess.run(
            self.argv(), env=self.env, capture_output=True, text=True,
            timeout=timeout,
        )
        assert result.returncode == expect_rc, (
            f"rc={result.returncode}\n{result.stdout}\n{result.stderr}"
        )
        return result

    def resume_seq(self, stdout):
        match = RESUME_RE.search(stdout)
        assert match, f"no recovery line in:\n{stdout}"
        return int(match.group(1))

    # -- fault injection ------------------------------------------------
    def tear_active_tail(self, max_acked):
        """Tear the unsealed tail, never cutting below an acked record.

        When the active segment holds durable-but-unacknowledged
        records, destroy them; otherwise the tear is the half-written
        *next* record -- garbage bytes after the last complete frame,
        exactly what a kill mid-``write`` leaves behind.
        """
        segments = list_segments(self.wal_dir)
        assert segments
        path = segments[-1][1]
        info = read_segment(path)
        if info.sealed:
            return False
        acked_here = max(0, max_acked - info.base_seq + 1)
        torn_tail(path, keep_records=min(len(info.records), acked_here))
        return True

    def corrupt_needed_segment(self):
        """Bit-flip a sealed segment recovery must replay.

        Returns an undo callable, or None when every sealed segment is
        already covered by the newest checkpoint (retry after the next
        kill in that case).
        """
        manager = CheckpointManager(os.path.join(self.wal_dir,
                                                 "checkpoints"))
        entries = manager.entries()
        from_seq = (entries[-1].iteration + 1) if entries else 1
        for _, path in reversed(list_segments(self.wal_dir)):
            info = read_segment(path)
            if info.sealed and info.records and info.last_seq >= from_seq:
                offset = flip_bit(path)
                return lambda: flip_bit(path, byte_offset=offset)
        return None


def test_ingest_chaos_gate(tmp_path):
    events = make_stream()
    harness = IngesterHarness(tmp_path, events)

    torn_done = corrupt_done = False
    prev_max_acked = 0
    for cycle, mark in enumerate(KILL_MARKS):
        stdout, acked = harness.run_until_killed(mark)
        if cycle > 0:
            # Zero acknowledged-event loss: every restart resumes at or
            # past every sequence number acknowledged before the kill.
            resume = harness.resume_seq(stdout)
            assert resume - 1 >= prev_max_acked, (
                f"cycle {cycle}: acked through {prev_max_acked} but "
                f"recovery resumed at {resume}"
            )
        assert acked == sorted(set(acked)), "ack log must be monotonic"
        prev_max_acked = max(acked)

        if not torn_done:
            # Crash damage class 1: a torn tail (bytes that never
            # finished their fsync). Recovery repairs it silently.
            torn_done = harness.tear_active_tail(prev_max_acked)
        elif not corrupt_done:
            # Crash damage class 2: bit rot inside a sealed segment
            # that replay needs. Recovery must refuse loudly --
            # acknowledged data is never silently dropped -- and
            # proceed once the damage is repaired.
            undo = harness.corrupt_needed_segment()
            if undo is not None:
                failed = harness.run_to_completion(expect_rc=1)
                assert "error:" in failed.stderr
                assert "wal-" in failed.stderr
                undo()
                corrupt_done = True

    assert torn_done, "torn-tail fault never applied across kills"
    assert corrupt_done, "corrupt-segment fault never applied across kills"

    final = harness.run_to_completion()
    assert harness.resume_seq(final.stdout) - 1 >= prev_max_acked
    assert "final:" in final.stdout

    # Every event eventually got a durable acknowledgement.
    acked = harness.acked()
    assert acked == sorted(set(acked))
    assert max(acked) == len(events)

    # Final-summary equivalence to a clean single-pass replay: both are
    # lossless summaries of the identical final graph, so full
    # reconstruction must match and every neighbor query agrees.
    clean = DynamicSummarizer(num_nodes=NUM_NODES, seed=0)
    clean.apply(events)
    summary = read_summary(harness.out)
    rebuilt = reconstruct(summary)
    assert rebuilt == clean.current_graph()
    compiled = clean.snapshot_compiled()
    for node in range(NUM_NODES):
        assert sorted(rebuilt.neighbors(node)) == \
            sorted(compiled.neighbors(node))
