"""Property: compiled stream snapshots answer like batch summaries.

``DynamicSummarizer.snapshot_compiled()`` and a batch ``LDME`` run over
the *same final graph* are both lossless, so every neighbor-style query
must agree — the SsAG-style "utility under change" oracle that lets the
online service stand in for the batch pipeline. Hypothesis drives small
insert/delete streams (with duplicate inserts, re-inserts after delete,
and deletes of absent edges) to hunt order-dependent divergence.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.graph import Graph
from repro.queries.compiled import CompiledSummaryIndex
from repro.streaming import DynamicSummarizer

NUM_NODES = 14


@st.composite
def event_streams(draw):
    """A plausible edge stream: inserts with interleaved deletions."""
    count = draw(st.integers(min_value=1, max_value=60))
    events = []
    live = []
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=NUM_NODES - 1))
        v = draw(st.integers(min_value=0, max_value=NUM_NODES - 1))
        if u == v:
            continue
        delete = live and draw(st.booleans()) and draw(st.booleans())
        if delete:
            # Delete a live edge (realistic) or the drawn pair (tests
            # deleting absent edges too).
            if draw(st.booleans()):
                u, v = draw(st.sampled_from(live))
            events.append(("-", u, v))
            key = (min(u, v), max(u, v))
            if key in live:
                live.remove(key)
        else:
            events.append(("+", u, v))
            key = (min(u, v), max(u, v))
            if key not in live:
                live.append(key)
    return events


def final_graph(events):
    live = set()
    for op, u, v in events:
        key = (min(u, v), max(u, v))
        if op == "+":
            live.add(key)
        else:
            live.discard(key)
    return Graph.from_edges(NUM_NODES, sorted(live))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=event_streams(), seed=st.integers(min_value=0, max_value=3))
def test_compiled_snapshot_matches_batch_ldme(events, seed):
    ds = DynamicSummarizer(num_nodes=NUM_NODES, sample_size=10, seed=seed)
    ds.apply(events)
    graph = final_graph(events)
    # The stream-maintained graph is exactly the event-fold.
    assert ds.current_graph() == graph

    stream_index = ds.snapshot_compiled()
    batch_summary = LDME(k=4, iterations=5, seed=seed).summarize(graph)
    batch_index = CompiledSummaryIndex(batch_summary)

    for v in range(NUM_NODES):
        assert sorted(stream_index.neighbors(v)) == \
            sorted(batch_index.neighbors(v)), f"node {v} diverges"
        assert stream_index.degree(v) == batch_index.degree(v)
    for u in range(NUM_NODES):
        for v in range(u + 1, NUM_NODES):
            assert stream_index.has_edge(u, v) == batch_index.has_edge(u, v)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=event_streams())
def test_snapshot_reconstructs_final_graph(events):
    ds = DynamicSummarizer(num_nodes=NUM_NODES, sample_size=10, seed=0)
    ds.apply(events)
    assert reconstruct(ds.snapshot()) == final_graph(events)
