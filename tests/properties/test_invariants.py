"""Property-based tests (hypothesis) for the package's core invariants.

These are the guarantees a downstream user relies on, exercised over
arbitrary small graphs:

1. every summarizer is lossless for ε = 0;
2. the encoder's objective equals the per-pair minimum cost;
3. DOPH bulk == DOPH scalar for arbitrary inputs;
4. partitions remain valid under arbitrary merge/extract sequences;
5. weighted Jaccard is a bounded, symmetric similarity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.mosso import MoSSo
from repro.baselines.sags import SAGS
from repro.baselines.sweg import SWeG
from repro.core.ldme import LDME
from repro.core.partition import SupernodePartition
from repro.core.reconstruct import reconstruct
from repro.graph.graph import Graph
from repro.lsh.doph import doph_signature, doph_signatures_bulk
from repro.lsh.weighted import weighted_jaccard

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_nodes=16):
    """Arbitrary small simple graphs (possibly with isolated nodes)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=40, unique=True)
        if possible
        else st.just([])
    )
    return Graph.from_edges(n, edges)


class TestLosslessInvariant:
    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 10))
    def test_ldme_lossless(self, graph, seed):
        result = LDME(k=3, iterations=4, seed=seed).summarize(graph)
        assert reconstruct(result) == graph

    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 10))
    def test_sweg_lossless(self, graph, seed):
        result = SWeG(iterations=3, seed=seed).summarize(graph)
        assert reconstruct(result) == graph

    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 5))
    def test_mosso_lossless(self, graph, seed):
        result = MoSSo(seed=seed, sample_size=5).summarize(graph)
        assert reconstruct(result) == graph

    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 5))
    def test_sags_lossless(self, graph, seed):
        result = SAGS(seed=seed, rounds=1).summarize(graph)
        assert reconstruct(result) == graph


class TestEncodeObjectiveMinimality:
    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 10))
    def test_objective_equals_pairwise_minimum(self, graph, seed):
        from repro.core.encode import encode_sorted
        from repro.core.saving import GroupAdjacency
        from repro.core.summary import Summarization

        rng = np.random.default_rng(seed)
        part = SupernodePartition(graph.num_nodes)
        for _ in range(int(rng.integers(0, graph.num_nodes))):
            ids = list(part.supernode_ids())
            if len(ids) < 2:
                break
            a, b = rng.choice(len(ids), size=2, replace=False)
            part.merge(ids[int(a)], ids[int(b)])
        ids = list(part.supernode_ids())
        adjacency = GroupAdjacency(graph, part, ids)
        expected = sum(adjacency.cost(sid) for sid in ids)
        # Each non-loop pair is counted twice in the sum of costs.
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                e = adjacency.edge_count(a, b)
                if e:
                    expected -= min(e, 1 + part.size(a) * part.size(b) - e)
        result = encode_sorted(graph, part)
        summary = Summarization(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            partition=part,
            superedges=result.superedges,
            corrections=result.corrections,
        )
        assert summary.objective == expected


class TestDophEquivalence:
    @SETTINGS
    @given(
        n=st.integers(4, 60),
        k=st.integers(1, 12),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    def test_bulk_matches_scalar(self, n, k, seed, data):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n).astype(np.int64)
        directions = rng.integers(0, 2, size=k).astype(np.int64)
        items = data.draw(
            st.lists(st.integers(0, n - 1), max_size=n, unique=True)
        )
        arr = np.asarray(items, dtype=np.int64)
        scalar = doph_signature(arr, perm, k, directions)
        bulk = doph_signatures_bulk(
            np.zeros(arr.size, dtype=np.int64), arr, 1, perm, k, directions
        )
        assert np.array_equal(bulk[0], scalar)


class TestPartitionInvariant:
    @SETTINGS
    @given(
        n=st.integers(2, 20),
        ops=st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)),
                     max_size=30),
    )
    def test_valid_under_merge_extract_sequences(self, n, ops):
        part = SupernodePartition(n)
        rng = np.random.default_rng(42)
        for is_merge, raw in ops:
            if is_merge:
                ids = list(part.supernode_ids())
                if len(ids) < 2:
                    continue
                a = ids[raw % len(ids)]
                b = ids[(raw // 7 + 1) % len(ids)]
                if a != b:
                    part.merge(a, b)
            else:
                part.extract(raw % n)
        part.validate()
        assert part.num_supernodes >= 1


class TestWeightedJaccardProperties:
    weight_vectors = st.dictionaries(
        st.integers(0, 10), st.integers(0, 5), max_size=8
    )

    @SETTINGS
    @given(x=weight_vectors, y=weight_vectors)
    def test_bounded_and_symmetric(self, x, y):
        value = weighted_jaccard(x, y)
        assert 0.0 <= value <= 1.0
        assert value == weighted_jaccard(y, x)

    @SETTINGS
    @given(x=weight_vectors)
    def test_identity(self, x):
        assert weighted_jaccard(x, x) == 1.0


class TestSerializationInvariant:
    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 10))
    def test_binary_roundtrip_arbitrary_summaries(self, graph, seed, tmp_path_factory):
        from repro.binaryio import read_summary_binary, write_summary_binary

        summary = LDME(k=3, iterations=3, seed=seed).summarize(graph)
        path = tmp_path_factory.mktemp("bin") / "s.ldmeb"
        write_summary_binary(summary, path)
        loaded = read_summary_binary(path)
        assert reconstruct(loaded) == graph
        assert loaded.objective == summary.objective


class TestLossyInvariant:
    @SETTINGS
    @given(
        graph=graphs(),
        seed=st.integers(0, 5),
        epsilon=st.sampled_from([0.1, 0.5, 1.0]),
    )
    def test_drop_respects_error_bound(self, graph, seed, epsilon):
        from repro.core.drop import verify_error_bound

        summary = LDME(k=3, iterations=3, seed=seed,
                       epsilon=epsilon).summarize(graph)
        verify_error_bound(graph, summary, epsilon)

    @SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 5))
    def test_drop_never_grows_objective(self, graph, seed):
        lossless = LDME(k=3, iterations=3, seed=seed).summarize(graph)
        lossy = LDME(k=3, iterations=3, seed=seed,
                     epsilon=0.5).summarize(graph)
        assert lossy.objective <= lossless.objective
