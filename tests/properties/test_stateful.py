"""Stateful (rule-based) hypothesis tests.

Random interleavings of operations, checked against brute-force oracles:

* MoSSo's :class:`StreamState` — inserts, deletes, merges, extracts — the
  incremental count table must always equal a from-scratch recount;
* :class:`SupernodePartition` — merges and extracts keep the partition a
  partition.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.baselines.mosso import StreamState
from repro.core.partition import SupernodePartition

NUM_NODES = 12


class StreamStateMachine(RuleBasedStateMachine):
    """Drive StreamState through arbitrary operation sequences."""

    def __init__(self):
        super().__init__()
        self.state = StreamState(NUM_NODES)

    @rule(u=st.integers(0, NUM_NODES - 1), v=st.integers(0, NUM_NODES - 1))
    def insert_edge(self, u, v):
        if u != v and v not in self.state.adjacency[u]:
            self.state.add_edge(u, v)

    @rule(u=st.integers(0, NUM_NODES - 1), v=st.integers(0, NUM_NODES - 1))
    def delete_edge(self, u, v):
        if u != v and v in self.state.adjacency[u]:
            self.state.remove_edge(u, v)

    @rule(pick=st.integers(0, 10**6))
    def merge_supernodes(self, pick):
        ids = sorted(self.state.partition.supernode_ids())
        if len(ids) < 2:
            return
        a = ids[pick % len(ids)]
        b = ids[(pick // 13 + 1) % len(ids)]
        if a != b:
            self.state.merge(a, b)

    @rule(v=st.integers(0, NUM_NODES - 1))
    def extract_node(self, v):
        self.state.extract(v)

    @invariant()
    def counts_match_recount(self):
        for sid in self.state.partition.supernode_ids():
            assert self.state.counts[sid] == self.state.recompute_counts(sid)

    @invariant()
    def partition_is_valid(self):
        self.state.partition.validate()


class PartitionMachine(RuleBasedStateMachine):
    """Merges and extracts never break partition invariants."""

    def __init__(self):
        super().__init__()
        self.partition = SupernodePartition(NUM_NODES)

    @rule(pick=st.integers(0, 10**6))
    def merge(self, pick):
        ids = sorted(self.partition.supernode_ids())
        if len(ids) < 2:
            return
        a = ids[pick % len(ids)]
        b = ids[(pick // 7 + 1) % len(ids)]
        if a != b:
            survivor, absorbed = self.partition.merge(a, b)
            assert survivor in self.partition
            assert absorbed not in self.partition

    @rule(v=st.integers(0, NUM_NODES - 1))
    def extract(self, v):
        sid = self.partition.extract(v)
        assert self.partition.supernode_of(v) == sid
        assert self.partition.members(sid) == [v]

    @invariant()
    def stays_a_partition(self):
        self.partition.validate()
        covered = sum(
            len(self.partition.members(sid))
            for sid in self.partition.supernode_ids()
        )
        assert covered == NUM_NODES


TestStreamState = StreamStateMachine.TestCase
TestStreamState.settings = settings(max_examples=30, deadline=None,
                                    stateful_step_count=40)
TestPartition = PartitionMachine.TestCase
TestPartition.settings = settings(max_examples=30, deadline=None,
                                  stateful_step_count=40)


class DynamicSummarizerMachine(RuleBasedStateMachine):
    """DynamicSummarizer against a naive edge-set oracle."""

    def __init__(self):
        super().__init__()
        from repro.streaming import DynamicSummarizer

        self.ds = DynamicSummarizer(NUM_NODES, sample_size=4, seed=0)
        self.oracle = set()

    @rule(u=st.integers(0, NUM_NODES - 1), v=st.integers(0, NUM_NODES - 1))
    def insert(self, u, v):
        self.ds.insert(u, v)
        if u != v:
            self.oracle.add((min(u, v), max(u, v)))

    @rule(u=st.integers(0, NUM_NODES - 1), v=st.integers(0, NUM_NODES - 1))
    def delete(self, u, v):
        self.ds.delete(u, v)
        self.oracle.discard((min(u, v), max(u, v)))

    @invariant()
    def edge_count_matches_oracle(self):
        assert self.ds.num_edges == len(self.oracle)

    @invariant()
    def current_graph_matches_oracle(self):
        assert set(self.ds.current_graph().edges()) == self.oracle

    @rule()
    def snapshot_is_lossless(self):
        from repro.core.reconstruct import reconstruct

        snapshot = self.ds.snapshot()
        assert set(reconstruct(snapshot).edges()) == self.oracle


TestDynamicSummarizer = DynamicSummarizerMachine.TestCase
TestDynamicSummarizer.settings = settings(max_examples=20, deadline=None,
                                          stateful_step_count=30)
