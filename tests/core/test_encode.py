"""Tests for the three encoders (sorted, per-supernode, all-pairs).

All encoders must produce (a) lossless output and (b) the *minimum-cost*
encoding for each supernode pair under the decision rule — and they must
agree with each other on the objective value.
"""

import numpy as np
import pytest

from repro.core.encode import (
    encode_all_pairs,
    encode_per_supernode,
    encode_sorted,
)
from repro.core.partition import SupernodePartition
from repro.core.reconstruct import reconstruct
from repro.core.summary import Summarization
from repro.graph.generators import erdos_renyi, web_host_graph
from repro.graph.graph import Graph

ENCODERS = [encode_sorted, encode_per_supernode, encode_all_pairs]


def _summarize(graph, partition, result):
    return Summarization(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        partition=partition,
        superedges=result.superedges,
        corrections=result.corrections,
    )


def _random_partition(n, rng, merges):
    part = SupernodePartition(n)
    for _ in range(merges):
        ids = list(part.supernode_ids())
        if len(ids) < 2:
            break
        a, b = rng.choice(len(ids), size=2, replace=False)
        part.merge(ids[int(a)], ids[int(b)])
    return part


class TestDecisionRule:
    def test_sparse_pair_goes_to_additions(self):
        # One edge between two 2-node supernodes: C+ wins (1 <= 4/2).
        g = Graph.from_edges(4, [(0, 2)])
        part = SupernodePartition.from_members(4, {0: [0, 1], 2: [2, 3]})
        result = encode_sorted(g, part)
        assert result.superedges == []
        assert result.corrections.additions == [(0, 2)]
        assert result.corrections.deletions == []

    def test_dense_pair_gets_superedge(self):
        # 3 of 4 cross edges: superedge + 1 deletion beats 3 additions.
        g = Graph.from_edges(4, [(0, 2), (0, 3), (1, 2)])
        part = SupernodePartition.from_members(4, {0: [0, 1], 2: [2, 3]})
        result = encode_sorted(g, part)
        assert result.superedges == [(0, 2)]
        assert result.corrections.deletions == [(1, 3)]
        assert result.corrections.additions == []

    def test_complete_block_no_corrections(self, bipartite_block):
        part = SupernodePartition.from_members(
            7, {0: [0, 1, 2], 3: [3, 4, 5], 6: [6]}
        )
        result = encode_sorted(bipartite_block, part)
        assert result.superedges == [(0, 3)]
        assert result.corrections.size == 0

    def test_superloop_rule_dense_interior(self, triangle):
        part = SupernodePartition.from_members(3, {0: [0, 1, 2]})
        result = encode_sorted(triangle, part)
        assert result.superedges == [(0, 0)]
        assert result.corrections.size == 0

    def test_superloop_rule_sparse_interior(self, path4):
        # P4 inside one supernode: 3 edges of 6 pairs → threshold is
        # |A|(|A|-1)/4 = 3, so 3 <= 3 keeps them in C+.
        part = SupernodePartition.from_members(4, {0: [0, 1, 2, 3]})
        result = encode_sorted(path4, part)
        assert result.superedges == []
        assert len(result.corrections.additions) == 3

    def test_boundary_exactly_half(self):
        # Exactly |A||B|/2 edges: rule says do NOT encode a superedge.
        g = Graph.from_edges(4, [(0, 2), (1, 3)])
        part = SupernodePartition.from_members(4, {0: [0, 1], 2: [2, 3]})
        result = encode_sorted(g, part)
        assert result.superedges == []
        assert len(result.corrections.additions) == 2

    def test_singleton_partition_identity(self, random_graph):
        # With all-singleton supernodes, |E_AB| = 1 > |A||B|/2 = 0.5, so
        # every edge becomes a superedge and the summary is the graph
        # itself (objective = |E|).
        part = SupernodePartition(random_graph.num_nodes)
        result = encode_sorted(random_graph, part)
        assert len(result.superedges) == random_graph.num_edges
        assert result.corrections.size == 0

    def test_empty_graph(self):
        g = Graph.from_edges(4, [])
        result = encode_sorted(g, SupernodePartition(4))
        assert result.superedges == []
        assert result.corrections.size == 0


class TestEncodersAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_objective_and_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(20, 0.25, seed=seed)
        part = _random_partition(20, rng, merges=8)
        results = [encoder(graph, part) for encoder in ENCODERS]
        objectives = [
            _summarize(graph, part, r).objective for r in results
        ]
        assert len(set(objectives)) == 1
        for r in results:
            assert reconstruct(_summarize(graph, part, r)) == graph

    def test_same_superedges(self, small_web, rng):
        part = _random_partition(small_web.num_nodes, rng, merges=30)
        expected = sorted(encode_sorted(small_web, part).superedges)
        for encoder in (encode_per_supernode, encode_all_pairs):
            assert sorted(encoder(small_web, part).superedges) == expected


class TestLosslessInvariant:
    @pytest.mark.parametrize("merges", [0, 5, 15, 35])
    def test_random_partitions_reconstruct(self, merges, rng):
        graph = web_host_graph(num_hosts=4, host_size=10, seed=3)
        part = _random_partition(graph.num_nodes, rng, merges)
        result = encode_sorted(graph, part)
        assert reconstruct(_summarize(graph, part, result)) == graph

    def test_everything_in_one_supernode(self, random_graph):
        part = SupernodePartition.from_members(
            random_graph.num_nodes,
            {0: list(range(random_graph.num_nodes))},
        )
        result = encode_sorted(random_graph, part)
        summary = _summarize(random_graph, part, result)
        assert reconstruct(summary) == random_graph


class TestMinimality:
    def test_objective_is_pairwise_minimum(self, rng):
        # The encoded objective must equal the sum over supernode pairs of
        # min(E, 1 + F - E) plus loop terms — i.e. the best per-pair choice.
        from repro.core.saving import GroupAdjacency

        graph = erdos_renyi(16, 0.3, seed=5)
        part = _random_partition(16, rng, merges=6)
        ids = list(part.supernode_ids())
        adjacency = GroupAdjacency(graph, part, ids)
        expected = 0.0
        for i, a in enumerate(ids):
            for b in ids[i:]:
                e = adjacency.edge_count(a, b)
                if e == 0:
                    continue
                if a == b:
                    size = part.size(a)
                    expected += min(e, size * (size - 1) // 2 - e)
                else:
                    expected += min(e, 1 + part.size(a) * part.size(b) - e)
        result = encode_sorted(graph, part)
        assert _summarize(graph, part, result).objective == expected
