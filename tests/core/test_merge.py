"""Tests for the merge phase (threshold, exact and SuperJaccard loops)."""

import numpy as np
import pytest

from repro.core.merge import (
    merge_group_exact,
    merge_group_superjaccard,
    merge_threshold,
    super_jaccard,
)
from repro.core.partition import SupernodePartition
from repro.graph.generators import web_host_graph
from repro.graph.graph import Graph


class TestThreshold:
    def test_schedule_values(self):
        assert merge_threshold(1) == pytest.approx(0.5)
        assert merge_threshold(4) == pytest.approx(0.2)

    def test_decreasing(self):
        values = [merge_threshold(t) for t in range(1, 20)]
        assert values == sorted(values, reverse=True)

    def test_invalid_iteration(self):
        with pytest.raises(ValueError):
            merge_threshold(0)


class TestSuperJaccard:
    def test_equals_weighted_jaccard_identity(self):
        a = {1: 2, 2: 1}
        b = {1: 1, 3: 1}
        # min 1 / max (2 + 1 + 1)
        assert super_jaccard(a, b) == pytest.approx(1 / 4)

    def test_identical_vectors(self):
        assert super_jaccard({1: 3}, {1: 3}) == 1.0


class TestMergeGroupExact:
    def test_merges_identical_twins(self, star):
        part = SupernodePartition(6)
        stats = merge_group_exact(
            star, part, [1, 2, 3, 4, 5], threshold=0.4, seed=0
        )
        assert stats.merges >= 1
        part.validate()

    def test_high_threshold_blocks_merges(self, path4):
        part = SupernodePartition(4)
        stats = merge_group_exact(path4, part, [0, 3], threshold=0.99, seed=0)
        assert stats.merges == 0
        assert part.num_supernodes == 4

    def test_threshold_respected(self, star):
        # Twin-leaf saving is exactly 0.5; a threshold just above blocks it.
        part = SupernodePartition(6)
        stats = merge_group_exact(star, part, [1, 2], threshold=0.51, seed=0)
        assert stats.merges == 0
        part2 = SupernodePartition(6)
        stats2 = merge_group_exact(star, part2, [1, 2], threshold=0.5, seed=0)
        assert stats2.merges == 1

    def test_small_group_noop(self, star):
        part = SupernodePartition(6)
        stats = merge_group_exact(star, part, [1], threshold=0.0, seed=0)
        assert stats.merges == 0
        assert stats.candidates_scored == 0

    def test_chained_merges_within_group(self):
        # 4 leaves with identical neighbourhood can collapse repeatedly.
        g = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        part = SupernodePartition(5)
        stats = merge_group_exact(
            g, part, [1, 2, 3, 4], threshold=0.1, seed=1
        )
        assert stats.merges >= 2
        part.validate()

    def test_partition_stays_valid_on_web(self, small_web, rng):
        part = SupernodePartition(small_web.num_nodes)
        group = list(range(0, 24))
        merge_group_exact(small_web, part, group, threshold=0.2, seed=rng)
        part.validate()


class TestMergeGroupSuperJaccard:
    def test_merges_identical_twins(self, star):
        part = SupernodePartition(6)
        stats = merge_group_superjaccard(
            star, part, [1, 2, 3, 4, 5], threshold=0.4, seed=0
        )
        assert stats.merges >= 1
        part.validate()

    def test_counts_candidates(self, star):
        part = SupernodePartition(6)
        stats = merge_group_superjaccard(
            star, part, [1, 2, 3], threshold=0.99, seed=0
        )
        assert stats.candidates_scored >= 2

    def test_vector_folding_after_merge(self, two_cliques):
        part = SupernodePartition(8)
        stats = merge_group_superjaccard(
            two_cliques, part, [1, 2, 3], threshold=0.3, seed=0
        )
        part.validate()
        if stats.merges:
            assert part.num_supernodes == 8 - stats.merges

    def test_same_outcome_space_as_exact(self, small_web):
        # Both policies must produce valid partitions of the same node set.
        for fn in (merge_group_exact, merge_group_superjaccard):
            part = SupernodePartition(small_web.num_nodes)
            fn(small_web, part, list(range(12)), threshold=0.2, seed=7)
            part.validate()


class TestMergeStatsAccumulation:
    def test_iadd(self):
        from repro.core.merge import MergeStats

        a = MergeStats(merges=1, candidates_scored=5)
        a += MergeStats(merges=2, candidates_scored=7)
        assert a.merges == 3
        assert a.candidates_scored == 12
