"""Tests for SupernodePartition."""

import numpy as np
import pytest

from repro.core.partition import SupernodePartition
from repro.graph.graph import Graph


class TestInitialState:
    def test_singletons(self):
        part = SupernodePartition(4)
        assert part.num_supernodes == 4
        for v in range(4):
            assert part.supernode_of(v) == v
            assert part.members(v) == [v]

    def test_empty_universe(self):
        part = SupernodePartition(0)
        assert part.num_supernodes == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SupernodePartition(-1)


class TestMerge:
    def test_merge_keeps_larger_id(self):
        part = SupernodePartition(5)
        part.merge(0, 1)          # sizes 1/1 → keeps first (0)
        survivor, absorbed = part.merge(2, 0)  # 0 now has 2 members
        assert survivor == 0
        assert absorbed == 2
        assert sorted(part.members(0)) == [0, 1, 2]

    def test_merge_tie_keeps_first(self):
        part = SupernodePartition(4)
        survivor, absorbed = part.merge(3, 1)
        assert survivor == 3
        assert absorbed == 1

    def test_node2super_updated(self):
        part = SupernodePartition(4)
        part.merge(0, 3)
        assert part.supernode_of(3) == 0
        assert part.supernode_of(0) == 0

    def test_merge_self_rejected(self):
        part = SupernodePartition(3)
        with pytest.raises(ValueError):
            part.merge(1, 1)

    def test_merge_reduces_count(self):
        part = SupernodePartition(6)
        part.merge(0, 1)
        part.merge(2, 3)
        assert part.num_supernodes == 4

    def test_merged_id_gone(self):
        part = SupernodePartition(3)
        _, absorbed = part.merge(0, 1)
        assert absorbed not in part
        with pytest.raises(KeyError):
            part.members(absorbed)

    def test_validate_after_random_merges(self, rng):
        part = SupernodePartition(30)
        for _ in range(20):
            ids = list(part.supernode_ids())
            if len(ids) < 2:
                break
            a, b = rng.choice(len(ids), size=2, replace=False)
            part.merge(ids[int(a)], ids[int(b)])
        part.validate()


class TestExtract:
    def test_extract_creates_singleton(self):
        part = SupernodePartition(4)
        part.merge(0, 1)
        part.extract(1)
        assert part.supernode_of(1) == 1
        assert part.members(1) == [1]
        assert part.members(0) == [0]

    def test_extract_singleton_noop(self):
        part = SupernodePartition(3)
        assert part.extract(2) == 2
        part.validate()

    def test_extract_label_owner_relabels_remainder(self):
        part = SupernodePartition(4)
        part.merge(0, 1)
        part.merge(0, 2)
        part.extract(0)  # 0 owned the label
        assert part.supernode_of(0) == 0
        assert part.members(0) == [0]
        remainder = part.supernode_of(1)
        assert remainder == part.supernode_of(2)
        assert remainder in (1, 2)
        part.validate()

    def test_extract_then_merge_roundtrip(self):
        part = SupernodePartition(5)
        part.merge(0, 1)
        part.extract(1)
        part.merge(0, 1)
        assert sorted(part.members(part.supernode_of(0))) == [0, 1]
        part.validate()


class TestFromMembers:
    def test_valid_mapping(self):
        part = SupernodePartition.from_members(4, {0: [0, 1], 2: [2], 3: [3]})
        assert part.num_supernodes == 3
        assert part.supernode_of(1) == 0

    def test_missing_node_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            SupernodePartition.from_members(3, {0: [0, 1]})

    def test_double_assignment_rejected(self):
        with pytest.raises(ValueError, match="two supernodes"):
            SupernodePartition.from_members(2, {0: [0, 1], 1: [1]})

    def test_empty_supernode_rejected(self):
        with pytest.raises(ValueError, match="no members"):
            SupernodePartition.from_members(1, {0: [0], 5: []})

    def test_out_of_range_member_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SupernodePartition.from_members(2, {0: [0, 5], 1: [1]})


class TestNeighborhoodViews:
    def test_neighborhood_union(self, two_cliques):
        part = SupernodePartition(8)
        part.merge(0, 1)
        hood = part.neighborhood(two_cliques, 0)
        expected = np.unique(
            np.concatenate([two_cliques.neighbors(0), two_cliques.neighbors(1)])
        )
        assert np.array_equal(hood, expected)

    def test_neighborhood_of_isolated(self):
        g = Graph.from_edges(3, [(0, 1)])
        part = SupernodePartition(3)
        assert part.neighborhood(g, 2).size == 0

    def test_supervector_counts(self, two_cliques):
        part = SupernodePartition(8)
        part.merge(0, 1)
        vec = part.supervector(two_cliques, 0)
        # Nodes 2 and 3 are adjacent to both 0 and 1.
        assert vec[2] == 2
        assert vec[3] == 2
        # Node 4 is adjacent only to 0 (the bridge).
        assert vec[4] == 1

    def test_members_map_is_snapshot(self):
        part = SupernodePartition(3)
        snap = part.members_map()
        part.merge(0, 1)
        assert snap == {0: [0], 1: [1], 2: [2]}


class TestCopy:
    def test_copy_independent(self):
        part = SupernodePartition(4)
        dup = part.copy()
        part.merge(0, 1)
        assert dup.num_supernodes == 4
        dup.validate()
        part.validate()


class TestFromLabels:
    def test_groups_by_label(self):
        part = SupernodePartition.from_labels([7, 7, 9, 9, 9])
        assert part.num_supernodes == 2
        assert sorted(part.members(part.supernode_of(0))) == [0, 1]
        assert sorted(part.members(part.supernode_of(2))) == [2, 3, 4]
        part.validate()

    def test_string_labels(self):
        part = SupernodePartition.from_labels(["a", "b", "a"])
        assert part.supernode_of(0) == part.supernode_of(2)
        assert part.supernode_of(1) != part.supernode_of(0)

    def test_supernode_ids_are_min_members(self):
        part = SupernodePartition.from_labels([1, 0, 1, 0])
        assert set(part.supernode_ids()) == {0, 1}

    def test_empty(self):
        part = SupernodePartition.from_labels([])
        assert part.num_supernodes == 0
