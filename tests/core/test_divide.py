"""Tests for the divide step (weighted LSH and shingle)."""

import numpy as np
import pytest

from repro.core.divide import lsh_divide, shingle_divide
from repro.core.partition import SupernodePartition
from repro.graph.generators import web_host_graph
from repro.graph.graph import Graph


class TestLSHDivide:
    def test_groups_are_disjoint_supernodes(self, small_web):
        part = SupernodePartition(small_web.num_nodes)
        groups, _ = lsh_divide(small_web, part, k=5, seed=0)
        seen = [sid for group in groups for sid in group]
        assert len(seen) == len(set(seen))
        assert all(sid in part for sid in seen)

    def test_identical_neighborhood_nodes_grouped(self, star):
        # All 5 leaves have the identical neighbourhood {0}: every k must
        # put them in one group.
        part = SupernodePartition(6)
        groups, _ = lsh_divide(star, part, k=4, seed=1)
        leaf_groups = [g for g in groups if set(g) & set(range(1, 6))]
        assert len(leaf_groups) == 1
        assert set(leaf_groups[0]) >= {1, 2, 3, 4, 5}

    def test_isolated_supernodes_excluded(self):
        g = Graph.from_edges(5, [(0, 1)])
        part = SupernodePartition(5)
        groups, stats = lsh_divide(g, part, k=3, seed=0)
        assert stats.num_isolated == 3
        grouped = {sid for group in groups for sid in group}
        assert grouped <= {0, 1}

    def test_groups_have_at_least_two(self, small_web):
        part = SupernodePartition(small_web.num_nodes)
        groups, _ = lsh_divide(small_web, part, k=5, seed=0)
        assert all(len(group) >= 2 for group in groups)

    def test_increasing_k_more_groups_smaller_max(self):
        graph = web_host_graph(num_hosts=20, host_size=30,
                               mutation_prob=0.15, seed=4)
        part = SupernodePartition(graph.num_nodes)
        shapes = {
            k: lsh_divide(graph, part, k=k, seed=0)[1] for k in (2, 20)
        }
        assert shapes[20].num_groups > shapes[2].num_groups
        assert shapes[20].max_group_size <= shapes[2].max_group_size

    def test_stats_consistency(self, small_web):
        part = SupernodePartition(small_web.num_nodes)
        groups, stats = lsh_divide(small_web, part, k=5, seed=0)
        assert stats.num_mergeable == len(groups)
        assert stats.num_groups == stats.num_mergeable + stats.num_singletons
        grouped = sum(len(g) for g in groups)
        assert (
            grouped + stats.num_singletons + stats.num_isolated
            == part.num_supernodes
        )

    def test_invalid_k(self, small_web):
        with pytest.raises(ValueError):
            lsh_divide(small_web, SupernodePartition(small_web.num_nodes), k=0)

    def test_respects_partition_not_nodes(self, star):
        # After merging leaves 1 and 2, the divide sees 5 supernodes.
        part = SupernodePartition(6)
        part.merge(1, 2)
        groups, stats = lsh_divide(star, part, k=3, seed=0)
        total = sum(len(g) for g in groups) + stats.num_singletons
        assert total + stats.num_isolated == 5

    def test_deterministic_given_seed(self, small_web):
        part = SupernodePartition(small_web.num_nodes)
        a, _ = lsh_divide(small_web, part, k=5, seed=9)
        b, _ = lsh_divide(small_web, part, k=5, seed=9)
        assert sorted(map(sorted, a)) == sorted(map(sorted, b))


class TestShingleDivide:
    def test_groups_cover_non_isolated(self, small_web):
        part = SupernodePartition(small_web.num_nodes)
        groups, stats = shingle_divide(small_web, part, seed=0)
        grouped = sum(len(g) for g in groups)
        assert (
            grouped + stats.num_singletons + stats.num_isolated
            == part.num_supernodes
        )

    def test_fewer_groups_than_lsh(self):
        # One shingle is a far coarser divide than a k-bin signature.
        graph = web_host_graph(num_hosts=20, host_size=30, seed=4)
        part = SupernodePartition(graph.num_nodes)
        _, shingle_stats = shingle_divide(graph, part, seed=0)
        _, lsh_stats = lsh_divide(graph, part, k=10, seed=0)
        assert shingle_stats.max_group_size >= lsh_stats.max_group_size

    def test_isolated_excluded(self):
        g = Graph.from_edges(4, [(0, 1)])
        _, stats = shingle_divide(g, SupernodePartition(4), seed=0)
        assert stats.num_isolated == 2

    def test_resplit_bounds_group_size(self):
        graph = web_host_graph(num_hosts=10, host_size=40, seed=2)
        part = SupernodePartition(graph.num_nodes)
        groups, _ = shingle_divide(graph, part, seed=0, max_group_size=12)
        # Indivisible groups may stay large, but most must be bounded.
        oversized = [g for g in groups if len(g) > 12]
        baseline, _ = shingle_divide(graph, part, seed=0)
        assert len(oversized) <= sum(1 for g in baseline if len(g) > 12)
        assert max(len(g) for g in groups) <= max(len(g) for g in baseline)

    def test_star_nodes_sharing_hub_minimum_group_together(self, star):
        # f(v) = min(h(v), h(hub)): every leaf whose own hash exceeds the
        # hub's shares the hub's shingle, so the hub's group contains every
        # such leaf (and the divide still covers all supernodes).
        part = SupernodePartition(6)
        groups, stats = shingle_divide(star, part, seed=3)
        covered = sum(len(g) for g in groups) + stats.num_singletons
        assert covered == 6
        hub_groups = [g for g in groups if 0 in g]
        if hub_groups:
            assert len(hub_groups) == 1
            assert len(hub_groups[0]) >= 2
