"""Tests for the shared BaseSummarizer driver behaviours."""

import pytest

from repro.baselines.sweg import SWeG
from repro.core.base import BaseSummarizer
from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless


class TestDriverValidation:
    def test_encoder_validated(self):
        with pytest.raises(ValueError):
            LDME(encoder="bogus")

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            LDME(epsilon=-0.5)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            BaseSummarizer()


class TestTimingAccumulation:
    def test_phase_times_sum_to_iterations(self, small_web):
        result = LDME(k=5, iterations=5, seed=0).summarize(small_web)
        stats = result.stats
        divide_sum = sum(it.divide_seconds for it in stats.iterations)
        merge_sum = sum(it.merge_seconds for it in stats.iterations)
        assert stats.divide_seconds == pytest.approx(divide_sum)
        assert stats.merge_seconds == pytest.approx(merge_sum)

    def test_drop_time_only_when_lossy(self, small_web):
        lossless = LDME(k=5, iterations=3, seed=0).summarize(small_web)
        lossy = LDME(k=5, iterations=3, seed=0,
                     epsilon=0.2).summarize(small_web)
        assert lossless.stats.drop_seconds == 0.0
        assert lossy.stats.drop_seconds > 0.0


class TestEncoderAndTrackingCombos:
    def test_per_supernode_with_tracking(self, small_web):
        result = LDME(k=5, iterations=3, seed=0, encoder="per-supernode",
                      track_compression=True).summarize(small_web)
        verify_lossless(small_web, result)
        assert result.stats.iterations[-1].objective == result.objective

    def test_sweg_tracking_matches_final(self, small_web):
        result = SWeG(iterations=3, seed=0,
                      track_compression=True).summarize(small_web)
        assert result.stats.iterations[-1].objective == result.objective

    def test_tracking_with_early_stop(self):
        from repro.graph.graph import Graph

        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        result = LDME(k=3, iterations=20, seed=0, early_stop_rounds=2,
                      track_compression=True).summarize(g)
        assert len(result.stats.iterations) < 20
        assert all(
            it.objective is not None for it in result.stats.iterations
        )

    def test_lossy_with_tracking(self, small_web):
        result = LDME(k=5, iterations=3, seed=0, epsilon=0.2,
                      track_compression=True).summarize(small_web)
        # Tracked per-iteration objectives are lossless snapshots; the
        # final (dropped) objective can be lower.
        assert result.objective <= result.stats.iterations[-1].objective
