"""End-to-end tests for the LDME driver (Algorithm 1)."""

import pytest

from repro.core.config import LDMEConfig
from repro.core.ldme import LDME, ldme5, ldme20, summarize
from repro.core.reconstruct import verify_lossless
from repro.graph.generators import web_host_graph
from repro.graph.graph import Graph


class TestEndToEnd:
    def test_lossless_on_web_graph(self, small_web):
        result = LDME(k=5, iterations=10, seed=0).summarize(small_web)
        verify_lossless(small_web, result)

    def test_lossless_on_random_graph(self, random_graph):
        result = LDME(k=5, iterations=10, seed=0).summarize(random_graph)
        verify_lossless(random_graph, result)

    def test_lossless_with_isolated_nodes(self):
        g = Graph.from_edges(10, [(0, 1), (1, 2)])
        result = LDME(k=3, iterations=5, seed=0).summarize(g)
        verify_lossless(g, result)

    def test_empty_graph(self):
        g = Graph.from_edges(5, [])
        result = LDME(k=3, iterations=3, seed=0).summarize(g)
        assert result.objective == 0
        assert result.num_supernodes == 5

    def test_compresses_redundant_structure(self, small_web):
        result = LDME(k=5, iterations=20, seed=0).summarize(small_web)
        assert result.compression > 0.2
        assert result.num_supernodes < small_web.num_nodes

    def test_deterministic_given_seed(self, small_web):
        a = LDME(k=5, iterations=6, seed=11).summarize(small_web)
        b = LDME(k=5, iterations=6, seed=11).summarize(small_web)
        assert a.objective == b.objective
        assert sorted(a.superedges) == sorted(b.superedges)

    def test_algorithm_name_carries_k(self, small_web):
        result = LDME(k=7, iterations=2, seed=0).summarize(small_web)
        assert result.algorithm == "LDME7"


class TestStatsInstrumentation:
    def test_iteration_records_per_t(self, small_web):
        result = LDME(k=5, iterations=4, seed=0).summarize(small_web)
        assert len(result.stats.iterations) == 4
        assert [it.iteration for it in result.stats.iterations] == [1, 2, 3, 4]

    def test_phase_timings_nonnegative(self, small_web):
        stats = LDME(k=5, iterations=3, seed=0).summarize(small_web).stats
        assert stats.divide_seconds >= 0
        assert stats.merge_seconds >= 0
        assert stats.encode_seconds >= 0
        assert stats.total_seconds >= stats.encode_seconds

    def test_supernode_count_monotone_over_iterations(self, small_web):
        result = LDME(k=2, iterations=8, seed=0).summarize(small_web)
        counts = [it.num_supernodes for it in result.stats.iterations]
        assert counts == sorted(counts, reverse=True)


class TestTuning:
    def test_larger_k_fewer_merges(self):
        graph = web_host_graph(num_hosts=15, host_size=25,
                               mutation_prob=0.15, seed=5)
        low = LDME(k=2, iterations=10, seed=0).summarize(graph)
        high = LDME(k=20, iterations=10, seed=0).summarize(graph)
        assert low.compression >= high.compression

    def test_more_iterations_no_worse(self, small_web):
        short = LDME(k=5, iterations=2, seed=0).summarize(small_web)
        long = LDME(k=5, iterations=25, seed=0).summarize(small_web)
        assert long.compression >= short.compression - 1e-9


class TestConfiguration:
    def test_config_object(self, small_web):
        config = LDMEConfig(k=3, iterations=4, seed=9)
        result = LDME(config=config).summarize(small_web)
        assert result.algorithm == "LDME3"
        assert len(result.stats.iterations) == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LDMEConfig(k=0)
        with pytest.raises(ValueError):
            LDMEConfig(iterations=0)
        with pytest.raises(ValueError):
            LDMEConfig(epsilon=-1)
        with pytest.raises(ValueError):
            LDMEConfig(cost_model="nope")
        with pytest.raises(ValueError):
            LDMEConfig(encoder="nope")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LDME(k=0)
        with pytest.raises(ValueError):
            LDME(iterations=0)

    def test_paper_cost_model_still_lossless(self, small_web):
        result = LDME(k=5, iterations=6, seed=0,
                      cost_model="paper").summarize(small_web)
        verify_lossless(small_web, result)

    def test_per_supernode_encoder_option(self, small_web):
        result = LDME(k=5, iterations=4, seed=0,
                      encoder="per-supernode").summarize(small_web)
        verify_lossless(small_web, result)


class TestConvenienceAPI:
    def test_presets(self):
        assert ldme5().k == 5
        assert ldme20().k == 20
        assert ldme5(iterations=7).iterations == 7

    def test_summarize_function(self, small_web):
        result = summarize(small_web, k=5, iterations=5, seed=0)
        verify_lossless(small_web, result)


class TestEarlyStop:
    def test_stops_after_stalled_rounds(self):
        # A graph with nothing to merge: every iteration stalls.
        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        result = LDME(k=3, iterations=30, seed=0,
                      early_stop_rounds=3).summarize(g)
        assert len(result.stats.iterations) < 30

    def test_disabled_by_default(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        result = LDME(k=3, iterations=10, seed=0).summarize(g)
        assert len(result.stats.iterations) == 10

    def test_still_lossless(self, small_web):
        result = LDME(k=5, iterations=30, seed=0,
                      early_stop_rounds=2).summarize(small_web)
        verify_lossless(small_web, result)

    def test_validated(self):
        with pytest.raises(ValueError):
            LDME(early_stop_rounds=-1)


class TestMergePolicy:
    def test_superjaccard_policy_lossless(self, small_web):
        result = LDME(k=5, iterations=5, seed=0,
                      merge_policy="superjaccard").summarize(small_web)
        verify_lossless(small_web, result)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            LDME(merge_policy="bogus")


class TestTrackedCompression:
    def test_records_objective_per_iteration(self, small_web):
        result = LDME(k=5, iterations=5, seed=0,
                      track_compression=True).summarize(small_web)
        for record in result.stats.iterations:
            assert record.objective is not None
            assert record.compression is not None
            assert record.encode_seconds >= 0

    def test_final_tracked_point_matches_result(self, small_web):
        result = LDME(k=5, iterations=5, seed=0,
                      track_compression=True).summarize(small_web)
        last = result.stats.iterations[-1]
        assert last.objective == result.objective
        assert last.compression == pytest.approx(result.compression)

    def test_untracked_leaves_fields_none(self, small_web):
        result = LDME(k=5, iterations=3, seed=0).summarize(small_web)
        assert all(it.objective is None for it in result.stats.iterations)

    def test_tracked_objective_non_increasing(self, small_web):
        result = LDME(k=2, iterations=8, seed=0,
                      track_compression=True).summarize(small_web)
        objectives = [it.objective for it in result.stats.iterations]
        assert objectives == sorted(objectives, reverse=True)


class TestWarmStart:
    def test_warm_start_lossless(self, small_web):
        first = LDME(k=5, iterations=4, seed=0).summarize(small_web)
        second = LDME(k=5, iterations=4, seed=1).summarize(
            small_web, initial_partition=first.partition
        )
        verify_lossless(small_web, second)

    def test_warm_start_does_not_mutate_input(self, small_web):
        first = LDME(k=5, iterations=4, seed=0).summarize(small_web)
        count_before = first.partition.num_supernodes
        LDME(k=5, iterations=4, seed=1).summarize(
            small_web, initial_partition=first.partition
        )
        assert first.partition.num_supernodes == count_before

    def test_warm_start_improves_or_matches(self, small_web):
        first = LDME(k=5, iterations=4, seed=0).summarize(small_web)
        resumed = LDME(k=5, iterations=4, seed=1).summarize(
            small_web, initial_partition=first.partition
        )
        assert resumed.objective <= first.objective

    def test_mismatched_universe_rejected(self, small_web, triangle):
        first = LDME(k=3, iterations=2, seed=0).summarize(triangle)
        with pytest.raises(ValueError, match="universe"):
            LDME(k=3, iterations=2, seed=0).summarize(
                small_web, initial_partition=first.partition
            )
