"""Tests for graph reconstruction from summaries."""

import pytest

from repro.core.partition import SupernodePartition
from repro.core.reconstruct import (
    reconstruct,
    reconstruction_error,
    verify_lossless,
)
from repro.core.summary import CorrectionSet, Summarization
from repro.graph.graph import Graph


def _summary(num_nodes, members, superedges, additions=(), deletions=()):
    return Summarization(
        num_nodes=num_nodes,
        num_edges=0,
        partition=SupernodePartition.from_members(num_nodes, members),
        superedges=list(superedges),
        corrections=CorrectionSet(list(additions), list(deletions)),
    )


class TestExpansion:
    def test_superedge_expands_to_all_pairs(self):
        s = _summary(4, {0: [0, 1], 2: [2, 3]}, [(0, 2)])
        g = reconstruct(s)
        assert g.num_edges == 4
        for u in (0, 1):
            for v in (2, 3):
                assert g.has_edge(u, v)

    def test_superloop_expands_to_internal_pairs(self):
        s = _summary(3, {0: [0, 1, 2]}, [(0, 0)])
        g = reconstruct(s)
        assert g.num_edges == 3  # K3

    def test_additions_added(self):
        s = _summary(3, {0: [0], 1: [1], 2: [2]}, [], additions=[(0, 2)])
        assert reconstruct(s).has_edge(0, 2)

    def test_deletions_remove_expanded_pairs(self):
        s = _summary(4, {0: [0, 1], 2: [2, 3]}, [(0, 2)], deletions=[(1, 3)])
        g = reconstruct(s)
        assert not g.has_edge(1, 3)
        assert g.num_edges == 3

    def test_steps_apply_in_order(self):
        # C- wins over C+ (deletion happens last per the definition).
        s = _summary(2, {0: [0], 1: [1]}, [], additions=[(0, 1)],
                     deletions=[(0, 1)])
        assert reconstruct(s).num_edges == 0

    def test_empty_summary_empty_graph(self):
        s = _summary(3, {0: [0], 1: [1], 2: [2]}, [])
        g = reconstruct(s)
        assert g.num_edges == 0
        assert g.num_nodes == 3


class TestVerification:
    def test_verify_lossless_passes(self, triangle):
        s = _summary(3, {0: [0, 1, 2]}, [(0, 0)])
        verify_lossless(triangle, s)

    def test_verify_lossless_fails_with_message(self, triangle):
        s = _summary(3, {0: [0], 1: [1], 2: [2]}, [])
        with pytest.raises(AssertionError, match="missing"):
            verify_lossless(triangle, s)

    def test_reconstruction_error_reports_both_sides(self):
        original = Graph.from_edges(3, [(0, 1)])
        s = _summary(3, {0: [0], 1: [1], 2: [2]}, [], additions=[(1, 2)])
        missing, spurious = reconstruction_error(original, s)
        assert missing == [(0, 1)]
        assert spurious == [(1, 2)]

    def test_error_empty_for_lossless(self, triangle):
        s = _summary(3, {0: [0, 1, 2]}, [(0, 0)])
        assert reconstruction_error(triangle, s) == ([], [])
