"""Tests for the objective cost models."""

import pytest

from repro.core.cost import (
    get_cost_model,
    loop_cost_exact,
    loop_cost_paper,
    pair_cost_exact,
    pair_cost_paper,
)


class TestExactPairCost:
    def test_sparse_pair_prefers_additions(self):
        # 1 edge between two singletons: C+ (1) beats superedge (1 + 0).
        assert pair_cost_exact(1, 1, 1) == 1

    def test_dense_pair_prefers_superedge(self):
        # Complete 2x3 block: superedge costs 1, C+ would cost 6.
        assert pair_cost_exact(2, 3, 6) == 1

    def test_break_even(self):
        # e = 3 of 4 pairs: C+ costs 3, superedge costs 1 + 1 = 2.
        assert pair_cost_exact(2, 2, 3) == 2

    def test_cost_rises_then_falls_with_edges(self):
        # Cost grows while C+ is cheaper, then shrinks once the superedge
        # takes over (fewer deletions as the block fills up).
        costs = [pair_cost_exact(3, 3, e) for e in range(10)]
        peak = costs.index(max(costs))
        assert all(a <= b for a, b in zip(costs[:peak], costs[1:peak + 1]))
        assert all(a >= b for a, b in zip(costs[peak:], costs[peak + 1:]))
        assert costs[9] == 1  # complete block: just the superedge

    def test_zero_edges_zero_cost(self):
        assert pair_cost_exact(4, 5, 0) == 0


class TestExactLoopCost:
    def test_superloop_is_free(self):
        # K3 inside one supernode: encode superloop, no corrections.
        assert loop_cost_exact(3, 3) == 0

    def test_sparse_interior_prefers_additions(self):
        assert loop_cost_exact(4, 1) == 1

    def test_half_dense_interior(self):
        # 6 pairs, 4 edges: superloop + 2 deletions (2) beats C+ (4).
        assert loop_cost_exact(4, 4) == 2

    def test_singleton_no_cost(self):
        assert loop_cost_exact(1, 0) == 0


class TestPaperModel:
    def test_pair_formula_as_printed(self):
        # min(|A|(|C|-1)/2, e)
        assert pair_cost_paper(4, 3, 10) == 4.0
        assert pair_cost_paper(4, 3, 2) == 2.0

    def test_loop_formula(self):
        assert loop_cost_paper(4, 10) == 6.0
        assert loop_cost_paper(4, 3) == 3.0

    def test_singleton_neighbor_free_under_paper_model(self):
        # |C| = 1 → min(0, e) = 0: the paper's formula zeroes these pairs.
        assert pair_cost_paper(5, 1, 7) == 0.0


class TestRegistry:
    def test_exact_lookup(self):
        pair, loop = get_cost_model("exact")
        assert pair is pair_cost_exact
        assert loop is loop_cost_exact

    def test_paper_lookup(self):
        pair, loop = get_cost_model("paper")
        assert pair is pair_cost_paper
        assert loop is loop_cost_paper

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            get_cost_model("bogus")
