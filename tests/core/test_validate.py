"""Tests for structural summary validation (failure injection)."""

import pytest

from repro.core.ldme import LDME
from repro.core.partition import SupernodePartition
from repro.core.summary import CorrectionSet, Summarization
from repro.core.validate import (
    SummaryValidationError,
    check_summary,
    partition_coverage_problems,
    validate_summary,
)


@pytest.fixture
def clean(small_web):
    return small_web, LDME(k=5, iterations=8, seed=0).summarize(small_web)


def _summary(num_nodes, members, superedges=(), additions=(), deletions=()):
    return Summarization(
        num_nodes=num_nodes,
        num_edges=0,
        partition=SupernodePartition.from_members(num_nodes, members),
        superedges=list(superedges),
        corrections=CorrectionSet(list(additions), list(deletions)),
    )


class TestCleanSummaries:
    def test_algorithm_output_is_clean(self, clean):
        graph, summary = clean
        assert check_summary(summary, graph) == []
        validate_summary(summary, graph)

    def test_all_baselines_clean(self, small_web):
        from repro.baselines.mosso import MoSSo
        from repro.baselines.sweg import SWeG

        for algo in (SWeG(iterations=4, seed=0),
                     MoSSo(seed=0, sample_size=10)):
            summary = algo.summarize(small_web)
            assert check_summary(summary, small_web) == []

    def test_lossy_output_structurally_clean(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0,
                       epsilon=0.3).summarize(small_web)
        # Structure valid (no graph passed: lossy reconstruction differs).
        assert check_summary(summary) == []


class TestInjectedFaults:
    def test_dead_superedge_endpoint(self):
        s = _summary(3, {0: [0, 1], 2: [2]}, superedges=[(0, 1)])
        problems = check_summary(s)
        assert any("dead supernode" in p for p in problems)

    def test_duplicate_superedge(self):
        s = _summary(4, {0: [0, 1], 2: [2, 3]},
                     superedges=[(0, 2), (2, 0)])
        problems = check_summary(s)
        assert any("duplicate superedge" in p for p in problems)

    def test_correction_out_of_range(self):
        s = _summary(3, {0: [0], 1: [1], 2: [2]})
        s.corrections.additions.append((0, 99))
        problems = check_summary(s)
        assert any("out of node range" in p for p in problems)

    def test_duplicate_correction(self):
        s = _summary(3, {0: [0], 1: [1], 2: [2]},
                     additions=[(0, 1), (1, 0)])
        problems = check_summary(s)
        assert any("duplicate C+" in p for p in problems)

    def test_overlapping_corrections(self):
        # Overlap requires the pair to both have a superedge (for C-) and
        # not (for C+), so expect at least the overlap complaint.
        s = _summary(4, {0: [0, 1], 2: [2, 3]}, superedges=[(0, 2)],
                     additions=[(0, 2)], deletions=[(0, 2)])
        problems = check_summary(s)
        assert any("both C+ and C-" in p for p in problems)

    def test_orphan_deletion(self):
        s = _summary(4, {0: [0, 1], 2: [2, 3]}, deletions=[(0, 2)])
        problems = check_summary(s)
        assert any("no superedge" in p for p in problems)

    def test_addition_inside_covered_pair(self):
        s = _summary(4, {0: [0, 1], 2: [2, 3]}, superedges=[(0, 2)],
                     additions=[(1, 3)])
        problems = check_summary(s)
        assert any("duplicates covered pair" in p for p in problems)

    def test_lossy_reconstruction_flagged_with_graph(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0,
                       epsilon=0.5).summarize(small_web)
        problems = check_summary(summary, small_web)
        assert any("reconstruction mismatch" in p for p in problems)

    def test_validate_raises(self):
        s = _summary(3, {0: [0, 1], 2: [2]}, superedges=[(0, 1)])
        with pytest.raises(SummaryValidationError):
            validate_summary(s)

    def test_node_count_mismatch(self, clean):
        _, summary = clean
        broken = Summarization(
            num_nodes=summary.num_nodes + 5,
            num_edges=summary.num_edges,
            partition=summary.partition,
            superedges=summary.superedges,
            corrections=summary.corrections,
        )
        problems = check_summary(broken)
        assert any("declares" in p for p in problems)


class TestPartitionCoverageHelper:
    """Direct tests of the helper shared by the validator and the shard
    stitcher (extracted from ``check_summary``, same behavior)."""

    def test_clean_partition_has_no_problems(self):
        partition = SupernodePartition.from_members(
            4, {0: [0, 1], 2: [2, 3]}
        )
        assert partition_coverage_problems(partition, 4) == []

    def test_universe_mismatch_reported(self):
        partition = SupernodePartition.from_members(
            4, {0: [0, 1], 2: [2, 3]}
        )
        problems = partition_coverage_problems(partition, 9)
        assert len(problems) == 1
        assert "declares 9" in problems[0]

    def test_invalid_partition_reported(self):
        partition = SupernodePartition.from_members(
            3, {0: [0, 1], 2: [2]}
        )
        # Corrupt the inverse map behind the partition's back.
        partition._node2super[1] = 2
        problems = partition_coverage_problems(partition, 3)
        assert any("partition invalid" in p for p in problems)

    def test_check_summary_uses_the_helper(self):
        s = _summary(4, {0: [0, 1], 2: [2, 3]})
        broken = Summarization(
            num_nodes=6,
            num_edges=0,
            partition=s.partition,
            superedges=[],
            corrections=CorrectionSet([], []),
        )
        helper = partition_coverage_problems(broken.partition, 6)
        assert helper  # non-empty
        assert set(helper) <= set(check_summary(broken))
