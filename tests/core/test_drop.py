"""Tests for the lossy dropping step."""

import pytest

from repro.core.drop import drop_edges, verify_error_bound
from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruction_error
from repro.graph.generators import web_host_graph


@pytest.fixture
def lossless_summary(small_web):
    return LDME(k=5, iterations=8, seed=0).summarize(small_web)


class TestEpsilonZero:
    def test_identity(self, small_web, lossless_summary):
        dropped = drop_edges(small_web, lossless_summary, 0.0)
        assert dropped.objective == lossless_summary.objective
        assert reconstruction_error(small_web, dropped) == ([], [])

    def test_negative_epsilon_rejected(self, small_web, lossless_summary):
        with pytest.raises(ValueError):
            drop_edges(small_web, lossless_summary, -0.1)


class TestErrorBound:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.6, 1.0])
    def test_bound_holds(self, small_web, lossless_summary, epsilon):
        dropped = drop_edges(small_web, lossless_summary, epsilon)
        verify_error_bound(small_web, dropped, epsilon)

    def test_verify_error_bound_detects_violation(self, small_web,
                                                  lossless_summary):
        # A heavily dropped summary must violate a tiny epsilon.
        dropped = drop_edges(small_web, lossless_summary, 1.0)
        missing, spurious = reconstruction_error(small_web, dropped)
        assert missing or spurious
        with pytest.raises(AssertionError):
            verify_error_bound(small_web, dropped, 0.0)


class TestCompactnessGain:
    def test_objective_never_grows(self, small_web, lossless_summary):
        previous = lossless_summary.objective
        for epsilon in (0.1, 0.3, 0.6):
            dropped = drop_edges(small_web, lossless_summary, epsilon)
            assert dropped.objective <= previous

    def test_larger_epsilon_no_worse(self, small_web, lossless_summary):
        small = drop_edges(small_web, lossless_summary, 0.1).objective
        large = drop_edges(small_web, lossless_summary, 0.8).objective
        assert large <= small

    def test_input_not_mutated(self, small_web, lossless_summary):
        before = lossless_summary.objective
        drop_edges(small_web, lossless_summary, 0.5)
        assert lossless_summary.objective == before


class TestSuperedgeDropping:
    def test_superedge_deletions_dropped_together(self):
        # With a generous budget, dropped superedges must take their C-
        # edges along (no orphan deletions pointing at missing blocks).
        graph = web_host_graph(num_hosts=4, host_size=10, seed=1)
        summary = LDME(k=5, iterations=10, seed=0).summarize(graph)
        dropped = drop_edges(graph, summary, 1.0)
        kept_pairs = set(dropped.superedges)
        node2super = dropped.partition.node2super
        for u, v in dropped.corrections.deletions:
            a, b = int(node2super[u]), int(node2super[v])
            pair = (a, b) if a < b else (b, a)
            assert pair in kept_pairs


class TestEndToEndLossyAlgorithms:
    def test_ldme_epsilon_pipeline(self, small_web):
        result = LDME(k=5, iterations=8, epsilon=0.25, seed=0).summarize(small_web)
        verify_error_bound(small_web, result, 0.25)
        lossless = LDME(k=5, iterations=8, epsilon=0.0, seed=0).summarize(small_web)
        assert result.objective <= lossless.objective


class TestDropEdgeCases:
    def test_zero_degree_nodes_untouched(self):
        # Isolated nodes have |N_v| = 0: their budget is 0 and nothing
        # incident can be dropped (there is nothing incident).
        from repro.graph.graph import Graph

        g = Graph.from_edges(6, [(0, 1), (2, 3)])
        summary = LDME(k=3, iterations=3, seed=0).summarize(g)
        dropped = drop_edges(g, summary, 1.0)
        verify_error_bound(g, dropped, 1.0)

    def test_full_epsilon_can_empty_the_summary(self):
        # ε = 1 allows every node to lose its whole neighbourhood: a
        # 1-regular graph can drop to an empty summary.
        from repro.graph.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        summary = LDME(k=3, iterations=3, seed=0).summarize(g)
        dropped = drop_edges(g, summary, 1.0)
        assert dropped.objective == 0 or dropped.objective <= summary.objective

    def test_superloop_only_summary(self, triangle):
        # Whole triangle inside one supernode: only a superloop, nothing
        # in the objective to drop; epsilon must not corrupt it.
        from repro.core.partition import SupernodePartition
        from repro.core.encode import encode_sorted
        from repro.core.summary import Summarization

        part = SupernodePartition.from_members(3, {0: [0, 1, 2]})
        encoded = encode_sorted(triangle, part)
        summary = Summarization(
            num_nodes=3, num_edges=3, partition=part,
            superedges=encoded.superedges, corrections=encoded.corrections,
        )
        assert summary.objective == 0
        dropped = drop_edges(triangle, summary, 0.5)
        verify_error_bound(triangle, dropped, 0.5)

    def test_fractional_budget_rounds_down(self):
        # deg 3 with ε=0.3 → budget floor(0.9) = 0: nothing droppable
        # around that node.
        from repro.graph.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        summary = LDME(k=3, iterations=3, seed=0).summarize(g)
        dropped = drop_edges(g, summary, 0.3)
        # Leaves have degree 1 (budget 0) so nothing can be dropped at all.
        assert dropped.objective == summary.objective
