"""Tests for incremental re-summarization."""

import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.core.resummarize import affected_nodes, resummarize
from repro.graph.generators import web_host_graph
from repro.graph.transform import add_edges, remove_edges


@pytest.fixture
def warm_setup():
    graph = web_host_graph(num_hosts=8, host_size=12, seed=6)
    summary = LDME(k=5, iterations=10, seed=0).summarize(graph)
    return graph, summary


class TestAffectedNodes:
    def test_collects_endpoints(self):
        assert affected_nodes([(0, 1), (1, 5)]) == {0, 1, 5}

    def test_empty(self):
        assert affected_nodes([]) == set()


class TestResummarize:
    def test_lossless_after_insertions(self, warm_setup):
        graph, summary = warm_setup
        updates = [(0, 50), (3, 60)]
        new_graph = add_edges(graph, updates)
        result = resummarize(new_graph, summary.partition, updates,
                             iterations=3, seed=1)
        verify_lossless(new_graph, result)

    def test_lossless_after_deletions(self, warm_setup):
        graph, summary = warm_setup
        updates = list(graph.edges())[:5]
        new_graph = remove_edges(graph, updates)
        result = resummarize(new_graph, summary.partition, updates,
                             iterations=3, seed=1)
        verify_lossless(new_graph, result)

    def test_beats_cold_run_at_equal_budget(self, warm_setup):
        graph, summary = warm_setup
        updates = [(0, 50)]
        new_graph = add_edges(graph, updates)
        incremental = resummarize(new_graph, summary.partition, updates,
                                  iterations=2, seed=1)
        cold = LDME(k=5, iterations=2, seed=1).summarize(new_graph)
        assert incremental.objective <= cold.objective

    def test_algorithm_name_tagged(self, warm_setup):
        graph, summary = warm_setup
        result = resummarize(graph, summary.partition, [],
                             iterations=1, seed=0)
        assert result.algorithm.endswith("-incremental")

    def test_previous_partition_not_mutated(self, warm_setup):
        graph, summary = warm_setup
        before = summary.partition.num_supernodes
        resummarize(graph, summary.partition, [(0, 1)], iterations=2, seed=0)
        assert summary.partition.num_supernodes == before

    def test_universe_mismatch_rejected(self, warm_setup):
        graph, summary = warm_setup
        bigger = add_edges(graph, [(0, graph.num_nodes + 5)])
        with pytest.raises(ValueError, match="universe"):
            resummarize(bigger, summary.partition, [], iterations=1)

    def test_out_of_range_update_rejected(self, warm_setup):
        graph, summary = warm_setup
        with pytest.raises(ValueError, match="out of range"):
            resummarize(graph, summary.partition, [(0, 10**6)], iterations=1)
