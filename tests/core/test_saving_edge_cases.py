"""Edge-case tests for the W structure, cost cache and merge updates."""

import numpy as np
import pytest

from repro.core.partition import SupernodePartition
from repro.core.saving import GroupAdjacency
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph


class TestCostCache:
    def test_cache_invalidated_after_merge(self, two_cliques):
        part = SupernodePartition(8)
        adjacency = GroupAdjacency(two_cliques, part, list(range(8)))
        before = adjacency.cost(2)  # prime the cache
        survivor, absorbed = part.merge(0, 1)
        adjacency.apply_merge(survivor, absorbed)
        # Node 2 is adjacent to the merged supernode: its cost must be
        # recomputed against the new size, not served stale.
        fresh = GroupAdjacency(two_cliques, part,
                               list(part.supernode_ids()))
        assert adjacency.cost(2) == fresh.cost(2)
        assert adjacency.cost(2) != before or before == fresh.cost(2)

    def test_cache_consistency_under_merge_storm(self, rng):
        graph = erdos_renyi(24, 0.3, seed=9)
        part = SupernodePartition(24)
        ids = list(range(24))
        adjacency = GroupAdjacency(graph, part, ids)
        # Interleave cached reads with merges; cached costs must always
        # equal fresh recomputation.
        alive = list(ids)
        for _ in range(10):
            probe = alive[int(rng.integers(len(alive)))]
            cached = adjacency.cost(probe)
            fresh = GroupAdjacency(graph, part, alive).cost(probe)
            assert cached == fresh, probe
            if len(alive) < 2:
                break
            a, b = rng.choice(len(alive), size=2, replace=False)
            if a == b:
                continue
            survivor, absorbed = part.merge(alive[int(a)], alive[int(b)])
            adjacency.apply_merge(survivor, absorbed)
            alive = [s for s in alive if s != absorbed]


class TestMergedCostEdgeCases:
    def test_merge_of_disconnected_supernodes(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        adjacency = GroupAdjacency(g, SupernodePartition(4), [0, 2])
        # No edges between them: merged cost = sum of individual pair costs.
        assert adjacency.merged_cost(0, 2) == adjacency.cost(0) + adjacency.cost(2)
        assert adjacency.saving(0, 2) < 0.5

    def test_saving_with_superloop_rich_supernodes(self):
        # Two K3s connected by all 9 cross edges: merging produces a K6.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        edges += [(u, v) for u in range(3) for v in range(3, 6)]
        g = Graph.from_edges(6, edges)
        part = SupernodePartition.from_members(6, {0: [0, 1, 2], 3: [3, 4, 5]})
        adjacency = GroupAdjacency(g, part, [0, 3])
        # Each K3: superloop free → cost 0. Cross block: complete → one
        # superedge each side view... cost(A) = paircost(3,3,9) = 1.
        assert adjacency.cost(0) == 1
        assert adjacency.cost(3) == 1
        # Merged: K6 internal 15 edges of 15 pairs → superloop free.
        assert adjacency.merged_cost(0, 3) == 0
        assert adjacency.saving(0, 3) == pytest.approx(1.0)

    def test_two_member_supernode_loop_boundary(self):
        # |A| = 2 with its single internal pair present: superloop free.
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        part = SupernodePartition.from_members(3, {0: [0, 1], 2: [2]})
        adjacency = GroupAdjacency(g, part, [0, 2])
        # cost(A): internal loopcost(2,1)=0 + pair(A,{2}) e=1 → min(1, 1+2-1)=1
        assert adjacency.cost(0) == 1


class TestApplyMergeReverseEntries:
    def test_neighbor_outside_group_no_crash(self, two_cliques):
        # Group = {0, 1}; neighbour 2 is outside: apply_merge must not try
        # to fix a first-level row that does not exist.
        part = SupernodePartition(8)
        adjacency = GroupAdjacency(two_cliques, part, [0, 1])
        survivor, absorbed = part.merge(0, 1)
        adjacency.apply_merge(survivor, absorbed)
        assert absorbed not in adjacency.w
        adjacency.validate_symmetry()

    def test_triangle_of_merges(self, triangle):
        part = SupernodePartition(3)
        adjacency = GroupAdjacency(triangle, part, [0, 1, 2])
        s1, a1 = part.merge(0, 1)
        adjacency.apply_merge(s1, a1)
        assert adjacency.edge_count(s1, s1) == 1   # edge (0,1) internal
        assert adjacency.edge_count(s1, 2) == 2    # edges (0,2), (1,2)
        s2, a2 = part.merge(s1, 2)
        adjacency.apply_merge(s2, a2)
        assert adjacency.edge_count(s2, s2) == 3   # the whole K3
        assert list(adjacency.w) == [s2]
