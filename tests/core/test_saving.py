"""Tests for the W structure and exact Saving (Algorithm 4).

The load-bearing oracle: under the exact cost model, ``Saving(A, B)``
computed from the W structure must equal the relative objective drop
measured by *actually encoding* the graph before and after the merge.
"""

import numpy as np
import pytest

from repro.core.encode import encode_sorted
from repro.core.partition import SupernodePartition
from repro.core.saving import GroupAdjacency, saving_of_pair, supernode_cost
from repro.graph.generators import erdos_renyi, web_host_graph
from repro.graph.graph import Graph


def _pair_objective_contribution(graph, partition, ids):
    """Per-supernode objective contribution measured by real encoding.

    Each item is counted once per incident supernode in ``ids`` — the same
    double counting ``Cost(A) + Cost(B)`` performs for the shared (A, B)
    pair — while superloop-internal items (pair (X, X)) count once.
    """
    result = encode_sorted(graph, partition)
    ids = set(ids)
    node2super = partition.node2super
    total = 0
    for a, b in result.superedges:
        if a != b:
            total += (a in ids) + (b in ids)
    for u, v in result.corrections.additions + result.corrections.deletions:
        sa, sb = int(node2super[u]), int(node2super[v])
        if sa == sb:
            total += sa in ids
        else:
            total += (sa in ids) + (sb in ids)
    return total


class TestWConstruction:
    def test_counts_match_graph(self, two_cliques):
        part = SupernodePartition(8)
        part.merge(0, 1)   # supernode 0 = {0, 1}
        part.merge(4, 5)   # supernode 4 = {4, 5}
        adjacency = GroupAdjacency(two_cliques, part, [0, 4])
        # {0,1} internal edge count: edge (0,1).
        assert adjacency.edge_count(0, 0) == 1
        # Edges {0,1}x{2}: (0,2), (1,2).
        assert adjacency.edge_count(0, 2) == 2
        # Bridge 0-4 connects the two supernodes.
        assert adjacency.edge_count(0, 4) == 1

    def test_symmetry_validated(self, small_web):
        part = SupernodePartition(small_web.num_nodes)
        group = list(range(10))
        adjacency = GroupAdjacency(small_web, part, group)
        adjacency.validate_symmetry()

    def test_isolated_supernode_has_empty_row(self):
        g = Graph.from_edges(3, [(0, 1)])
        adjacency = GroupAdjacency(g, SupernodePartition(3), [2])
        assert adjacency.w[2] == {}
        assert adjacency.cost(2) == 0


class TestSavingValues:
    def test_identical_twins_high_saving(self, star):
        # Two leaves of a star have identical neighbourhoods {hub}.
        part = SupernodePartition(6)
        adjacency = GroupAdjacency(star, part, [1, 2])
        saving = adjacency.saving(1, 2)
        # Merging: cost 2 → 1 (one C+ edge... actually pair ({1,2},{0}):
        # 2 edges of 2 possible → superedge, cost 1). Saving = 0.5.
        assert saving == pytest.approx(0.5)

    def test_edge_endpoints_full_saving(self):
        # A single isolated edge: merging its endpoints gives a free
        # superloop — objective 1 → 0, Saving = 1.
        g = Graph.from_edges(2, [(0, 1)])
        adjacency = GroupAdjacency(g, SupernodePartition(2), [0, 1])
        assert adjacency.saving(0, 1) == pytest.approx(1.0)

    def test_isolated_pair_zero_saving(self):
        g = Graph.from_edges(4, [(0, 1)])
        adjacency = GroupAdjacency(g, SupernodePartition(4), [2, 3])
        assert adjacency.saving(2, 3) == 0.0

    def test_bad_merge_negative_saving(self):
        # Endpoints of a long path with disjoint neighbourhoods: merging
        # nodes 0 and 3 of P4 cannot help.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        adjacency = GroupAdjacency(g, SupernodePartition(4), [0, 3])
        assert adjacency.saving(0, 3) <= 0.0

    def test_best_candidate_picks_max(self, star):
        part = SupernodePartition(6)
        adjacency = GroupAdjacency(star, part, [0, 1, 2, 3])
        best, saving = adjacency.best_candidate(1, [0, 2, 3])
        assert best in (2, 3)  # identical twin beats the hub
        assert saving == pytest.approx(0.5)

    def test_best_candidate_empty(self, star):
        adjacency = GroupAdjacency(star, SupernodePartition(6), [1])
        best, saving = adjacency.best_candidate(1, [])
        assert best is None
        assert saving == 0.0


class TestSavingMatchesObjectiveDelta:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_saving_equals_measured_delta(self, seed):
        graph = erdos_renyi(18, 0.3, seed=seed)
        rng = np.random.default_rng(seed)
        part = SupernodePartition(graph.num_nodes)
        # Random warm-up merges so supernodes have structure.
        for _ in range(5):
            ids = list(part.supernode_ids())
            a, b = rng.choice(len(ids), size=2, replace=False)
            part.merge(ids[int(a)], ids[int(b)])
        ids = list(part.supernode_ids())
        a, b = ids[0], ids[1]
        adjacency = GroupAdjacency(graph, part, [a, b])
        before_cost = adjacency.cost(a) + adjacency.cost(b)
        claimed = adjacency.saving(a, b)
        merged_claimed = adjacency.merged_cost(a, b)

        # Measure by really encoding around the pair, before and after.
        trial = part.copy()
        survivor, _ = trial.merge(a, b)
        measured_before = _pair_objective_contribution(graph, part, [a, b])
        measured_after = _pair_objective_contribution(graph, trial, [survivor])
        assert before_cost == measured_before
        assert merged_claimed == measured_after
        if before_cost > 0:
            assert claimed == pytest.approx(1 - measured_after / measured_before)


class TestApplyMerge:
    def test_w_matches_rebuild_after_merges(self, small_web, rng):
        part = SupernodePartition(small_web.num_nodes)
        group = list(range(12))
        adjacency = GroupAdjacency(small_web, part, group)
        alive = list(group)
        for _ in range(6):
            a, b = rng.choice(len(alive), size=2, replace=False)
            if a == b:
                continue
            survivor, absorbed = part.merge(alive[int(a)], alive[int(b)])
            adjacency.apply_merge(survivor, absorbed)
            alive = [s for s in alive if s != absorbed]
            # Rebuild from scratch and compare every surviving row.
            fresh = GroupAdjacency(small_web, part, alive)
            for sid in alive:
                assert adjacency.w[sid] == fresh.w[sid], sid

    def test_internal_edge_accumulates(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])  # C4
        part = SupernodePartition(4)
        adjacency = GroupAdjacency(g, part, [0, 1, 2, 3])
        survivor, absorbed = part.merge(0, 1)
        adjacency.apply_merge(survivor, absorbed)
        assert adjacency.edge_count(survivor, survivor) == 1
        survivor2, absorbed2 = part.merge(2, 3)
        adjacency.apply_merge(survivor2, absorbed2)
        assert adjacency.edge_count(survivor2, survivor2) == 1
        assert adjacency.edge_count(survivor, survivor2) == 2


class TestStandaloneHelpers:
    def test_supernode_cost_oracle(self, two_cliques):
        part = SupernodePartition(8)
        # Singleton 0 in a K4 + bridge: 4 incident edges, each its own pair.
        assert supernode_cost(two_cliques, part, 0) == 4

    def test_saving_of_pair_matches_group(self, star):
        part = SupernodePartition(6)
        direct = saving_of_pair(star, part, 1, 2)
        adjacency = GroupAdjacency(star, part, [1, 2])
        assert direct == adjacency.saving(1, 2)

    def test_paper_cost_model_supported(self, star):
        part = SupernodePartition(6)
        value = saving_of_pair(star, part, 1, 2, cost_model="paper")
        assert isinstance(value, float)
