"""Tests for the Summarization result types and metrics."""

import pytest

from repro.core.partition import SupernodePartition
from repro.core.summary import (
    CorrectionSet,
    IterationStats,
    RunStats,
    Summarization,
)


def _make(num_edges=10, superedges=(), additions=(), deletions=()):
    n = 6
    return Summarization(
        num_nodes=n,
        num_edges=num_edges,
        partition=SupernodePartition(n),
        superedges=list(superedges),
        corrections=CorrectionSet(list(additions), list(deletions)),
        algorithm="test",
    )


class TestCorrectionSet:
    def test_canonicalizes_order(self):
        cs = CorrectionSet(additions=[(3, 1)], deletions=[(5, 2)])
        assert cs.additions == [(1, 3)]
        assert cs.deletions == [(2, 5)]

    def test_size(self):
        cs = CorrectionSet(additions=[(0, 1)], deletions=[(1, 2), (2, 3)])
        assert cs.size == 3

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CorrectionSet(additions=[(2, 2)])


class TestObjective:
    def test_counts_non_loop_superedges_only(self):
        s = _make(superedges=[(0, 1), (2, 2), (3, 4)])
        assert s.num_superedges == 2
        assert s.num_superloops == 1
        assert s.objective == 2

    def test_objective_includes_corrections(self):
        s = _make(superedges=[(0, 1)], additions=[(0, 2)], deletions=[(3, 4)])
        assert s.objective == 3

    def test_compression_formula(self):
        s = _make(num_edges=10, additions=[(0, 1), (0, 2)])
        assert s.compression == pytest.approx(1 - 2 / 10)

    def test_compression_empty_graph(self):
        s = _make(num_edges=0)
        assert s.compression == 0.0

    def test_describe_keys(self):
        d = _make().describe()
        assert {"algorithm", "objective", "compression", "supernodes"} <= set(d)

    def test_repr_contains_metrics(self):
        assert "compression" in repr(_make())


class TestRunStats:
    def test_total_sums_phases(self):
        stats = RunStats(divide_seconds=1.0, merge_seconds=2.0,
                         encode_seconds=0.5, drop_seconds=0.25)
        assert stats.total_seconds == pytest.approx(3.75)
        assert stats.divide_merge_seconds == pytest.approx(3.0)

    def test_iteration_records(self):
        stats = RunStats()
        stats.iterations.append(
            IterationStats(
                iteration=1, divide_seconds=0.1, merge_seconds=0.2,
                num_groups=5, max_group_size=3, num_supernodes=10, merges=2,
            )
        )
        assert stats.iterations[0].num_groups == 5


class TestFromMembers:
    def test_roundtrip_structure(self):
        s = Summarization.from_members(
            num_nodes=4,
            members={0: [0, 1], 2: [2], 3: [3]},
            superedges=[(0, 2)],
            corrections=CorrectionSet(additions=[(2, 3)]),
            num_edges=5,
            algorithm="loaded",
        )
        assert s.num_supernodes == 3
        assert s.members(0) == [0, 1]
        assert s.objective == 2
        assert s.algorithm == "loaded"

    def test_supernode_ids_sorted(self):
        s = Summarization.from_members(
            num_nodes=3,
            members={2: [2], 0: [0], 1: [1]},
            superedges=[],
            corrections=CorrectionSet(),
        )
        assert s.supernode_ids() == [0, 1, 2]
