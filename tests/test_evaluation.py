"""Tests for partition-quality evaluation metrics."""

import numpy as np
import pytest

from repro.core.partition import SupernodePartition
from repro.evaluation import (
    adjusted_rand_index,
    compare_partitions,
    normalized_mutual_information,
    partition_labels,
    purity,
)


IDENTICAL = ([0, 0, 1, 1, 2, 2], [5, 5, 7, 7, 9, 9])  # same up to renaming
HALVED = ([0, 0, 0, 0], [0, 0, 1, 1])


class TestPartitionLabels:
    def test_from_partition(self):
        part = SupernodePartition(4)
        part.merge(0, 1)
        labels = partition_labels(part)
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_from_list(self):
        assert partition_labels([1, 2, 1]).tolist() == [1, 2, 1]

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            partition_labels(np.zeros((2, 2)))


class TestPurity:
    def test_identical_up_to_renaming(self):
        assert purity(*IDENTICAL) == 1.0

    def test_refinement_is_pure(self):
        # Every predicted cluster inside one true community → purity 1.
        assert purity([0, 1, 2, 3], [0, 0, 1, 1]) == 1.0

    def test_coarsening_loses_purity(self):
        assert purity(*HALVED) == pytest.approx(0.5)

    def test_empty(self):
        assert purity([], []) == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            purity([0, 1], [0])


class TestARI:
    def test_identical(self):
        assert adjusted_rand_index(*IDENTICAL) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=2000)
        b = rng.integers(0, 5, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        value = adjusted_rand_index([0, 0, 1, 1, 1], [0, 0, 0, 1, 1])
        assert 0.0 < value < 1.0

    def test_single_node(self):
        assert adjusted_rand_index([0], [0]) == 1.0

    def test_symmetric(self):
        a = [0, 0, 1, 2, 2, 1]
        b = [1, 1, 1, 0, 0, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )


class TestNMI:
    def test_identical(self):
        assert normalized_mutual_information(*IDENTICAL) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, size=3000)
        b = rng.integers(0, 4, size=3000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_bounded(self):
        a = [0, 1, 2, 0, 1, 2]
        b = [0, 0, 1, 1, 2, 2]
        value = normalized_mutual_information(a, b)
        assert 0.0 <= value <= 1.0

    def test_single_cluster_both(self):
        assert normalized_mutual_information([0, 0], [3, 3]) == 1.0


class TestOnSummarizers:
    def test_ldme_partition_aligns_with_sbm_communities(self):
        from repro.core.ldme import LDME
        from repro.graph.generators import stochastic_block_model

        sizes = [40, 40, 40]
        probs = [[0.5, 0.01, 0.01], [0.01, 0.5, 0.01], [0.01, 0.01, 0.5]]
        graph = stochastic_block_model(sizes, probs, seed=3)
        truth = np.repeat(np.arange(3), 40)
        summary = LDME(k=2, iterations=15, seed=0).summarize(graph)
        agreement = compare_partitions(summary.partition, truth)
        # Merged supernodes should rarely straddle communities.
        assert agreement.purity > 0.9
        assert agreement.as_dict()["purity"] == agreement.purity

    def test_compare_partitions_fields(self):
        result = compare_partitions([0, 0, 1], [0, 0, 1])
        assert result.purity == 1.0
        assert result.adjusted_rand_index == pytest.approx(1.0)
        assert result.normalized_mutual_information == pytest.approx(1.0)


class TestReadLabels:
    def test_reads_unordered(self, tmp_path):
        from repro.evaluation import read_labels

        path = tmp_path / "labels.txt"
        path.write_text("# truth\n2 9\n0 7\n1 7\n")
        assert read_labels(path).tolist() == [7, 7, 9]

    def test_duplicate_node_rejected(self, tmp_path):
        from repro.evaluation import read_labels

        path = tmp_path / "labels.txt"
        path.write_text("0 1\n0 2\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_labels(path)

    def test_gap_rejected(self, tmp_path):
        from repro.evaluation import read_labels

        path = tmp_path / "labels.txt"
        path.write_text("0 1\n2 1\n")
        with pytest.raises(ValueError, match="cover"):
            read_labels(path)

    def test_malformed_rejected(self, tmp_path):
        from repro.evaluation import read_labels

        path = tmp_path / "labels.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_labels(path)
