"""Tests for the LRU result cache."""

import threading

import pytest

from repro.serve.cache import LRUCache


class TestLRU:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        hit, _ = cache.get("a")
        assert not hit
        cache.put("a", 1)
        hit, value = cache.get("a")
        assert hit and value == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh 'a'; 'b' is now oldest
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_size_bound_holds(self):
        cache = LRUCache(8)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 8
        assert cache.stats()["evictions"] == 92

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") == (False, None)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestAccounting:
    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.hit_rate is None
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(2 / 3)
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_clear_bumps_generation_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["generation"] == 1
        assert stats["hits"] == 1       # accounting survives invalidation

    def test_thread_safety_smoke(self):
        cache = LRUCache(64)
        errors = []

        def pound(worker):
            try:
                for i in range(500):
                    cache.put((worker, i % 80), i)
                    cache.get((worker, (i * 7) % 80))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=pound, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
