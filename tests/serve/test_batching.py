"""Tests for the coalesced batch executor."""

import pytest

from repro.core.ldme import LDME
from repro.queries import CompiledSummaryIndex, SummaryIndex
from repro.serve.batching import execute_batch
from repro.serve.cache import LRUCache
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import ErrorCode


@pytest.fixture
def setup(small_web):
    summary = LDME(k=5, iterations=8, seed=0).summarize(small_web)
    index = CompiledSummaryIndex(summary)
    truth = SummaryIndex(summary)
    return index, truth


def run(index, queries, cache=None, metrics=None):
    # NB: `cache or ...` would discard an *empty* LRUCache (len 0 is falsy).
    if cache is None:
        cache = LRUCache(128)
    if metrics is None:
        metrics = MetricsRegistry()
    return execute_batch(index, cache, metrics, queries)


class TestCorrectness:
    def test_mixed_batch_matches_ground_truth(self, setup):
        index, truth = setup
        queries = []
        expected = []
        for v in range(0, index.num_nodes, 3):
            queries.append(("neighbors", {"v": v}))
            expected.append(truth.neighbors(v))
            queries.append(("degree", {"v": v}))
            expected.append(truth.degree(v))
            queries.append(("has_edge", {"u": v, "v": (v + 5) %
                                         index.num_nodes}))
            expected.append(truth.has_edge(v, (v + 5) % index.num_nodes))
        queries.append(("bfs", {"source": 0}))
        expected.append(sorted(truth.bfs_distances(0).items()))
        outcomes = run(index, queries)
        for outcome, want in zip(outcomes, expected):
            assert outcome[0] == "ok"
            got = outcome[1]
            if isinstance(want, list) and want and isinstance(want[0], tuple):
                got = [tuple(pair) for pair in got]
            assert got == want

    def test_duplicate_nodes_share_one_expansion(self, setup):
        index, truth = setup
        metrics = MetricsRegistry()
        outcomes = run(
            index,
            [("neighbors", {"v": 4})] * 5 + [("degree", {"v": 4})],
            metrics=metrics,
        )
        assert all(o[0] == "ok" for o in outcomes)
        assert outcomes[0][1] == truth.neighbors(4)
        assert outcomes[-1][1] == truth.degree(4)
        assert metrics.counter("neighbor_expansions_total") == 1

    def test_per_item_errors_do_not_poison_batch(self, setup):
        index, truth = setup
        outcomes = run(index, [
            ("neighbors", {"v": -1}),
            ("neighbors", {"v": 2}),
            ("has_edge", {"u": 0, "v": 10 ** 9}),
            ("bfs", {"source": index.num_nodes}),
        ])
        assert outcomes[0][:2] == ("error", ErrorCode.OUT_OF_RANGE)
        assert outcomes[1] == ("ok", truth.neighbors(2))
        assert outcomes[2][:2] == ("error", ErrorCode.OUT_OF_RANGE)
        assert outcomes[3][:2] == ("error", ErrorCode.OUT_OF_RANGE)


class TestCacheIntegration:
    def test_second_batch_hits_cache(self, setup):
        index, _ = setup
        cache = LRUCache(128)
        queries = [("neighbors", {"v": 1}), ("has_edge", {"u": 0, "v": 1}),
                   ("bfs", {"source": 0})]
        run(index, queries, cache=cache)
        before = cache.stats()["hits"]
        run(index, queries, cache=cache)
        assert cache.stats()["hits"] == before + 3

    def test_degree_and_neighbors_share_entries(self, setup):
        index, truth = setup
        cache = LRUCache(128)
        run(index, [("degree", {"v": 3})], cache=cache)
        outcomes = run(index, [("neighbors", {"v": 3})], cache=cache)
        assert outcomes[0] == ("ok", truth.neighbors(3))
        assert cache.stats()["hits"] == 1

    def test_edge_key_is_canonical(self, setup):
        index, _ = setup
        cache = LRUCache(128)
        run(index, [("has_edge", {"u": 0, "v": 1})], cache=cache)
        run(index, [("has_edge", {"u": 1, "v": 0})], cache=cache)
        assert cache.stats()["hits"] == 1


class TestMetricsIntegration:
    def test_batch_counters(self, setup):
        index, _ = setup
        metrics = MetricsRegistry()
        run(index, [("neighbors", {"v": v}) for v in range(7)],
            metrics=metrics)
        assert metrics.counter("batches_total") == 1
        assert metrics.counter("batched_queries_total") == 7
        assert metrics.counter("queries_neighbors_total") == 7
        snap = metrics.snapshot()
        assert snap["histograms"]["batch_size"]["mean"] == 7
