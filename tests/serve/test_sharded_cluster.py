"""Shard-aware serving: routing, scatter-gather, shard-at-a-time swap.

A real 2-shards x 2-replicas cluster is built from a manifest produced
by the sharded summarization driver; every answer is checked against
the stitched global index. The partial-result contract is pinned here:
losing a shard turns multi-shard ops into typed errors (or explicit
:class:`PartialResult` envelopes), never silently short answers.
"""

import pytest

from repro.core.ldme import LDME
from repro.graph.generators import web_host_graph
from repro.queries.compiled import CompiledSummaryIndex
from repro.serve import (
    ClusterClient,
    PartialResult,
    PartialResultError,
    ServerConfig,
    SummaryCluster,
)
from repro.shard import HashRing, save_sharded, summarize_sharded


@pytest.fixture(scope="module")
def graph():
    return web_host_graph(num_hosts=6, host_size=12, seed=42)


@pytest.fixture(scope="module")
def run(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("manifest") / "current"
    result = summarize_sharded(
        graph, shards=2, k=5, iterations=6, seed=0, out_dir=str(out)
    )
    assert result.report.ok
    return result


@pytest.fixture(scope="module")
def truth(run):
    return CompiledSummaryIndex(run.summary)


@pytest.fixture
def cluster(run):
    with SummaryCluster.from_manifest(
        run.manifest, replicas=2,
        config=ServerConfig(batch_window=0.001, degraded_enabled=True),
    ) as cluster:
        yield cluster


def shard_replica_indices(cluster, sid):
    """Flat replica indices serving one shard (shard-major layout)."""
    pos = cluster.shard_ids.index(sid)
    k = cluster.replicas_per_shard
    return list(range(pos * k, pos * k + k))


class TestTopology:
    def test_shards_times_replicas(self, cluster):
        assert cluster.num_shards == 2
        assert cluster.replicas_per_shard == 2
        assert cluster.num_replicas == 4
        assert sorted(cluster.shard_addresses) == cluster.shard_ids
        for addrs in cluster.shard_addresses.values():
            assert len(addrs) == 2

    def test_client_inherits_ring_and_topology(self, cluster):
        client = cluster.client()
        try:
            assert client.shard_ids == cluster.shard_ids
            assert len(client.replicas) == 4
            status = client.status()
            assert sorted(status["shards"]) == cluster.shard_ids
            for i in shard_replica_indices(cluster, cluster.shard_ids[0]):
                assert client.shard_of_replica(i) == cluster.shard_ids[0]
        finally:
            client.shutdown()

    def test_constructor_validation(self, run):
        summaries = {0: run.summaries[0]}
        with pytest.raises(ValueError, match="exactly one"):
            SummaryCluster()
        with pytest.raises(ValueError, match="needs its HashRing"):
            SummaryCluster(shards=summaries)
        with pytest.raises(ValueError, match="ring shards"):
            SummaryCluster(shards=summaries, ring=HashRing(3))

    def test_client_constructor_validation(self, cluster):
        addrs = cluster.shard_addresses
        with pytest.raises(ValueError, match="not both"):
            ClusterClient(cluster.addresses, shards=addrs,
                          ring=cluster.ring)
        with pytest.raises(ValueError, match="needs a HashRing"):
            ClusterClient(shards=addrs)
        with pytest.raises(ValueError, match="per-shard addresses"):
            ClusterClient(cluster.addresses, ring=cluster.ring)
        with pytest.raises(ValueError, match="ring shards"):
            ClusterClient(shards={9: addrs[0]}, ring=cluster.ring)


class TestRouting:
    def test_single_node_ops_match_truth_everywhere(self, cluster,
                                                    graph, truth):
        client = cluster.client()
        try:
            for v in range(graph.num_nodes):
                assert client.neighbors(v) == truth.neighbors(v)
                assert client.degree(v) == truth.degree(v)
            for u in range(0, graph.num_nodes, 5):
                for v in range(0, graph.num_nodes, 7):
                    assert client.has_edge(u, v) == truth.has_edge(u, v)
        finally:
            client.shutdown()

    def test_routed_ops_only_touch_the_owning_shard(self, cluster, run):
        """Replica request counters prove single-node ops never leave
        the owner's replica set."""
        ring = cluster.ring
        sid0, sid1 = cluster.shard_ids
        nodes0 = [v for v in range(40) if ring.shard_of(v) == sid0][:8]
        client = cluster.client()
        try:
            for v in nodes0:
                client.degree(v)
        finally:
            client.shutdown()
        served = {
            sid: sum(
                cluster.handle(i).server.metrics.counter(
                    "queries_degree_total"
                )
                for i in shard_replica_indices(cluster, sid)
            )
            for sid in cluster.shard_ids
        }
        assert served[sid0] == len(nodes0)
        assert served[sid1] == 0

    def test_bfs_scatter_matches_truth(self, cluster, graph, truth):
        client = cluster.client()
        try:
            for source in range(0, graph.num_nodes, 9):
                assert client.bfs(source) == truth.bfs_distances(source)
            assert client.metrics.counter(
                "cluster_scatter_fanout_total"
            ) > 0
        finally:
            client.shutdown()

    def test_bfs_allow_partial_on_healthy_cluster_is_complete(
        self, cluster, truth
    ):
        client = cluster.client()
        try:
            envelope = client.bfs(0, allow_partial=True)
            assert isinstance(envelope, PartialResult)
            assert envelope.complete
            assert envelope.failed_shards == []
            assert envelope.value == truth.bfs_distances(0)
        finally:
            client.shutdown()


class TestShardLoss:
    def _kill_shard(self, cluster, sid):
        for i in shard_replica_indices(cluster, sid):
            cluster.kill(i)

    def _pick_cross_shard_source(self, cluster, truth, dead_sid):
        """A node of a surviving shard whose BFS reaches the dead one."""
        ring = cluster.ring
        for v in range(truth.num_nodes):
            if ring.shard_of(v) == dead_sid:
                continue
            if any(ring.shard_of(u) == dead_sid
                   for u in truth.bfs_distances(v)):
                return v
        pytest.skip("no cross-shard component in this fixture")

    def test_losing_a_shard_makes_bfs_partial(self, cluster, truth):
        dead = cluster.shard_ids[1]
        source = self._pick_cross_shard_source(cluster, truth, dead)
        self._kill_shard(cluster, dead)
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            with pytest.raises(PartialResultError) as excinfo:
                client.bfs(source)
            partial = excinfo.value.partial
            assert not partial.complete
            assert partial.failed_shards == [dead]
            # Everything that was gathered is correct (a prefix of the
            # true distance map).
            full = truth.bfs_distances(source)
            assert all(full[v] == d for v, d in partial.value.items())
            assert client.metrics.counter(
                "cluster_partial_results_total"
            ) == 1
        finally:
            client.shutdown()

    def test_partial_error_is_a_connection_error(self, cluster, truth):
        """The load generator's contract: shard loss counts as an
        error, never as a wrong answer."""
        dead = cluster.shard_ids[1]
        source = self._pick_cross_shard_source(cluster, truth, dead)
        self._kill_shard(cluster, dead)
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            with pytest.raises(ConnectionError):
                client.bfs(source)
        finally:
            client.shutdown()

    def test_allow_partial_returns_the_envelope(self, cluster, truth):
        dead = cluster.shard_ids[1]
        source = self._pick_cross_shard_source(cluster, truth, dead)
        self._kill_shard(cluster, dead)
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            envelope = client.bfs(source, allow_partial=True)
            assert isinstance(envelope, PartialResult)
            assert envelope.failed_shards == [dead]
            assert envelope.value  # the surviving component answered
        finally:
            client.shutdown()

    def test_surviving_shard_keeps_answering_single_node_ops(
        self, cluster, truth
    ):
        alive, dead = cluster.shard_ids
        self._kill_shard(cluster, dead)
        ring = cluster.ring
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            for v in range(truth.num_nodes):
                if ring.shard_of(v) == alive:
                    assert client.degree(v) == truth.degree(v)
            victim = next(v for v in range(truth.num_nodes)
                          if ring.shard_of(v) == dead)
            with pytest.raises(ConnectionError):
                client.degree(victim)
        finally:
            client.shutdown()

    def test_in_shard_failover_hides_a_single_replica_loss(
        self, cluster, truth
    ):
        sid = cluster.shard_ids[0]
        cluster.kill(shard_replica_indices(cluster, sid)[0])
        client = cluster.client(timeout=1.0)
        try:
            for v in range(truth.num_nodes):
                assert client.degree(v) == truth.degree(v)
        finally:
            client.shutdown()


class TestShardSwap:
    def test_manifest_swap_rolls_one_shard_at_a_time(
        self, cluster, run, graph, truth, tmp_path
    ):
        nxt = tmp_path / "next"
        save_sharded(run.summary, run.sharded, nxt)
        generations = []

        def verify(i, handle):
            generations.append(
                (cluster.shard_ids.index(
                    cluster._replica_shard[i]), i)
            )
            return True

        report = cluster.rolling_swap(str(nxt), verify=verify)
        assert report.ok
        assert report.swapped_shards == cluster.shard_ids
        assert report.swapped == [0, 1, 2, 3]
        # Shard-major order: shard 0's replicas fully swapped before
        # shard 1's began.
        assert generations == [(0, 0), (0, 1), (1, 2), (1, 3)]
        assert cluster.generations() == [1, 1, 1, 1]
        assert cluster.shard_generations() == {
            cluster.shard_ids[0]: [1, 1],
            cluster.shard_ids[1]: [1, 1],
        }
        client = cluster.client()
        try:
            for v in range(0, graph.num_nodes, 5):
                assert client.neighbors(v) == truth.neighbors(v)
        finally:
            client.shutdown()

    def test_corrupt_manifest_rejected_before_any_replica(
        self, cluster, run, tmp_path
    ):
        from repro.resilience import flip_bit

        bad = tmp_path / "bad"
        save_sharded(run.summary, run.sharded, bad)
        flip_bit(str(bad / "shard-1.ldmeb"))
        report = cluster.rolling_swap(str(bad))
        assert not report.ok
        assert not report.rolled_back
        assert "load failed" in report.error
        assert cluster.generations() == [0, 0, 0, 0]

    def test_mismatched_ring_rejected(self, cluster, run, graph,
                                      tmp_path):
        other = tmp_path / "other"
        resharded = summarize_sharded(
            graph, shards=3, k=5, iterations=4, out_dir=str(other)
        )
        assert resharded.report.ok
        report = cluster.rolling_swap(str(other))
        assert not report.ok
        assert "load failed" in report.error
        assert cluster.generations() == [0, 0, 0, 0]

    def test_single_summary_target_rejected_on_sharded_cluster(
        self, cluster, run
    ):
        with pytest.raises(ValueError, match="one summary per shard"):
            cluster._resolve_swap_target(run.summary)

    def test_failed_verify_in_second_shard_rolls_back_the_first(
        self, cluster, run, truth
    ):
        target = {
            sid: run.manifest.load_shard(sid)
            for sid in cluster.shard_ids
        }

        def verify(i, handle):
            return i < 3             # last replica (shard 1) fails

        report = cluster.rolling_swap(target, verify=verify)
        assert not report.ok
        assert report.rolled_back
        assert report.swapped_shards == []
        # Cross-shard rollback: shard 0's already-swapped replicas were
        # re-rolled too, so no shard serves the half-applied target.
        client = cluster.client()
        try:
            for v in range(0, truth.num_nodes, 5):
                assert client.neighbors(v) == truth.neighbors(v)
            assert all(
                not cluster.handle(i).server.degraded
                for i in range(cluster.num_replicas)
            )
        finally:
            client.shutdown()

    def test_mapping_swap_and_rollback(self, cluster, run, truth):
        target = {
            sid: run.manifest.load_shard(sid)
            for sid in cluster.shard_ids
        }
        assert cluster.rolling_swap(target).ok
        report = cluster.rollback()
        assert report.ok
        assert report.swapped_shards == cluster.shard_ids
        client = cluster.client()
        try:
            assert client.neighbors(1) == truth.neighbors(1)
        finally:
            client.shutdown()
