"""Chaos validation of the replica set: faults under live load.

The acceptance scenario for replicated serving: three replicas take a
mixed query workload through one shared :class:`ClusterClient` while a
deterministic :class:`ClusterFaultPlan` kills a replica mid-run,
corrupts another's hot-swap artifact, restarts the dead replica, and
finally rolls a healthy swap across the fleet. Every answer is verified
against the compiled ground-truth index.

Required outcome: **zero incorrect answers**, an error rate under 1%,
and every circuit breaker closed again once the fleet has recovered.
The fault schedule keys on the load generator's progress counter (not
wall-clock), so the same faults hit the same query indices every run.
"""

import time

import numpy as np
import pytest

from repro.binaryio import write_summary_binary
from repro.core.ldme import LDME
from repro.queries.compiled import CompiledSummaryIndex
from repro.resilience import ClusterFaultPlan, ReplicaFault
from repro.serve import ServerConfig, SummaryCluster
from repro.serve.loadgen import run_load, with_analytics

SEED = 1234           # fixed: the CI cluster-chaos job depends on it


@pytest.fixture(scope="module")
def summary():
    from repro.graph.generators import web_host_graph

    graph = web_host_graph(num_hosts=6, host_size=12, seed=42)
    return LDME(k=5, iterations=8, seed=0).summarize(graph)


@pytest.fixture(scope="module")
def truth(summary):
    return CompiledSummaryIndex(summary)


def expected_neighbors(truth, v):
    return [int(x) for x in
            truth.neighbors_batch(np.asarray([v], dtype=np.int64))[0]]


@pytest.mark.chaos
class TestClusterChaos:
    def test_chaos_run_zero_wrong_answers_and_full_recovery(
        self, summary, truth, tmp_path, capsys
    ):
        bad = tmp_path / "bad.ldmeb"
        good = tmp_path / "good.ldmeb"
        write_summary_binary(summary, bad)     # corrupted by the plan
        write_summary_binary(summary, good)

        with SummaryCluster(
            summary,
            replicas=3,
            config=ServerConfig(batch_window=0.001,
                                degraded_enabled=True),
        ) as cluster:
            client = cluster.client(
                timeout=2.0,
                hedge_delay=0.25,
                breaker_recovery=0.3,
            )
            client.start_health_checks(interval=0.1, probe_timeout=1.0)
            plan = ClusterFaultPlan(cluster, [
                ReplicaFault(at_progress=150, replica=1, action="kill"),
                ReplicaFault(at_progress=350, action="corrupt_swap",
                             path=str(bad)),
                ReplicaFault(at_progress=550, replica=1,
                             action="restart"),
                ReplicaFault(at_progress=750, action="swap",
                             path=str(good)),
            ])
            try:
                report = run_load(
                    "127.0.0.1",
                    cluster.addresses[0][1],
                    num_queries=1200,
                    concurrency=4,
                    seed=SEED,
                    client_factory=lambda: client,
                    truth=truth,
                    mix=with_analytics(fraction=0.2),
                    on_progress=plan.on_progress,
                )

                # The whole schedule fired, and no fault action blew up.
                assert plan.exhausted
                assert plan.errors == []
                assert [t[1] for t in plan.triggered] == [
                    "kill", "corrupt_swap", "restart", "swap",
                ]

                # Correctness is non-negotiable: every answer that came
                # back — fresh, failed-over, hedged, or stale-flagged —
                # matched ground truth.
                assert report.wrong == 0
                assert report.errors / report.num_queries < 0.01

                # The analytics slice of the mix actually ran — the
                # zero-wrong gate covers bound-checked estimates too.
                analytics_ops = sum(
                    count for op, count in report.op_counts.items()
                    if op.startswith("analytics.")
                )
                assert analytics_ops > 100

                # The corrupted artifact was rejected at load time, the
                # fleet untouched; the healthy swap then rolled through.
                corrupt_report, swap_report = plan.swap_reports
                assert not corrupt_report.ok
                assert not corrupt_report.rolled_back
                assert "load failed" in corrupt_report.error
                assert swap_report.ok
                assert cluster.generations() == [1, 1, 1]

                # Recovery: active health checks close every breaker.
                deadline = time.time() + 15
                while time.time() < deadline:
                    if set(client.breaker_states().values()) == {"closed"}:
                        break
                    time.sleep(0.05)
                assert set(client.breaker_states().values()) == {"closed"}

                # The recovered fleet answers correctly everywhere.
                for v in range(12):
                    assert client.neighbors(v) == \
                        expected_neighbors(truth, v)

                # The report is the CI artifact; print it so the job log
                # (and --capture=no runs) always carries the numbers.
                with capsys.disabled():
                    print()
                    print(report.format())
                    print("breakers:", client.breaker_states())
            finally:
                client.shutdown()
