"""Chaos validation of the sharded cluster: shard faults under load.

The acceptance scenario for sharded serving: a 2-shards x 2-replicas
cluster takes the full mixed workload through one hash-ring-routing
:class:`ClusterClient` while a deterministic :class:`ClusterFaultPlan`
kills one shard's replica mid-run, corrupts one shard artifact of a
pending manifest swap (the manifest CRC check must reject the whole
swap before any replica is touched), restarts the dead replica, and
finally rolls a healthy manifest swap shard-by-shard across the fleet.
Every answer is verified against the stitched global index.

Required outcome: **zero incorrect answers** and an error rate under
1%. The fault schedule keys on the load generator's progress counter,
so the same faults hit the same query indices every run. This is the
test the CI ``shard-chaos`` job runs.
"""

import time

import pytest

from repro.graph.generators import web_host_graph
from repro.queries.compiled import CompiledSummaryIndex
from repro.resilience import ClusterFaultPlan, ReplicaFault
from repro.serve import ServerConfig, SummaryCluster
from repro.serve.loadgen import run_load
from repro.shard import save_sharded, summarize_sharded

SEED = 4321           # fixed: the CI shard-chaos job depends on it


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    graph = web_host_graph(num_hosts=6, host_size=12, seed=42)
    out = tmp_path_factory.mktemp("shard-chaos") / "current"
    result = summarize_sharded(
        graph, shards=2, k=5, iterations=8, seed=0, out_dir=str(out)
    )
    assert result.report.ok
    return result


@pytest.fixture(scope="module")
def truth(run):
    return CompiledSummaryIndex(run.summary)


@pytest.mark.chaos
class TestShardChaos:
    def test_chaos_run_zero_wrong_answers(self, run, truth, tmp_path,
                                          capsys):
        bad = tmp_path / "bad"          # corrupted by the plan
        good = tmp_path / "good"
        save_sharded(run.summary, run.sharded, bad)
        save_sharded(run.summary, run.sharded, good)

        with SummaryCluster.from_manifest(
            run.manifest,
            replicas=2,
            config=ServerConfig(batch_window=0.001,
                                degraded_enabled=True),
        ) as cluster:
            client = cluster.client(
                timeout=2.0,
                hedge_delay=0.25,
                breaker_recovery=0.3,
            )
            client.start_health_checks(interval=0.1, probe_timeout=1.0)
            plan = ClusterFaultPlan(cluster, [
                # Replica 1 = shard 0's second replica: in-shard
                # failover must absorb it.
                ReplicaFault(at_progress=150, replica=1, action="kill"),
                # One damaged shard artifact fails the whole manifest's
                # CRC verification; no replica may be touched.
                ReplicaFault(at_progress=350, action="corrupt_swap",
                             path=str(bad)),
                ReplicaFault(at_progress=550, replica=1,
                             action="restart"),
                # Healthy manifest rolls one shard at a time.
                ReplicaFault(at_progress=750, action="swap",
                             path=str(good)),
            ])
            try:
                report = run_load(
                    "127.0.0.1",
                    cluster.addresses[0][1],
                    num_queries=1200,
                    concurrency=4,
                    seed=SEED,
                    client_factory=lambda: client,
                    truth=truth,
                    on_progress=plan.on_progress,
                )

                assert plan.exhausted
                assert plan.errors == []
                assert [t[1] for t in plan.triggered] == [
                    "kill", "corrupt_swap", "restart", "swap",
                ]

                # Correctness is non-negotiable: every answer that came
                # back — routed, scattered, failed-over, hedged, or
                # stale-flagged — matched the stitched global truth.
                assert report.wrong == 0
                assert report.errors / report.num_queries < 0.01

                # The corrupted manifest was rejected at load time, the
                # fleet untouched; the healthy swap then rolled through
                # shard by shard.
                corrupt_report, swap_report = plan.swap_reports
                assert not corrupt_report.ok
                assert not corrupt_report.rolled_back
                assert "load failed" in corrupt_report.error
                assert swap_report.ok
                assert swap_report.swapped_shards == cluster.shard_ids
                assert cluster.generations() == [1, 1, 1, 1]

                # Recovery: active health checks close every breaker.
                deadline = time.time() + 15
                while time.time() < deadline:
                    if set(client.breaker_states().values()) == \
                            {"closed"}:
                        break
                    time.sleep(0.05)
                assert set(client.breaker_states().values()) == \
                    {"closed"}

                # The recovered sharded fleet answers correctly
                # everywhere, across both shards.
                for v in range(12):
                    assert client.neighbors(v) == truth.neighbors(v)

                # The report is the CI artifact; print it so the job
                # log (and --capture=no runs) always carries the
                # numbers.
                with capsys.disabled():
                    print()
                    print(report.format())
                    print("shard generations:",
                          cluster.shard_generations())
                    print("breakers:", client.breaker_states())
            finally:
                client.shutdown()
