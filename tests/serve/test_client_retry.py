"""SummaryClient retry/backoff against a misbehaving server.

A tiny scripted TCP server drops connections at nasty moments — before
responding, mid-frame, after a partial length prefix — and the client
must transparently reconnect, retry with backoff, and still deliver the
answer. Complements the integration tests in ``test_server.py``, which
only exercise the happy transport path.
"""

import random
import socket
import struct
import threading

import pytest

from repro.serve.breaker import failure_trips_breaker
from repro.serve.client import ServerError, SummaryClient
from repro.serve.protocol import (
    ErrorCode,
    encode_frame,
    recv_frame,
    send_frame,
)


class FlakyServer:
    """Accepts connections and runs a per-connection behavior script.

    ``script`` is a list of behavior names, one per accepted connection
    (the last entry repeats forever):

    * ``"drop_before_response"`` — read the request, close without replying.
    * ``"drop_mid_frame"``      — reply with half a frame, then close.
    * ``"drop_mid_prefix"``     — send 2 of the 4 length-prefix bytes.
    * ``"serve"``               — answer requests properly until EOF.
    """

    def __init__(self, script):
        self.script = script
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(10.0)
        self.port = self._listener.getsockname()[1]
        self.connections = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._stop = threading.Event()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5)

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except (OSError, socket.timeout):
                return
            behavior = self.script[min(self.connections,
                                       len(self.script) - 1)]
            self.connections += 1
            try:
                self._run_behavior(conn, behavior)
            except OSError:
                pass
            finally:
                conn.close()

    def _run_behavior(self, conn, behavior):
        conn.settimeout(10.0)
        if behavior == "serve":
            while True:
                request = recv_frame(conn)
                if request is None:
                    return
                send_frame(
                    conn,
                    {"id": request["id"], "ok": True, "result": "pong"},
                )
            return
        request = recv_frame(conn)     # read the doomed request
        if request is None:
            return
        if behavior == "drop_before_response":
            return                     # close() in the caller = RST/EOF
        response = encode_frame(
            {"id": request["id"], "ok": True, "result": "pong"}
        )
        if behavior == "drop_mid_frame":
            conn.sendall(response[: len(response) // 2])
        elif behavior == "drop_mid_prefix":
            conn.sendall(struct.pack(">I", 64)[:2])
        else:  # pragma: no cover - script typo guard
            raise AssertionError(f"unknown behavior {behavior!r}")


def make_client(port, retries=3):
    return SummaryClient(
        "127.0.0.1", port, timeout=5.0, retries=retries, backoff=0.01
    )


class TestClientRetry:
    @pytest.mark.slow
    def test_drop_before_response_then_recover(self):
        with FlakyServer(["drop_before_response", "serve"]) as server:
            client = make_client(server.port)
            try:
                assert client.ping()["pong"] is True
                assert client.retries_used >= 1
            finally:
                client.close()
            assert server.connections >= 2

    @pytest.mark.slow
    def test_drop_mid_frame_then_recover(self):
        """Connection dies halfway through the response bytes."""
        with FlakyServer(["drop_mid_frame", "serve"]) as server:
            client = make_client(server.port)
            try:
                assert client.ping()["pong"] is True
                assert client.retries_used >= 1
            finally:
                client.close()

    def test_drop_mid_prefix_then_recover(self):
        with FlakyServer(["drop_mid_prefix", "serve"]) as server:
            client = make_client(server.port)
            try:
                assert client.ping()["pong"] is True
            finally:
                client.close()

    @pytest.mark.slow
    def test_repeated_drops_exhaust_retries(self):
        with FlakyServer(["drop_before_response"]) as server:
            client = make_client(server.port, retries=2)
            try:
                with pytest.raises(ConnectionError, match="after 3 attempts"):
                    client.ping()
                assert client.retries_used == 2
            finally:
                client.close()

    def test_two_consecutive_drops_then_recover(self):
        with FlakyServer(
            ["drop_before_response", "drop_mid_frame", "serve"]
        ) as server:
            client = make_client(server.port)
            try:
                assert client.ping()["pong"] is True
                assert client.retries_used >= 2
            finally:
                client.close()

    def test_pipeline_retries_after_drop(self):
        with FlakyServer(["drop_before_response", "serve"]) as server:
            client = make_client(server.port)
            try:
                # neighbors_many uses the pipelined path; the fake server
                # answers "pong" for any op, which is fine — we only care
                # that the transport retry succeeds end-to-end.
                results = client.neighbors_many([1, 2])
                assert results == ["pong", "pong"]
                assert client.retries_used >= 1
            finally:
                client.close()


class TestBackoffJitter:
    """The backoff is *full jitter*: uniform in [0, backoff * 2**attempt].

    Deterministic exponential backoff synchronizes retry storms — every
    client that failed together retries together. The sleep must be a
    uniform draw from the injectable RNG so tests can replay it exactly.
    """

    def _capture_sleeps(self, monkeypatch, client):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", sleeps.append
        )
        return sleeps

    def test_sleeps_replay_the_injected_rng(self, monkeypatch):
        client = SummaryClient(
            "127.0.0.1", 1, backoff=0.05, rng=random.Random(7)
        )
        sleeps = self._capture_sleeps(monkeypatch, client)
        for attempt in range(4):
            client._sleep_backoff(attempt)
        replay = random.Random(7)
        expected = [
            replay.uniform(0.0, 0.05 * (2 ** attempt))
            for attempt in range(4)
        ]
        assert sleeps == expected

    def test_sleeps_stay_within_the_doubling_cap(self, monkeypatch):
        client = SummaryClient(
            "127.0.0.1", 1, backoff=0.1, rng=random.Random(3)
        )
        sleeps = self._capture_sleeps(monkeypatch, client)
        for _ in range(200):
            client._sleep_backoff(2)
        cap = 0.1 * 4
        assert all(0.0 <= s <= cap for s in sleeps)
        # Uniform draws spread over the range, not clustered at the cap.
        assert min(sleeps) < cap / 4
        assert client.retries_used == 200

    def test_distinct_rngs_decorrelate_clients(self, monkeypatch):
        a = SummaryClient("127.0.0.1", 1, rng=random.Random(1))
        b = SummaryClient("127.0.0.1", 1, rng=random.Random(2))
        sleeps = self._capture_sleeps(monkeypatch, a)
        a._sleep_backoff(0)
        b._sleep_backoff(0)
        assert sleeps[0] != sleeps[1]


class TestRetryableMatchesBreakerAccounting:
    """Satellite invariant: for every typed server error, the client's
    retry decision and the cluster's breaker accounting agree.

    A code the client may retry is exactly a code that counts against
    the replica's circuit breaker; a non-retryable answer proves the
    replica is healthy and must *close* the breaker, never trip it. If
    this table drifts (a new ErrorCode lands in RETRYABLE but not in the
    breaker predicate, or vice versa), failover would retry against
    replicas it refuses to account for — or shun healthy ones.
    """

    ALL_CODES = sorted(
        value for name, value in vars(ErrorCode).items()
        if name.isupper() and isinstance(value, str)
    )

    def test_every_error_code_is_classified(self):
        assert set(ErrorCode.RETRYABLE) <= set(self.ALL_CODES)
        assert len(self.ALL_CODES) >= 8

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_retryable_iff_breaker_failure(self, code):
        assert ServerError(code, "x").retryable == \
            failure_trips_breaker(code)

    def test_transport_fault_is_breaker_failure(self):
        # No ServerError exists for a transport fault (code None); the
        # client retries it and the breaker counts it — both true.
        assert failure_trips_breaker(None)
