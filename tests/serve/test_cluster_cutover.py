"""Generation cutover on a live cluster (``SummaryCluster`` two-phase
prepare/commit, ring epochs, and client topology refresh).

These are the serve-layer halves of elastic re-sharding: staging a new
generation must be side-effect-free until commit, commit must flip the
whole fleet atomically to the next ring epoch, and a client built
against the old topology must self-heal — either lazily off a
``wrong_shard`` rejection or proactively off the ``ring_epoch`` field
in ping health — without ever returning a wrong answer.
"""

import time

import pytest

from repro.graph.generators import web_host_graph
from repro.queries.compiled import CompiledSummaryIndex
from repro.serve import ServerConfig, SummaryClient, SummaryCluster
from repro.shard import HashRing, summarize_sharded


@pytest.fixture(scope="module")
def graph():
    return web_host_graph(num_hosts=4, host_size=10, seed=3)


@pytest.fixture(scope="module")
def truth(graph, old_manifest):
    return CompiledSummaryIndex(old_manifest.load_global())


@pytest.fixture(scope="module")
def old_manifest(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("cutover") / "old"
    result = summarize_sharded(
        graph, HashRing(2, virtual_nodes=1), iterations=6, seed=0,
        out_dir=str(out),
    )
    return result.manifest


@pytest.fixture(scope="module")
def new_manifest(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("cutover") / "new"
    result = summarize_sharded(
        graph, HashRing(3, virtual_nodes=1), iterations=6, seed=0,
        out_dir=str(out),
    )
    return result.manifest


@pytest.fixture()
def cluster(old_manifest):
    with SummaryCluster.from_manifest(
        old_manifest, replicas=1,
        config=ServerConfig(batch_window=0.001),
    ) as cluster:
        yield cluster


class TestGenerationCutover:
    def test_prepare_is_side_effect_free(self, cluster, new_manifest,
                                         truth, graph):
        old_addresses = list(cluster.addresses)
        staged = cluster.prepare_generation(new_manifest)
        assert len(staged) == 3                     # one per new shard
        assert cluster.staged_generation is new_manifest
        # Old generation untouched and still serving.
        assert cluster.epoch == 0
        assert cluster.addresses == old_addresses
        assert sorted(cluster.shard_ids) == [0, 1]
        client = cluster.client(timeout=2.0)
        try:
            for v in range(0, graph.num_nodes, 5):
                assert client.neighbors(v) == truth.neighbors(v)
        finally:
            client.shutdown()
        assert cluster.abort_generation()

    def test_prepare_twice_rejected(self, cluster, new_manifest):
        cluster.prepare_generation(new_manifest)
        with pytest.raises(RuntimeError, match="already staged"):
            cluster.prepare_generation(new_manifest)
        assert cluster.abort_generation()

    def test_commit_without_prepare_rejected(self, cluster):
        with pytest.raises(RuntimeError):
            cluster.commit_generation()

    def test_abort_is_idempotent_and_harmless(self, cluster, new_manifest):
        assert not cluster.abort_generation()       # nothing staged
        cluster.prepare_generation(new_manifest)
        assert cluster.abort_generation()
        assert not cluster.abort_generation()
        assert cluster.epoch == 0
        assert cluster.staged_generation is None

    def test_commit_flips_epoch_and_topology(self, cluster, new_manifest,
                                             truth, graph):
        cluster.prepare_generation(new_manifest)
        assert cluster.commit_generation() == 1
        assert cluster.epoch == 1
        assert sorted(cluster.shard_ids) == [0, 1, 2]
        assert cluster.ring == HashRing(3, virtual_nodes=1)
        # Every serving replica reports the new epoch via ping health.
        for host, port in cluster.addresses:
            probe = SummaryClient(host, port, timeout=2.0)
            try:
                assert probe.ping().get("ring_epoch") == 1
            finally:
                probe.close()
        # A fresh client answers correctly from the new generation.
        client = cluster.client(timeout=2.0)
        try:
            assert client.epoch == 1
            for v in range(0, graph.num_nodes, 5):
                assert client.neighbors(v) == truth.neighbors(v)
        finally:
            client.shutdown()
        assert cluster.retire_old_generation() == 2   # 2 shards x 1 replica

    def test_topology_op_serves_ring_and_addresses(self, cluster):
        host, port = cluster.addresses[0]
        probe = SummaryClient(host, port, timeout=2.0)
        try:
            payload = probe.call("topology")
        finally:
            probe.close()
        assert payload["epoch"] == 0
        assert HashRing.from_dict(payload["ring"]) == cluster.ring
        assert {int(s) for s in payload["shards"]} == set(cluster.shard_ids)

    def test_stale_client_self_heals_on_wrong_shard(self, cluster,
                                                    new_manifest, truth,
                                                    graph):
        # Client built against the OLD topology, before the cutover.
        stale = cluster.client(timeout=2.0)
        try:
            assert stale.neighbors(0) == truth.neighbors(0)
            cluster.prepare_generation(new_manifest)
            cluster.commit_generation()
            # Retired replicas bounce routed queries with wrong_shard;
            # the client must refresh its topology and re-route, never
            # surface the rejection or a stale answer.
            for v in range(0, graph.num_nodes, 3):
                assert stale.neighbors(v) == truth.neighbors(v)
            assert stale.epoch == 1
            assert stale.metrics.counter("cluster_topology_refreshes_total") >= 1
        finally:
            stale.shutdown()
            cluster.retire_old_generation()

    def test_health_checker_refreshes_on_ping_epoch(self, cluster,
                                                    new_manifest):
        client = cluster.client(timeout=2.0)
        try:
            cluster.prepare_generation(new_manifest)
            cluster.commit_generation()
            client.start_health_checks(interval=0.05, probe_timeout=1.0)
            deadline = time.time() + 10
            while time.time() < deadline and client.epoch != 1:
                time.sleep(0.02)
            # The checker saw ring_epoch=1 in ping health and refreshed
            # proactively — no query had to eat a wrong_shard first.
            assert client.epoch == 1
            assert sorted(client.shard_ids) == [0, 1, 2]
        finally:
            client.shutdown()
            cluster.retire_old_generation()

    def test_stop_reaps_staged_and_retired(self, old_manifest, new_manifest):
        cluster = SummaryCluster.from_manifest(
            old_manifest, replicas=1,
            config=ServerConfig(batch_window=0.001),
        )
        cluster.start()
        cluster.prepare_generation(new_manifest)
        cluster.commit_generation()
        cluster.stop()                       # must reap old fleet too
        assert cluster.staged_generation is None
