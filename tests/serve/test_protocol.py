"""Tests for the length-prefixed JSON wire protocol."""

import struct

import pytest

from repro.serve.protocol import (
    ErrorCode,
    ProtocolError,
    RequestError,
    decode_body,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame({"id": 1, "op": "ping", "args": {}})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == {"id": 1, "op": "ping", "args": {}}

    def test_oversize_body_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * 100}, max_bytes=16)

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_body(b"{not json")

    def test_bad_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe")


class TestValidation:
    def test_valid_query(self):
        rid, op, args = validate_request(
            {"id": 3, "op": "neighbors", "args": {"v": 7}}
        )
        assert (rid, op, args) == (3, "neighbors", {"v": 7})

    @pytest.mark.parametrize("bad", [
        None,
        [],
        "neighbors",
        {"op": "neighbors", "args": {"v": 1}},              # no id
        {"id": "x", "op": "neighbors", "args": {"v": 1}},   # non-int id
        {"id": True, "op": "neighbors", "args": {"v": 1}},  # bool id
        {"id": 1, "op": "frobnicate"},                      # unknown op
        {"id": 1, "op": "neighbors", "args": {"v": "7"}},   # non-int node
        {"id": 1, "op": "neighbors", "args": {"v": True}},  # bool node
        {"id": 1, "op": "neighbors"},                       # missing node
        {"id": 1, "op": "has_edge", "args": {"u": 1}},      # missing v
        {"id": 1, "op": "bfs", "args": {}},                 # missing source
        {"id": 1, "op": "reload", "args": {}},              # missing path
        {"id": 1, "op": "neighbors", "args": [1]},          # args not dict
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(RequestError) as excinfo:
            validate_request(bad)
        assert excinfo.value.code == ErrorCode.BAD_REQUEST

    def test_stats_and_ping_need_no_args(self):
        for op in ("stats", "ping"):
            rid, got_op, _ = validate_request({"id": 0, "op": op})
            assert got_op == op


class TestEnvelopes:
    def test_ok_shape(self):
        assert ok_response(5, [1, 2]) == {"id": 5, "ok": True,
                                          "result": [1, 2]}

    def test_error_shape(self):
        response = error_response(5, ErrorCode.OVERLOADED, "queue full")
        assert response["ok"] is False
        assert response["error"]["code"] == "overloaded"

    def test_retryable_codes(self):
        assert ErrorCode.OVERLOADED in ErrorCode.RETRYABLE
        assert ErrorCode.TIMEOUT in ErrorCode.RETRYABLE
        assert ErrorCode.BAD_REQUEST not in ErrorCode.RETRYABLE
