"""Chaos validation of elastic re-sharding: a 2 -> 3 ring expansion
under live query load while the coordinator is killed at every journal
step and one staged shard artifact is corrupted.

The acceptance scenario for ISSUE 10 and the CI ``reshard-chaos`` job:

* A corrupted new-generation shard file must fail the manifest CRC
  check and roll the migration back all-or-nothing — the serving fleet
  is never touched.
* The coordinator then dies (``CoordinatorKilledError``, the in-process
  stand-in for SIGKILL) immediately after *each* journal step is
  persisted; a fresh coordinator resumes from the journal every time
  and the migration still commits.
* A load generator drives ground-truth-verified queries through one
  shared :class:`ClusterClient` the whole time, labelling each query
  with the migration phase it was issued in. Required outcome: **zero
  wrong answers in every phase** and an error rate under 1%.
* Ingest events acknowledged during the build are replayed onto the
  new generation before commit — zero acked-event loss.
* Afterwards the cluster serves exactly one generation: every replica
  reports the new ring epoch, and the expansion provably rebuilt
  strictly fewer shard artifacts than a from-scratch run.
"""

import threading
import time

import pytest

from repro.graph.generators import web_host_graph
from repro.ingest import IngestService
from repro.queries.compiled import CompiledSummaryIndex
from repro.resilience import MigrationFault, MigrationFaultPlan
from repro.serve import ServerConfig, SummaryClient, SummaryCluster
from repro.serve.loadgen import run_load
from repro.shard import GenerationStore, HashRing, MigrationCoordinator
from repro.shard.migrate import JOURNAL_STEPS, CoordinatorKilledError

SEED = 8765           # fixed: the CI reshard-chaos job depends on it
ITERATIONS = 8


@pytest.fixture()
def graph():
    return web_host_graph(num_hosts=6, host_size=12, seed=42)


@pytest.fixture()
def store(tmp_path, graph):
    store = GenerationStore(tmp_path / "store")
    store.bootstrap(graph, shards=2, iterations=ITERATIONS, seed=0)
    return store


def _coordinator(store, cluster=None, **kwargs):
    return MigrationCoordinator(
        store, cluster=cluster, iterations=ITERATIONS, seed=0, **kwargs
    )


@pytest.mark.chaos
class TestReshardChaos:
    def test_expansion_under_load_with_kills_and_corruption(
        self, store, graph, capsys
    ):
        manifest = store.current_manifest()
        truth = CompiledSummaryIndex(manifest.load_global())
        new_ring = HashRing(3, virtual_nodes=1)

        state = {"coord": None, "kills": [], "rollbacks": 0,
                 "final": None, "error": None}
        load_started = threading.Event()

        def migration_thread():
            try:
                # Overlap with the load: don't start re-sharding until
                # queries are actually flowing.
                load_started.wait(timeout=30)
                # Round 0: corrupt one staged shard artifact. The CRC
                # verification in the prepare step must reject it and
                # roll back all-or-nothing.
                plan = MigrationFaultPlan([
                    MigrationFault(step="prepare", action="corrupt",
                                   path=store.path("gen-000001")),
                ])
                coord = _coordinator(store, cluster, on_step=plan.on_step)
                state["coord"] = coord
                report = coord.migrate(new_ring, graph)
                assert report.rolled_back and not report.committed
                assert cluster.epoch == 0
                state["rollbacks"] += 1

                # Rounds 1..n: die right after each journal step is
                # persisted, then resume with a fresh coordinator.
                for step in JOURNAL_STEPS:
                    plan = MigrationFaultPlan([MigrationFault(step=step)])
                    coord = _coordinator(store, cluster,
                                         on_step=plan.on_step)
                    state["coord"] = coord
                    try:
                        if step == JOURNAL_STEPS[0]:
                            coord.migrate(new_ring, graph)
                        else:
                            coord.resume(graph)
                    except CoordinatorKilledError:
                        state["kills"].append(step)

                # Clean final resume: nothing left but finishing.
                coord = _coordinator(store, cluster)
                state["coord"] = coord
                state["final"] = coord.resume(graph)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                state["error"] = exc

        with SummaryCluster.from_manifest(
            manifest, replicas=2,
            config=ServerConfig(batch_window=0.001),
        ) as cluster:
            client = cluster.client(timeout=2.0, breaker_recovery=0.3)
            client.start_health_checks(interval=0.1, probe_timeout=1.0)
            worker = threading.Thread(target=migration_thread)

            def phase_fn():
                coord = state["coord"]
                return (coord.current_step or "idle") if coord else "idle"

            def on_progress(done):
                if done >= 10:
                    load_started.set()

            try:
                worker.start()
                report = run_load(
                    "127.0.0.1",
                    cluster.addresses[0][1],
                    num_queries=1500,
                    concurrency=4,
                    seed=SEED,
                    client_factory=lambda: client,
                    truth=truth,
                    phase_fn=phase_fn,
                    on_progress=on_progress,
                )
                worker.join(timeout=120)
                assert not worker.is_alive()
                if state["error"] is not None:
                    raise state["error"]

                # Fault schedule ran in full: one rollback, then a kill
                # at every journal step.
                assert state["rollbacks"] == 1
                assert state["kills"] == list(JOURNAL_STEPS)
                assert state["final"].committed
                assert not state["final"].rolled_back

                # Correctness is non-negotiable: across rollback, six
                # coordinator deaths, and the live cutover, every
                # answer matched ground truth — in every phase.
                assert report.wrong == 0
                for phase, counts in report.phase_counts.items():
                    assert counts["wrong"] == 0, phase
                assert sum(
                    c["queries"] for c in report.phase_counts.values()
                ) == report.num_queries
                assert report.errors / report.num_queries < 0.01

                # The committed expansion rebuilt strictly fewer shard
                # artifacts than from scratch (the journal records the
                # plan the build executed).
                journal = store.read_journal()
                assert journal.step == "done"
                assert len(journal.rebuild_shards) < len(new_ring.shards)
                assert journal.reused_shards

                # Exactly one generation serving: the store points at
                # the new one, the cluster is on epoch 1 with the new
                # ring, and every live replica reports that epoch.
                assert store.current() == "gen-000001"
                assert cluster.epoch == 1
                assert sorted(cluster.shard_ids) == [0, 1, 2]
                assert cluster.retire_old_generation() == 4
                for host, port in cluster.addresses:
                    probe = SummaryClient(host, port, timeout=2.0)
                    try:
                        assert probe.ping().get("ring_epoch") == 1
                    finally:
                        probe.close()

                # The shared client self-healed onto the new topology.
                deadline = time.time() + 10
                while time.time() < deadline and client.epoch != 1:
                    time.sleep(0.05)
                assert client.epoch == 1
                for v in range(0, graph.num_nodes, 5):
                    assert client.neighbors(v) == truth.neighbors(v)

                # The report is the CI artifact; print it so the job
                # log always carries the numbers.
                with capsys.disabled():
                    print()
                    print(report.format())
                    print("kills:", state["kills"],
                          "rollbacks:", state["rollbacks"])
                    print("rebuilt:", journal.rebuild_shards,
                          "reused:", journal.reused_shards,
                          "epoch:", cluster.epoch)
            finally:
                load_started.set()
                worker.join(timeout=5)
                client.shutdown()

    def test_acked_ingest_events_survive_migration(self, store, graph,
                                                   tmp_path):
        service, _ = IngestService.open(
            tmp_path / "wal", num_nodes=graph.num_nodes
        )
        service.start()
        try:
            # Edges that do not exist yet, acknowledged mid-build.
            new_edges = []
            for u in range(graph.num_nodes):
                for v in range(u + 1, graph.num_nodes):
                    if v not in graph.neighbors(u).tolist():
                        new_edges.append((u, v))
                    if len(new_edges) == 3:
                        break
                if len(new_edges) == 3:
                    break
            assert len(new_edges) == 3

            submitted = {"done": False}

            def on_step(step):
                if step == "built" and not submitted["done"]:
                    submitted["done"] = True
                    acks = service.submit_many(
                        [("+", u, v) for u, v in new_edges]
                    )
                    for ack in acks:
                        ack.wait(10.0)
                    assert service.drain(10.0)

            report = _coordinator(
                store, ingest=service, on_step=on_step
            ).migrate(HashRing(3, virtual_nodes=1), graph)

            # Every acknowledged write made it into the committed
            # generation's artifacts before cutover.
            assert report.committed
            assert submitted["done"]
            assert report.replayed_events == len(new_edges)
            index = CompiledSummaryIndex(
                store.current_manifest().load_global()
            )
            for u, v in new_edges:
                assert index.has_edge(u, v)
            assert service.status()["migration_capturing"] is False
        finally:
            service.stop()

    def test_rollback_keeps_acked_events_durable(self, store, graph,
                                                 tmp_path):
        service, _ = IngestService.open(
            tmp_path / "wal", num_nodes=graph.num_nodes
        )
        service.start()
        try:
            plan = MigrationFaultPlan([MigrationFault(step="prepare")])

            def on_step(step):
                if step == "built":
                    ack = service.submit("+", 0, graph.num_nodes - 1)
                    ack.wait(10.0)
                    assert service.drain(10.0)
                plan.on_step(step)

            with pytest.raises(CoordinatorKilledError):
                _coordinator(
                    store, ingest=service, on_step=on_step
                ).migrate(HashRing(3, virtual_nodes=1), graph)
            # The operator gives up on the dead migration instead of
            # resuming it.
            report = _coordinator(store, ingest=service).abort()

            # The migration rolled back, but the acked event was never
            # tied to it: the WAL still holds it and the summarizer
            # already applied it. Capture mode is off again.
            assert report.rolled_back
            assert service.applied_seq == 1
            assert service.status()["migration_capturing"] is False
            assert service.summarizer.current_graph().has_edge(
                0, graph.num_nodes - 1
            )
        finally:
            service.stop()
