"""End-to-end tests for the query server.

Every test stands up a real asyncio server on an ephemeral port (via
``ServerThread``) and talks to it through the blocking client or a raw
socket — no mocked transports.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.queries import SummaryIndex
from repro.serve import (
    ServerConfig,
    ServerError,
    ServerThread,
    SummaryClient,
    SummaryServer,
)
from repro.serve.protocol import ErrorCode, recv_frame, send_frame
from repro.streaming import DynamicSummarizer


@pytest.fixture(scope="module")
def summary():
    from repro.graph.generators import web_host_graph

    graph = web_host_graph(num_hosts=6, host_size=12, seed=42)
    return LDME(k=5, iterations=8, seed=0).summarize(graph)


@pytest.fixture(scope="module")
def truth(summary):
    return SummaryIndex(summary)


@pytest.fixture
def handle(summary):
    with ServerThread(summary, ServerConfig(batch_window=0.001)) as handle:
        yield handle


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"batch_window": -0.1},
        {"max_batch": 0},
        {"max_pending": 0},
        {"request_timeout": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)

    def test_port_requires_start(self, summary):
        with pytest.raises(RuntimeError):
            SummaryServer(summary).port


class TestEndToEnd:
    def test_500_mixed_queries_concurrent_clients_match_truth(
        self, handle, truth
    ):
        """≥500 mixed queries from 4 concurrent clients, all verified."""
        num_nodes = truth.num_nodes
        mismatches = []
        errors = []

        def worker(worker_id):
            rng = np.random.default_rng(worker_id)
            client = SummaryClient("127.0.0.1", handle.port)
            try:
                for i in range(150):
                    op = ("neighbors", "degree", "has_edge",
                          "bfs")[int(rng.integers(4)) if i % 10 == 0 else
                                 int(rng.integers(3))]
                    v = int(rng.integers(num_nodes))
                    if op == "neighbors":
                        got, want = client.neighbors(v), truth.neighbors(v)
                    elif op == "degree":
                        got, want = client.degree(v), truth.degree(v)
                    elif op == "has_edge":
                        u = int(rng.integers(num_nodes))
                        got, want = client.has_edge(u, v), \
                            truth.has_edge(u, v)
                    else:
                        got, want = client.bfs(v), truth.bfs_distances(v)
                    if got != want:
                        mismatches.append((op, v, got, want))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert not mismatches
        stats = SummaryClient("127.0.0.1", handle.port).stats()
        assert stats["metrics"]["counters"]["requests_total"] >= 600

    def test_pipelining_coalesces_into_batches(self, handle, truth):
        client = SummaryClient("127.0.0.1", handle.port)
        nodes = list(range(truth.num_nodes)) * 2
        got = client.neighbors_many(nodes)
        assert got == [truth.neighbors(v) for v in nodes]
        stats = client.stats()
        batch_hist = stats["metrics"]["histograms"]["batch_size"]
        assert batch_hist["max"] > 1          # coalescing actually happened
        assert stats["metrics"]["counters"]["batches_total"] < len(nodes)
        client.close()

    def test_cache_hit_rate_positive_and_reported(self, handle, truth):
        client = SummaryClient("127.0.0.1", handle.port)
        for _ in range(3):
            for v in (0, 1, 2, 3):
                assert client.neighbors(v) == truth.neighbors(v)
        stats = client.stats()
        assert stats["cache"]["hits"] > 0
        assert stats["cache"]["hit_rate"] > 0
        assert stats["metrics"]["gauges"]["cache_hit_rate"] > 0
        client.close()

    def test_out_of_range_is_typed_error(self, handle, truth):
        client = SummaryClient("127.0.0.1", handle.port, retries=0)
        with pytest.raises(ServerError) as excinfo:
            client.neighbors(truth.num_nodes + 5)
        assert excinfo.value.code == ErrorCode.OUT_OF_RANGE
        assert not excinfo.value.retryable
        client.close()

    def test_ping_and_stats_shape(self, handle):
        client = SummaryClient("127.0.0.1", handle.port)
        assert client.ping()
        stats = client.stats()
        for key in ("num_nodes", "generation", "draining", "pending",
                    "connections", "cache", "metrics"):
            assert key in stats
        client.close()


class TestRobustness:
    def test_backpressure_rejects_with_overloaded(self, summary):
        config = ServerConfig(batch_window=0.5, max_pending=1)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port, retries=0)
            with pytest.raises(ServerError) as excinfo:
                client.neighbors_many(range(16))
            assert excinfo.value.code == ErrorCode.OVERLOADED
            assert excinfo.value.retryable
            client.close()

    @pytest.mark.slow
    def test_request_timeout_is_typed_error(self, summary):
        config = ServerConfig(batch_window=2.0, request_timeout=0.05)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port, retries=0)
            with pytest.raises(ServerError) as excinfo:
                client.neighbors(0)
            assert excinfo.value.code == ErrorCode.TIMEOUT
            client.close()

    def test_bad_op_gets_bad_request_not_disconnect(self, handle, truth):
        with socket.create_connection(("127.0.0.1", handle.port)) as sock:
            send_frame(sock, {"id": 1, "op": "frobnicate"})
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == ErrorCode.BAD_REQUEST
            # connection survives: a valid request still works
            send_frame(sock, {"id": 2, "op": "degree", "args": {"v": 0}})
            response = recv_frame(sock)
            assert response == {"id": 2, "ok": True,
                                "result": truth.degree(0)}

    def test_garbage_framing_answered_then_closed(self, handle):
        with socket.create_connection(("127.0.0.1", handle.port)) as sock:
            sock.sendall(b"\x00\x00\x00\x05notjs")
            response = recv_frame(sock)
            assert response["error"]["code"] == ErrorCode.BAD_REQUEST
            assert recv_frame(sock) is None   # server hung up

    def test_oversize_frame_rejected(self, summary):
        config = ServerConfig(max_frame_bytes=64)
        with ServerThread(summary, config) as handle:
            with socket.create_connection(
                ("127.0.0.1", handle.port)
            ) as sock:
                sock.sendall(b"\x00\x01\x00\x00")  # 64KiB length prefix
                response = recv_frame(sock)
                assert response["error"]["code"] == ErrorCode.BAD_REQUEST

    def test_client_retries_transport_faults(self, summary):
        # Nothing listening on this port: exhausting retries raises
        # ConnectionError and counts the backoff sleeps taken.
        client = SummaryClient("127.0.0.1", 1, retries=2, backoff=0.001)
        with pytest.raises(ConnectionError):
            client.ping()
        assert client.retries_used == 2

    def test_graceful_shutdown_drains_inflight(self, summary, truth):
        config = ServerConfig(batch_window=0.05, max_batch=8)
        handle = ServerThread(summary, config).start()
        results = {}

        def pipeline():
            client = SummaryClient("127.0.0.1", handle.port)
            results["got"] = client.neighbors_many(range(40))
            client.close()

        thread = threading.Thread(target=pipeline)
        thread.start()
        time.sleep(0.02)          # let requests land in the queue
        handle.stop()             # must drain, not drop
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert results["got"] == [truth.neighbors(v) for v in range(40)]
        # and the listener is really gone
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", handle.port),
                                     timeout=0.5)


class TestHotSwap:
    def test_dynamic_snapshot_swap_serves_updated_graph(self, handle):
        """Stream → snapshot → swap; served answers track the new graph
        on the same connection (satellite: DynamicSummarizer coverage)."""
        ds = DynamicSummarizer(num_nodes=30, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(120):
            u, v = rng.integers(30, size=2)
            if u != v:
                ds.insert(int(u), int(v))
        client = SummaryClient("127.0.0.1", handle.port)
        base_generation = client.stats()["generation"]

        generation = handle.server.swap(ds.snapshot())
        assert generation == base_generation + 1
        truth1 = SummaryIndex(ds.snapshot())
        for v in range(0, 30, 5):
            assert client.neighbors(v) == truth1.neighbors(v)

        # more stream churn, second swap, same connection still live
        for _ in range(80):
            u, v = rng.integers(30, size=2)
            if u != v:
                if rng.random() < 0.3:
                    ds.delete(int(u), int(v))
                else:
                    ds.insert(int(u), int(v))
        handle.server.swap(ds.snapshot_compiled())
        truth2 = SummaryIndex(ds.snapshot())
        for v in range(30):
            assert client.neighbors(v) == truth2.neighbors(v)
            assert client.degree(v) == truth2.degree(v)
        assert client.bfs(0) == truth2.bfs_distances(0)
        assert client.stats()["generation"] == base_generation + 2
        client.close()

    def test_swap_invalidates_cache(self, summary):
        with ServerThread(summary, ServerConfig(batch_window=0.001)) \
                as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            client.neighbors(0)
            client.neighbors(0)
            assert client.stats()["cache"]["hits"] > 0
            handle.server.swap(summary)
            assert client.stats()["cache"]["entries"] == 0
            assert client.stats()["cache"]["generation"] == 1
            client.close()

    def test_reload_forbidden_by_default(self, handle, tmp_path):
        client = SummaryClient("127.0.0.1", handle.port, retries=0)
        with pytest.raises(ServerError) as excinfo:
            client.reload(str(tmp_path / "whatever.ldmeb"))
        assert excinfo.value.code == ErrorCode.FORBIDDEN
        client.close()

    def test_reload_op_hot_swaps_from_file(self, summary, tmp_path):
        from repro.binaryio import write_summary_binary
        from repro.graph.generators import web_host_graph

        graph2 = web_host_graph(num_hosts=3, host_size=9, seed=7)
        summary2 = LDME(k=5, iterations=6, seed=0).summarize(graph2)
        path = tmp_path / "next.ldmeb"
        write_summary_binary(summary2, path)

        config = ServerConfig(batch_window=0.001, allow_reload=True)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            result = client.reload(str(path))
            assert result["generation"] == 1
            assert result["num_nodes"] == summary2.num_nodes
            truth2 = SummaryIndex(summary2)
            assert client.neighbors(0) == truth2.neighbors(0)
            # bad path is a typed bad_request, not a crash
            with pytest.raises(ServerError) as excinfo:
                client.reload(str(tmp_path / "missing.ldmeb"))
            assert excinfo.value.code == ErrorCode.BAD_REQUEST
            client.close()
