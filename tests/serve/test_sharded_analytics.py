"""Sharded scatter-gather analytics ≡ single-node on the stitched summary.

A real 2-shards × 2-replicas cluster serves ``analytics.*`` ops; every
answer is compared against the same estimator run directly on the
stitched global summary. Because the client-side slice merge rebuilds
that summary *exactly* (ownership filtering plus singleton re-derivation
— pinned array-for-array here), even the float-valued estimators must
agree bit-for-bit, not merely within bound. Shard loss follows the
partial-result contract: a typed error (or explicit envelope), never a
silently skewed estimate.
"""

import numpy as np
import pytest

from repro.queries.compiled import CompiledSummaryIndex
from repro.queries.summary_analytics import (
    execute_analytics,
    merge_slices,
    summary_slice,
)
from repro.serve import (
    PartialResult,
    PartialResultError,
    ServerConfig,
    SummaryCluster,
)
from repro.shard import summarize_sharded


@pytest.fixture(scope="module")
def graph():
    from repro.graph.generators import web_host_graph

    return web_host_graph(num_hosts=6, host_size=12, seed=42)


@pytest.fixture(scope="module")
def run(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("manifest") / "current"
    result = summarize_sharded(
        graph, shards=2, k=5, iterations=6, seed=0, out_dir=str(out)
    )
    assert result.report.ok
    return result


@pytest.fixture(scope="module")
def truth(run):
    return CompiledSummaryIndex(run.summary)


@pytest.fixture
def cluster(run):
    with SummaryCluster.from_manifest(
        run.manifest, replicas=2,
        config=ServerConfig(batch_window=0.001, degraded_enabled=True),
    ) as cluster:
        yield cluster


def kill_shard(cluster, sid):
    pos = cluster.shard_ids.index(sid)
    k = cluster.replicas_per_shard
    for i in range(pos * k, pos * k + k):
        cluster.kill(i)


GLOBAL_OPS = (
    "analytics.degree_hist",
    "analytics.pagerank",
    "analytics.triangles",
    "analytics.modularity",
)


class TestSliceMergeIdentity:
    def test_merged_slices_rebuild_the_stitched_summary(
        self, run, truth
    ):
        """The core guarantee, asserted off the wire: merging each
        shard's serving-summary slice under ring ownership yields the
        stitched global summary's compiled arrays exactly."""
        ring = run.manifest.ring
        slices = {
            sid: summary_slice(
                CompiledSummaryIndex(run.manifest.load_shard(sid))
            )
            for sid in run.manifest.shard_ids
        }
        merged = CompiledSummaryIndex(
            merge_slices(slices, ring.shard_of)
        )
        assert np.array_equal(
            merged._member_indptr, truth._member_indptr
        )
        assert np.array_equal(
            merged._member_indices, truth._member_indices
        )
        assert np.array_equal(merged._super_indptr, truth._super_indptr)
        assert np.array_equal(
            merged._super_indices, truth._super_indices
        )
        assert np.array_equal(merged._has_loop, truth._has_loop)
        assert np.array_equal(merged._add_indices, truth._add_indices)
        assert np.array_equal(merged._del_indices, truth._del_indices)


class TestShardedEqualsSingleNode:
    def test_degree_routed_exact(self, cluster, graph, truth):
        client = cluster.client()
        try:
            for v in range(graph.num_nodes):
                answer = client.analytics("degree", {"v": v})
                assert answer["value"] == truth.degree(v)
                assert answer["bound"] == 0.0
        finally:
            client.shutdown()

    @pytest.mark.parametrize("op", GLOBAL_OPS)
    def test_global_ops_equal_stitched_single_node(
        self, cluster, truth, op
    ):
        """Exact equality — including the float estimators — because
        the merged summary is structurally identical to the stitched
        one (the degree/histogram cases are additionally covered by the
        lossless-exactness contract)."""
        client = cluster.client()
        try:
            assert client.analytics(op) == execute_analytics(
                truth, op, {}
            )
        finally:
            client.shutdown()

    def test_pagerank_top_through_the_cluster(self, cluster, truth):
        client = cluster.client()
        try:
            got = client.analytics("pagerank", {"top": 5})
            want = execute_analytics(
                truth, "analytics.pagerank", {"top": 5}
            )
            assert got == want
        finally:
            client.shutdown()

    def test_healthy_cluster_envelope_is_complete(self, cluster, truth):
        client = cluster.client()
        try:
            envelope = client.analytics(
                "triangles", allow_partial=True
            )
            assert isinstance(envelope, PartialResult)
            assert envelope.complete
            assert envelope.failed_shards == []
            assert envelope.value == execute_analytics(
                truth, "analytics.triangles", {}
            )
        finally:
            client.shutdown()


class TestShardLoss:
    def test_global_op_with_dead_shard_is_partial(self, cluster):
        dead = cluster.shard_ids[1]
        kill_shard(cluster, dead)
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            with pytest.raises(PartialResultError) as excinfo:
                client.analytics("pagerank")
            partial = excinfo.value.partial
            assert not partial.complete
            assert partial.failed_shards == [dead]
            # No value: an incomplete summary would skew every
            # estimate, so nothing is synthesized from partial slices.
            assert partial.value is None
            assert client.metrics.counter(
                "cluster_partial_results_total"
            ) == 1
        finally:
            client.shutdown()

    def test_partial_error_is_a_connection_error(self, cluster):
        """Loadgen contract: shard loss is an error, never wrong."""
        kill_shard(cluster, cluster.shard_ids[1])
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            with pytest.raises(ConnectionError):
                client.analytics("modularity")
        finally:
            client.shutdown()

    def test_allow_partial_returns_the_envelope(self, cluster):
        dead = cluster.shard_ids[0]
        kill_shard(cluster, dead)
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            envelope = client.analytics(
                "degree_hist", allow_partial=True
            )
            assert isinstance(envelope, PartialResult)
            assert not envelope.complete
            assert envelope.failed_shards == [dead]
        finally:
            client.shutdown()

    def test_routed_degree_survives_other_shard_loss(
        self, cluster, truth
    ):
        alive, dead = cluster.shard_ids
        kill_shard(cluster, dead)
        ring = cluster.ring
        client = cluster.client(timeout=1.0, breaker_failures=1)
        try:
            for v in range(truth.num_nodes):
                if ring.shard_of(v) == alive:
                    answer = client.analytics("degree", {"v": v})
                    assert answer["value"] == truth.degree(v)
        finally:
            client.shutdown()

    def test_in_shard_failover_hides_a_replica_loss(
        self, cluster, truth
    ):
        sid = cluster.shard_ids[0]
        pos = cluster.shard_ids.index(sid)
        cluster.kill(pos * cluster.replicas_per_shard)
        client = cluster.client(timeout=1.0)
        try:
            assert client.analytics("triangles") == execute_analytics(
                truth, "analytics.triangles", {}
            )
        finally:
            client.shutdown()
