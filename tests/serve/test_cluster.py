"""Integration tests for the replicated serving layer.

Every test runs real servers on ephemeral ports (no mocked transports):
a :class:`SummaryCluster` of ``ServerThread`` replicas queried through
:class:`ClusterClient`. Chaos-at-scale lives in
``test_cluster_chaos.py``; these tests pin each mechanism — failover,
breakers, health checks, hedging, deadline propagation, degraded/stale
serving, rolling swap + rollback — in isolation.
"""

import random
import socket
import threading
import time

import numpy as np
import pytest

from repro.binaryio import write_summary_binary
from repro.core.ldme import LDME
from repro.queries.compiled import CompiledSummaryIndex
from repro.resilience import flip_bit
from repro.serve import (
    BreakerOpenError,
    ClusterClient,
    ServerConfig,
    ServerError,
    ServerThread,
    SummaryClient,
    SummaryCluster,
)
from repro.serve.protocol import ErrorCode, recv_frame, send_frame


@pytest.fixture(scope="module")
def summary():
    from repro.graph.generators import web_host_graph

    graph = web_host_graph(num_hosts=6, host_size=12, seed=42)
    return LDME(k=5, iterations=8, seed=0).summarize(graph)


@pytest.fixture(scope="module")
def truth(summary):
    return CompiledSummaryIndex(summary)


@pytest.fixture
def cluster(summary):
    with SummaryCluster(
        summary,
        replicas=3,
        config=ServerConfig(batch_window=0.001, degraded_enabled=True),
    ) as cluster:
        yield cluster


def expected_neighbors(truth, v):
    return [int(x) for x in
            truth.neighbors_batch(np.asarray([v], dtype=np.int64))[0]]


class SilentServer:
    """Accepts connections, reads forever, never answers — a stalled
    replica for hedging tests."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(10.0)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._conns = []
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._listener.close()
        for conn in self._conns:
            conn.close()
        self._thread.join(timeout=5)

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._conns.append(conn)


class TestClusterBasics:
    def test_all_replicas_answer_and_agree(self, cluster, truth):
        client = cluster.client()
        try:
            for handle_port in [p for _, p in cluster.addresses]:
                direct = SummaryClient("127.0.0.1", handle_port)
                try:
                    assert direct.neighbors(0) == expected_neighbors(
                        truth, 0
                    )
                finally:
                    direct.close()
            assert client.degree(5) == len(expected_neighbors(truth, 5))
            assert client.ping()["pong"] is True
        finally:
            client.shutdown()

    def test_ping_health_fields(self, cluster):
        client = cluster.client()
        try:
            health = client.ping()
            assert health["generation"] == 0
            assert health["queue_depth"] == 0
            assert health["draining"] is False
            assert "degraded" in health and "pending" in health
        finally:
            client.shutdown()

    def test_requires_at_least_one_replica(self, summary):
        with pytest.raises(ValueError):
            SummaryCluster(summary, replicas=0)
        with pytest.raises(ValueError):
            ClusterClient([])

    def test_rng_seeds_the_round_robin_offset(self, cluster):
        """A fleet of fresh clients must not stampede replica 0: the
        starting round-robin offset is drawn from the injectable RNG,
        and over many seeds every replica is somebody's first choice,
        roughly uniformly."""
        import collections

        firsts = collections.Counter()
        for seed in range(60):
            client = ClusterClient(
                cluster.addresses, rng=random.Random(seed)
            )
            firsts[client._ordered()[0]] += 1
            client.shutdown()
        assert sorted(firsts) == [0, 1, 2]   # every replica chosen
        # No replica dominates: with 60 draws over 3 replicas a fair
        # split is 20 each; allow generous slack, forbid stampedes.
        assert max(firsts.values()) <= 40
        # Determinism: the same seed always picks the same offset.
        a = ClusterClient(cluster.addresses, rng=random.Random(7))
        b = ClusterClient(cluster.addresses, rng=random.Random(7))
        try:
            assert a._ordered() == b._ordered()
        finally:
            a.shutdown()
            b.shutdown()

    def test_round_robin_spreads_first_attempts(self, cluster):
        client = cluster.client()
        try:
            for _ in range(6):
                client.degree(0)
            stats_hits = [
                SummaryClient("127.0.0.1", port)
                for _, port in cluster.addresses
            ]
            try:
                served = [
                    s.stats()["metrics"]["counters"].get(
                        "queries_degree_total", 0
                    )
                    for s in stats_hits
                ]
            finally:
                for s in stats_hits:
                    s.close()
            # Every replica saw traffic (cache hits still count queries).
            assert all(count >= 1 for count in served)
        finally:
            client.shutdown()


class TestFailover:
    def test_killed_replica_fails_over_with_zero_wrong_answers(
        self, cluster, truth
    ):
        client = cluster.client(timeout=2.0, breaker_recovery=60.0)
        try:
            cluster.kill(1)
            for v in range(30):
                assert client.neighbors(v) == expected_neighbors(truth, v)
            states = client.breaker_states()
            killed = f"127.0.0.1:{cluster.addresses[1][1]}"
            assert states[killed] == "open"
            assert [s for a, s in states.items() if a != killed] == \
                ["closed", "closed"]
        finally:
            client.shutdown()

    def test_breaker_skips_dead_replica_without_reconnecting(
        self, cluster
    ):
        client = cluster.client(timeout=2.0, breaker_recovery=60.0)
        try:
            cluster.kill(2)
            for _ in range(10):
                client.degree(0)
            dead = f"127.0.0.1:{cluster.addresses[2][1]}"
            failures = client.breakers[2].failures_total
            # Breaker open: later calls never touch the dead replica.
            assert client.breaker_states()[dead] == "open"
            for _ in range(10):
                client.degree(0)
            assert client.breakers[2].failures_total == failures
        finally:
            client.shutdown()

    def test_all_replicas_dead_raises_after_breakers_trip(
        self, summary
    ):
        cluster = SummaryCluster(summary, replicas=2).start()
        client = cluster.client(
            timeout=1.0, breaker_failures=1, breaker_recovery=60.0,
        )
        try:
            cluster.kill(0)
            cluster.kill(1)
            with pytest.raises(ConnectionError):
                client.degree(0)
            with pytest.raises(BreakerOpenError):
                client.degree(0)
        finally:
            client.shutdown()
            cluster.stop()

    def test_restart_and_health_checks_close_the_breaker(
        self, cluster, truth
    ):
        client = cluster.client(timeout=2.0, breaker_recovery=0.2)
        try:
            cluster.kill(0)
            for v in range(10):
                client.neighbors(v)
            addr = f"127.0.0.1:{cluster.addresses[0][1]}"
            assert client.breaker_states()[addr] == "open"
            cluster.restart(0)
            checker = client.start_health_checks(
                interval=0.05, probe_timeout=1.0
            )
            deadline = time.time() + 10
            while time.time() < deadline:
                if client.breaker_states()[addr] == "closed":
                    break
                time.sleep(0.02)
            assert client.breaker_states()[addr] == "closed"
            assert checker.probes_total >= 1
            assert checker.last_health[addr]["pong"] is True
            for v in range(10):
                assert client.neighbors(v) == expected_neighbors(truth, v)
        finally:
            client.shutdown()

    def test_retry_budget_bounds_failover_storms(self, summary):
        from repro.serve.breaker import RetryBudget

        cluster = SummaryCluster(summary, replicas=2).start()
        budget = RetryBudget(ratio=0.0, max_tokens=4.0, initial=2.0)
        client = cluster.client(
            timeout=1.0, retry_budget=budget, breaker_failures=100,
        )
        try:
            cluster.kill(0)
            cluster.kill(1)
            failures = 0
            for _ in range(10):
                try:
                    client.degree(0)
                except ConnectionError:
                    failures += 1
            assert failures == 10
            # ratio=0 means only the 2 initial tokens fund failovers:
            # at most 2 of the 10 requests got a second attempt.
            assert budget.spent_total == 2
            assert budget.denied_total == 8
            assert client.metrics.counter(
                "cluster_retry_budget_exhausted_total"
            ) == 8
        finally:
            client.shutdown()
            cluster.stop()


class TestHedging:
    def test_hedge_fires_on_stalled_primary_and_wins(self, summary,
                                                     truth):
        with ServerThread(summary) as real, SilentServer() as silent:
            # Pin the round-robin offset to 0 so the first attempt is
            # guaranteed to hit the silent primary and the hedge must
            # fire (seed 1 draws offset 0 over two replicas).
            client = ClusterClient(
                [("127.0.0.1", silent.port), ("127.0.0.1", real.port)],
                timeout=30.0,
                hedge_delay=0.05,
                rng=random.Random(1),
            )
            try:
                tic = time.perf_counter()
                result = client.neighbors(0)
                elapsed = time.perf_counter() - tic
                assert result == expected_neighbors(truth, 0)
                # Far faster than the 30s socket timeout on the primary.
                assert elapsed < 5.0
                assert client.metrics.counter(
                    "cluster_hedges_total", labels={"op": "neighbors"}
                ) == 1
            finally:
                client.shutdown()

    def test_fast_primary_never_hedges(self, cluster, truth):
        client = cluster.client(hedge_delay=5.0)
        try:
            for v in range(10):
                assert client.neighbors(v) == expected_neighbors(truth, v)
            assert client.metrics.counter(
                "cluster_hedges_total", labels={"op": "neighbors"}
            ) == 0
        finally:
            client.shutdown()

    def test_control_ops_are_never_hedged(self, cluster):
        client = cluster.client(hedge_delay=0.0)
        try:
            client.ping()
            client.stats()
            assert client.metrics.counter(
                "cluster_hedges_total", labels={"op": "ping"}
            ) == 0
        finally:
            client.shutdown()


class TestDeadlinePropagation:
    def test_expired_deadline_fails_locally_without_a_wire_call(
        self, cluster
    ):
        client = cluster.client()
        try:
            with pytest.raises(ServerError) as excinfo:
                client.call("degree", {"v": 0}, deadline=-1.0)
            assert excinfo.value.code == ErrorCode.DEADLINE_EXCEEDED
            assert client.metrics.counter(
                "cluster_deadline_exceeded_total"
            ) == 1
            # No attempt was ever made: no breaker saw an outcome.
            assert all(
                b.failures_total == 0 and b.successes_total == 0
                for b in client.breakers
            )
        finally:
            client.shutdown()

    def test_queued_past_deadline_rejected_never_executed(self, summary):
        """A request whose deadline expires in the server queue is
        answered ``deadline_exceeded`` at queue-pop and never reaches the
        index — proven by the server's own counters."""
        config = ServerConfig(batch_window=0.3, degraded_enabled=False)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port, retries=0)
            try:
                with pytest.raises(ServerError) as excinfo:
                    # 5ms budget, 300ms batching window: expires queued.
                    client.call("neighbors", {"v": 0}, deadline_ms=5)
                assert excinfo.value.code == ErrorCode.DEADLINE_EXCEEDED
                metrics = handle.server.metrics
                # The batcher discards the expired item when its window
                # fires (after the client already has its error).
                until = time.time() + 5
                while (metrics.counter("deadline_expired_total") < 1
                       and time.time() < until):
                    time.sleep(0.01)
                assert metrics.counter("deadline_expired_total") == 1
                # The query never executed against the index.
                assert metrics.counter("queries_neighbors_total") == 0
                # A successor with no deadline executes normally.
                assert client.neighbors(0) is not None
                assert metrics.counter("queries_neighbors_total") == 1
            finally:
                client.close()

    def test_deadline_exceeded_is_not_retried_and_not_a_breaker_failure(
        self, summary
    ):
        config = ServerConfig(batch_window=0.3)
        with ServerThread(summary, config) as handle:
            client = ClusterClient([("127.0.0.1", handle.port)])
            try:
                with pytest.raises(ServerError):
                    client.degree(0, deadline=0.005)
                # The replica answered (with a typed error): healthy.
                assert client.breakers[0].state == "closed"
                assert client.breakers[0].failures_total == 0
            finally:
                client.shutdown()

    def test_generous_deadline_succeeds_end_to_end(self, cluster, truth):
        client = cluster.client(deadline=30.0)
        try:
            assert client.neighbors(3) == expected_neighbors(truth, 3)
        finally:
            client.shutdown()


class TestLoadShedding:
    def test_best_effort_queries_shed_before_normal_ones(self, summary):
        config = ServerConfig(
            batch_window=0.5, max_pending=2, shed_fraction=0.5,
        )
        with ServerThread(summary, config) as handle:
            with socket.create_connection(
                ("127.0.0.1", handle.port), timeout=10.0
            ) as sock:
                # Request 1 sits in the 0.5s batching window (pending=1,
                # at the shed threshold of 1)...
                send_frame(sock, {"id": 1, "op": "degree",
                                  "args": {"v": 0}})
                time.sleep(0.05)
                # ...so a best-effort request is shed immediately...
                send_frame(sock, {"id": 2, "op": "degree",
                                  "args": {"v": 0}, "priority": 2})
                # ...while a normal-priority one is admitted.
                send_frame(sock, {"id": 3, "op": "degree",
                                  "args": {"v": 0}})
                responses = {}
                while len(responses) < 3:
                    frame = recv_frame(sock)
                    responses[frame["id"]] = frame
            assert responses[1]["ok"]
            assert responses[3]["ok"]
            assert not responses[2]["ok"]
            assert responses[2]["error"]["code"] == ErrorCode.OVERLOADED
            assert handle.server.metrics.counter(
                "shed_total", labels={"priority": 2}
            ) == 1

    def test_critical_priority_never_shed_by_the_shed_threshold(
        self, summary
    ):
        config = ServerConfig(
            batch_window=0.2, max_pending=10, shed_fraction=0.1,
        )
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port, retries=0)
            try:
                # priority 0 sails through even with shed threshold 1.
                assert client.call("degree", {"v": 0}, priority=0) >= 0
            finally:
                client.close()


class TestDegradedMode:
    def test_degraded_replica_serves_stale_flagged_answers(
        self, summary, truth
    ):
        config = ServerConfig(batch_window=0.001, degraded_enabled=True)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            try:
                fresh = client.neighbors(4)       # warm the cache
                handle.server.swap(CompiledSummaryIndex(summary))
                handle.server.set_degraded(True)
                again = client.neighbors(4)
                assert again == fresh == expected_neighbors(truth, 4)
                assert client.stale_served == 1
                assert handle.server.metrics.counter(
                    "stale_served_total"
                ) == 1
                handle.server.set_degraded(False)
                client.neighbors(4)
                assert client.stale_served == 1   # back to live answers
            finally:
                client.close()

    def test_degraded_miss_falls_through_to_live_execution(
        self, summary, truth
    ):
        config = ServerConfig(batch_window=0.001, degraded_enabled=True)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            try:
                handle.server.set_degraded(True)
                # Nothing cached: the query executes against the index.
                assert client.neighbors(7) == expected_neighbors(truth, 7)
                assert client.stale_served == 0
            finally:
                client.close()

    def test_stale_answers_during_rolling_swap_with_drain(
        self, cluster, truth
    ):
        client = cluster.client(timeout=5.0)
        try:
            hot = list(range(8))
            for v in hot:                 # warm every replica's cache
                for _ in range(3):
                    client.neighbors(v)
            stop = threading.Event()
            wrong = []

            def query_during_swap():
                while not stop.is_set():
                    for v in hot:
                        got = client.neighbors(v)
                        if got != expected_neighbors(truth, v):
                            wrong.append((v, got))

            worker = threading.Thread(target=query_during_swap)
            worker.start()
            try:
                report = cluster.rolling_swap(truth, drain_seconds=0.15)
            finally:
                stop.set()
                worker.join(timeout=10)
            assert report.ok
            assert report.generations == [1, 1, 1]
            assert wrong == []
            # Degraded replicas served flagged stale answers mid-swap,
            # and every one of them was still correct.
            assert client.stale_served > 0
        finally:
            client.shutdown()


class TestRollingSwapAndRollback:
    def test_swap_advances_every_generation(self, cluster, truth):
        report = cluster.rolling_swap(truth)
        assert report.ok and not report.rolled_back
        assert report.swapped == [0, 1, 2]
        assert cluster.generations() == [1, 1, 1]

    def test_corrupt_file_rejected_before_any_replica_is_touched(
        self, cluster, summary, truth, tmp_path
    ):
        path = tmp_path / "next.ldmeb"
        write_summary_binary(summary, path)
        flip_bit(path)
        report = cluster.rolling_swap(str(path))
        assert not report.ok
        assert not report.rolled_back          # nothing was ever swapped
        assert "load failed" in report.error
        assert cluster.generations() == [0, 0, 0]
        client = cluster.client()
        try:
            assert client.neighbors(2) == expected_neighbors(truth, 2)
        finally:
            client.shutdown()

    def test_healthy_file_swap_succeeds(self, cluster, summary,
                                        tmp_path):
        path = tmp_path / "next.ldmeb"
        write_summary_binary(summary, path)
        report = cluster.rolling_swap(str(path))
        assert report.ok
        assert cluster.generations() == [1, 1, 1]

    def test_failed_verification_rolls_every_replica_back(
        self, cluster, truth
    ):
        calls = []

        def verify(i, handle):
            calls.append(i)
            return i < 2                   # replica 2 "fails" post-swap

        report = cluster.rolling_swap(truth, verify=verify)
        assert not report.ok
        assert report.rolled_back
        assert calls == [0, 1, 2]
        # Replicas 0 and 1 swapped (gen 1) then rolled back (gen 2);
        # what matters: all replicas serve the same index again and
        # none is left degraded.
        client = cluster.client()
        try:
            for v in range(10):
                assert client.neighbors(v) == expected_neighbors(truth, v)
            assert all(not cluster.handle(i).server.degraded
                       for i in range(3))
        finally:
            client.shutdown()

    def test_explicit_rollback_restores_previous_index(self, cluster,
                                                       truth):
        assert cluster.rolling_swap(truth).ok
        report = cluster.rollback()
        assert report.ok
        client = cluster.client()
        try:
            assert client.neighbors(1) == expected_neighbors(truth, 1)
        finally:
            client.shutdown()

    def test_rollback_without_a_swap_reports_failure(self, cluster):
        report = cluster.rollback()
        assert not report.ok
        assert "nothing to roll back" in report.error

    def test_killed_replica_is_skipped_and_catches_up_on_restart(
        self, cluster, truth
    ):
        cluster.kill(1)
        report = cluster.rolling_swap(truth)
        assert report.ok
        assert report.swapped == [0, 2]
        cluster.restart(1)
        # The restarted replica starts on the swapped index.
        direct = SummaryClient("127.0.0.1", cluster.addresses[1][1])
        try:
            assert direct.neighbors(0) == expected_neighbors(truth, 0)
        finally:
            direct.close()


class TestServerThreadLifecycle:
    def test_stop_returns_definitively_after_kill(self, summary):
        handle = ServerThread(summary).start()
        handle.kill()
        # stop() after kill must return (not hang, not raise).
        handle.stop(timeout=5.0)
        assert not handle._thread.is_alive()

    def test_kill_resets_client_connections(self, summary):
        handle = ServerThread(summary).start()
        client = SummaryClient("127.0.0.1", handle.port, timeout=1.0,
                               retries=0)
        try:
            client.ping()
            handle.kill()
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
        finally:
            client.close()

    def test_metrics_http_port_surfaces_on_the_thread_handle(
        self, summary
    ):
        config = ServerConfig(metrics_port=0)
        with ServerThread(summary, config) as handle:
            assert handle.metrics_http_port > 0

    def test_stop_is_idempotent(self, summary):
        handle = ServerThread(summary).start()
        handle.stop()
        handle.stop()                       # second stop is a no-op
