"""Unit tests for the circuit breaker and retry budget.

Everything runs on a fake monotonic clock — no sleeping, no flakiness;
the breaker's open→half-open transition is driven by advancing a
counter.
"""

import threading

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_GAUGE,
    CircuitBreaker,
    RetryBudget,
    failure_trips_breaker,
)
from repro.serve.protocol import ErrorCode


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, recovery_time=10.0, half_open_max=1,
        clock=clock,
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_open_after_threshold_consecutive_failures(
        self, breaker
    ):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_becomes_half_open_after_recovery_time(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_bounded_probes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()          # the single probe slot
        assert not breaker.allow()      # no second probe

    def test_half_open_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 2
        # ...and it recovers again later.
        clock.advance(11)
        assert breaker.state == HALF_OPEN

    def test_release_returns_an_unused_probe_slot(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.release()               # admitted but never sent
        assert breaker.allow()          # slot is usable again

    def test_release_is_a_noop_when_closed(self, breaker):
        breaker.release()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_snapshot_reports_state_code_for_gauges(self, breaker, clock):
        assert breaker.snapshot()["state_code"] == STATE_GAUGE[CLOSED]
        for _ in range(3):
            breaker.record_failure()
        assert breaker.snapshot()["state_code"] == STATE_GAUGE[OPEN]
        clock.advance(11)
        snap = breaker.snapshot()
        assert snap["state"] == HALF_OPEN
        assert snap["state_code"] == STATE_GAUGE[HALF_OPEN]
        assert snap["failures_total"] == 3

    def test_record_outcome_classifies_codes(self, breaker):
        breaker.record_outcome(ErrorCode.BAD_REQUEST)   # healthy answer
        assert breaker.snapshot()["successes_total"] == 1
        breaker.record_outcome(ErrorCode.OVERLOADED)
        breaker.record_outcome(None)                    # transport fault
        assert breaker.snapshot()["failures_total"] == 2

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"recovery_time": 0},
        {"half_open_max": 0},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

    def test_thread_safety_under_concurrent_outcomes(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        barrier = threading.Barrier(8)

        def pound(seed):
            barrier.wait()
            for i in range(500):
                if (i + seed) % 2:
                    breaker.record_failure()
                else:
                    breaker.record_success()
                breaker.allow()
                breaker.state

        threads = [threading.Thread(target=pound, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = breaker.snapshot()
        assert snap["failures_total"] + snap["successes_total"] == 4000


class TestFailurePredicate:
    def test_transport_fault_always_trips(self):
        assert failure_trips_breaker(None)

    def test_matches_retryable_exactly(self):
        for code in ErrorCode.RETRYABLE:
            assert failure_trips_breaker(code)
        for code in (ErrorCode.BAD_REQUEST, ErrorCode.OUT_OF_RANGE,
                     ErrorCode.FORBIDDEN, ErrorCode.INTERNAL,
                     ErrorCode.DEADLINE_EXCEEDED):
            assert not failure_trips_breaker(code)


class TestRetryBudget:
    def test_initial_balance_covers_early_retries(self):
        budget = RetryBudget(ratio=0.1, initial=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.denied_total == 1
        assert budget.spent_total == 2

    def test_deposits_accrue_fractionally_and_cap(self):
        budget = RetryBudget(ratio=0.5, max_tokens=3.0, initial=0.0)
        assert not budget.try_spend()
        for _ in range(2):
            budget.deposit()
        assert budget.try_spend()       # 2 deposits * 0.5 = 1 token
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == pytest.approx(3.0)

    def test_retries_bounded_by_ratio_of_traffic(self):
        budget = RetryBudget(ratio=0.2, max_tokens=1000.0, initial=0.0)
        spent = 0
        for _ in range(100):
            budget.deposit()
            if budget.try_spend():
                spent += 1
        # 100 first attempts at ratio 0.2 fund at most 20 retries.
        assert spent <= 20

    @pytest.mark.parametrize("kwargs", [
        {"ratio": -0.1},
        {"max_tokens": 0},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryBudget(**kwargs)
