"""Tests for the serving metrics registry."""

import pytest

from repro.serve.metrics import Histogram, MetricsRegistry


class TestHistogram:
    def test_percentiles(self):
        hist = Histogram(capacity=1000)
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == pytest.approx(50, abs=1)
        assert hist.percentile(99) == pytest.approx(99, abs=1)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_empty(self):
        hist = Histogram()
        assert hist.percentile(50) is None
        assert hist.summary() == {"count": 0}

    def test_reservoir_ages_out_old_samples(self):
        hist = Histogram(capacity=10)
        for _ in range(50):
            hist.observe(1000.0)
        for _ in range(10):
            hist.observe(1.0)      # ring wraps; only recent remain
        assert hist.percentile(99) == 1.0
        assert hist.count == 60    # exact count still total

    def test_summary_fields(self):
        hist = Histogram()
        hist.observe(2.0)
        hist.observe(4.0)
        summary = hist.summary()
        assert summary["count"] == 2
        assert summary["mean"] == 3.0
        assert summary["max"] == 4.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Histogram(0)


class TestRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        assert registry.counter("x") == 0
        registry.inc("x")
        registry.inc("x", 4)
        assert registry.counter("x") == 5

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.inc("requests_total", 3)
        registry.set_gauge("queue_depth", 2)
        registry.observe("request_latency_seconds", 0.01)
        snap = registry.snapshot()
        json.dumps(snap)
        assert snap["counters"]["requests_total"] == 3
        assert snap["gauges"]["queue_depth"] == 2
        assert snap["histograms"]["request_latency_seconds"]["count"] == 1
        assert snap["uptime_seconds"] >= 0

    def test_format_line(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 10)
        registry.observe("request_latency_seconds", 0.002)
        registry.observe("batch_size", 4)
        registry.set_gauge("cache_hit_rate", 0.5)
        registry.inc("errors_timeout", 2)
        line = registry.format_line()
        assert "requests=10" in line
        assert "p95" in line
        assert "errors=2" in line
        assert "cache_hit_rate=0.50" in line
