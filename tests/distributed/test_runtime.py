"""Tests for the simulated cluster scheduler."""

import pytest

from repro.distributed.runtime import ClusterSpec, SimulatedCluster


def _cluster(workers, round_overhead=0.0, task_overhead=0.0):
    return SimulatedCluster(
        ClusterSpec(
            num_workers=workers,
            round_overhead=round_overhead,
            task_overhead=task_overhead,
        )
    )


class TestMakespan:
    def test_single_worker_sums(self):
        sim = _cluster(1)
        assert sim.makespan([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_perfect_split(self):
        sim = _cluster(2)
        assert sim.makespan([2.0, 1.0, 1.0]) == pytest.approx(2.0)

    def test_dominant_task_bounds(self):
        sim = _cluster(4)
        assert sim.makespan([10.0, 0.1, 0.1]) == pytest.approx(10.0)

    def test_empty_tasks(self):
        assert _cluster(4).makespan([]) == 0.0

    def test_makespan_at_least_mean_load(self):
        sim = _cluster(3)
        tasks = [0.5, 1.0, 0.25, 0.75, 1.5]
        assert sim.makespan(tasks) >= sum(tasks) / 3

    def test_task_overhead_charged(self):
        sim = _cluster(1, task_overhead=0.5)
        assert sim.makespan([1.0, 1.0]) == pytest.approx(3.0)


class TestAccounting:
    def test_round_accumulates(self):
        sim = _cluster(2, round_overhead=0.1)
        sim.run_round([1.0, 1.0])
        assert sim.rounds == 1
        assert sim.simulated_seconds == pytest.approx(1.1)
        assert sim.serial_seconds == pytest.approx(2.0)

    def test_data_parallel_divides(self):
        sim = _cluster(4, round_overhead=0.0)
        span = sim.run_data_parallel(8.0)
        assert span == pytest.approx(2.0)
        assert sim.serial_seconds == pytest.approx(8.0)

    def test_speedup_property(self):
        sim = _cluster(4)
        sim.run_round([1.0] * 8)
        assert sim.speedup == pytest.approx(4.0)

    def test_speedup_no_rounds(self):
        assert _cluster(3).speedup == 1.0

    def test_negative_serial_rejected(self):
        with pytest.raises(ValueError):
            _cluster(2).run_data_parallel(-1.0)


class TestSpecValidation:
    def test_worker_count_positive(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_workers=0)

    def test_overheads_nonnegative(self):
        with pytest.raises(ValueError):
            ClusterSpec(round_overhead=-0.1)
        with pytest.raises(ValueError):
            ClusterSpec(task_overhead=-0.1)
