"""Tests for distributed execution of summarizers."""

import pytest

from repro.baselines.sweg import SWeG
from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.distributed import ClusterSpec, run_distributed


class TestCorrectness:
    def test_output_lossless(self, small_web):
        run = run_distributed(
            LDME(k=5, iterations=5, seed=0), small_web,
            ClusterSpec(num_workers=4),
        )
        verify_lossless(small_web, run.summarization)

    def test_matches_serial_result(self, small_web):
        # Same seed → same RNG stream → identical partition and objective.
        serial = LDME(k=5, iterations=5, seed=3).summarize(small_web)
        distributed = run_distributed(
            LDME(k=5, iterations=5, seed=3), small_web,
            ClusterSpec(num_workers=8),
        )
        assert distributed.summarization.objective == serial.objective
        assert sorted(distributed.summarization.superedges) == sorted(
            serial.superedges
        )

    def test_sweg_runs_distributed(self, small_web):
        run = run_distributed(
            SWeG(iterations=3, seed=0), small_web, ClusterSpec(num_workers=4)
        )
        verify_lossless(small_web, run.summarization)
        assert run.summarization.algorithm == "SWeG-distributed"


class TestAccounting:
    def test_simulated_time_positive(self, small_web):
        run = run_distributed(
            LDME(k=5, iterations=3, seed=0), small_web,
            ClusterSpec(num_workers=4),
        )
        assert run.simulated_seconds > 0
        assert run.serial_seconds > 0
        assert run.num_workers == 4

    def test_speedup_bounded_by_workers(self, small_web):
        run = run_distributed(
            LDME(k=5, iterations=3, seed=0), small_web,
            ClusterSpec(num_workers=4, round_overhead=0.0, task_overhead=0.0),
        )
        assert 0 < run.speedup <= 4.0 + 1e-6

    def test_zero_overhead_more_speedup(self, small_web):
        lean = run_distributed(
            LDME(k=5, iterations=3, seed=0), small_web,
            ClusterSpec(num_workers=8, round_overhead=0.0, task_overhead=0.0),
        )
        heavy = run_distributed(
            LDME(k=5, iterations=3, seed=0), small_web,
            ClusterSpec(num_workers=8, round_overhead=0.5, task_overhead=0.01),
        )
        assert lean.simulated_seconds < heavy.simulated_seconds

    def test_stats_carry_simulated_times(self, small_web):
        run = run_distributed(
            LDME(k=5, iterations=3, seed=0), small_web,
            ClusterSpec(num_workers=4),
        )
        stats = run.summarization.stats
        assert len(stats.iterations) == 3
        assert stats.total_seconds > 0
