"""Tests for the real multiprocessing parallel LDME."""

import numpy as np
import pytest

from repro.core.partition import SupernodePartition
from repro.core.reconstruct import verify_lossless
from repro.distributed.multiprocess import (
    MultiprocessLDME,
    _fork_available,
    plan_group_merges,
)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


class TestPlanGroupMerges:
    def test_plan_replays_identically(self, star):
        """Applying a plan on the real partition reproduces the snapshot's
        member sets exactly."""
        part = SupernodePartition(6)
        sizes = np.ones(6, dtype=np.int64)
        group_members = {sid: [sid] for sid in (1, 2, 3, 4, 5)}
        plan, scored = plan_group_merges(
            star, part.node2super.copy(), sizes, group_members,
            threshold=0.3, seed=0,
        )
        assert scored > 0
        for a, b in plan:
            part.merge(a, b)
        part.validate()
        assert part.num_supernodes == 6 - len(plan)

    def test_empty_group_no_plan(self, star):
        plan, scored = plan_group_merges(
            star, np.arange(6), np.ones(6, dtype=np.int64), {1: [1]},
            threshold=0.0, seed=0,
        )
        assert plan == []
        assert scored == 0

    def test_snapshot_sizes_respected(self, two_cliques):
        # Out-of-group neighbour sizes come from the snapshot array.
        part = SupernodePartition(8)
        part.merge(4, 5)
        sizes = np.bincount(part.node2super, minlength=8).astype(np.int64)
        plan, _ = plan_group_merges(
            two_cliques, part.node2super.copy(), sizes,
            {0: [0], 1: [1]}, threshold=0.1, seed=0,
        )
        # Whatever the decision, planning must not crash on merged
        # out-of-group neighbours and must only merge in-group ids.
        for a, b in plan:
            assert {a, b} <= {0, 1}


@needs_fork
class TestMultiprocessLDME:
    def test_lossless(self, small_web):
        result = MultiprocessLDME(
            k=5, iterations=4, seed=0, num_workers=2
        ).summarize(small_web)
        verify_lossless(small_web, result)
        result.partition.validate()

    def test_name_carries_worker_count(self, small_web):
        algo = MultiprocessLDME(k=5, iterations=2, seed=0, num_workers=2)
        assert algo.summarize(small_web).algorithm == "LDME5-mp2"

    def test_compression_comparable_to_serial(self, small_web):
        from repro.core.ldme import LDME

        serial = LDME(k=5, iterations=8, seed=0).summarize(small_web)
        parallel = MultiprocessLDME(
            k=5, iterations=8, seed=0, num_workers=2
        ).summarize(small_web)
        # Different merge interleaving, same ballpark quality.
        assert parallel.compression >= serial.compression - 0.15

    def test_single_worker_falls_back_to_serial(self, small_web):
        from repro.core.ldme import LDME

        solo = MultiprocessLDME(k=5, iterations=4, seed=0, num_workers=1)
        serial = LDME(k=5, iterations=4, seed=0)
        assert solo.summarize(small_web).objective == serial.summarize(
            small_web
        ).objective

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            MultiprocessLDME(num_workers=0)
