"""Tests for the SWeG baseline."""

import pytest

from repro.baselines.sweg import SWeG
from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.graph.graph import Graph


class TestEndToEnd:
    def test_lossless(self, small_web):
        result = SWeG(iterations=8, seed=0).summarize(small_web)
        verify_lossless(small_web, result)

    def test_lossless_random(self, random_graph):
        result = SWeG(iterations=5, seed=0).summarize(random_graph)
        verify_lossless(random_graph, result)

    def test_compresses(self, small_web):
        result = SWeG(iterations=15, seed=0).summarize(small_web)
        assert result.compression > 0.2

    def test_algorithm_name(self, small_web):
        assert SWeG(iterations=2, seed=0).summarize(small_web).algorithm == "SWeG"

    def test_deterministic(self, small_web):
        a = SWeG(iterations=4, seed=3).summarize(small_web)
        b = SWeG(iterations=4, seed=3).summarize(small_web)
        assert a.objective == b.objective

    def test_empty_graph(self):
        g = Graph.from_edges(4, [])
        result = SWeG(iterations=2, seed=0).summarize(g)
        assert result.objective == 0


class TestOptions:
    def test_max_group_size_resplit(self, small_web):
        result = SWeG(iterations=6, seed=0, max_group_size=8).summarize(small_web)
        verify_lossless(small_web, result)

    def test_negative_max_group_size_rejected(self):
        with pytest.raises(ValueError):
            SWeG(max_group_size=-1)

    def test_default_encoder_is_per_supernode(self):
        assert SWeG().encoder == "per-supernode"

    def test_sorted_encoder_ablation(self, small_web):
        result = SWeG(iterations=4, seed=0, encoder="sorted").summarize(small_web)
        verify_lossless(small_web, result)


class TestComparativeShape:
    def test_compression_comparable_to_ldme(self, small_web):
        # The paper: LDME5 compression within a few percent of SWeG's.
        sweg = SWeG(iterations=15, seed=0).summarize(small_web)
        ldme = LDME(k=5, iterations=15, seed=0).summarize(small_web)
        assert ldme.compression >= sweg.compression - 0.15

    def test_groups_larger_than_ldme(self, small_web):
        sweg = SWeG(iterations=3, seed=0).summarize(small_web)
        ldme = LDME(k=10, iterations=3, seed=0).summarize(small_web)
        sweg_max = max(it.max_group_size for it in sweg.stats.iterations)
        ldme_max = max(it.max_group_size for it in ldme.stats.iterations)
        assert sweg_max >= ldme_max
