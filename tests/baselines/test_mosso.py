"""Tests for the MoSSo incremental baseline."""

import numpy as np
import pytest

from repro.baselines.mosso import MoSSo, StreamState
from repro.core.reconstruct import verify_lossless
from repro.graph.generators import erdos_renyi, web_host_graph
from repro.graph.graph import Graph


class TestEndToEnd:
    def test_lossless(self, small_web):
        result = MoSSo(seed=0, sample_size=20).summarize(small_web)
        verify_lossless(small_web, result)

    def test_compresses_redundancy(self):
        graph = web_host_graph(num_hosts=8, host_size=20, seed=1)
        result = MoSSo(seed=0, sample_size=30).summarize(graph)
        assert result.compression > 0.1
        assert result.num_supernodes < graph.num_nodes

    def test_empty_graph(self):
        result = MoSSo(seed=0).summarize(Graph.from_edges(3, []))
        assert result.objective == 0

    def test_deterministic(self, small_web):
        a = MoSSo(seed=4, sample_size=10).summarize(small_web)
        b = MoSSo(seed=4, sample_size=10).summarize(small_web)
        assert a.objective == b.objective

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            MoSSo(escape_prob=1.5)
        with pytest.raises(ValueError):
            MoSSo(sample_size=0)


class TestStreamState:
    def test_add_edge_counts(self):
        state = StreamState(4)
        state.add_edge(0, 1)
        assert state.counts[0] == {1: 1}
        assert state.counts[1] == {0: 1}

    def test_internal_edge_after_merge(self):
        state = StreamState(4)
        state.add_edge(0, 1)
        state.merge(0, 1)
        survivor = state.partition.supernode_of(0)
        assert state.counts[survivor] == {survivor: 1}

    def test_merge_folds_rows(self):
        state = StreamState(5)
        state.add_edge(0, 2)
        state.add_edge(1, 2)
        survivor = state.merge(0, 1)
        assert state.counts[survivor][2] == 2
        assert state.counts[2] == {survivor: 2}

    def test_extract_restores_singleton_rows(self):
        state = StreamState(4)
        state.add_edge(0, 1)
        state.add_edge(1, 2)
        survivor = state.merge(0, 1)
        state.extract(1)
        for sid in state.partition.supernode_ids():
            assert state.counts[sid] == state.recompute_counts(sid), sid

    def test_extract_label_owner(self):
        state = StreamState(4)
        state.add_edge(0, 1)
        state.add_edge(0, 2)
        survivor = state.merge(0, 1)
        assert survivor == 0
        state.extract(0)  # 0 owned the label; remainder relabels to 1
        for sid in state.partition.supernode_ids():
            assert state.counts[sid] == state.recompute_counts(sid), sid

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_counts_match_oracle_after_full_run(self, seed):
        graph = erdos_renyi(40, 0.12, seed=seed)
        rng = np.random.default_rng(seed)
        mosso = MoSSo(seed=seed, sample_size=8)
        state = StreamState(graph.num_nodes)
        for u, v in graph.edges():
            mosso.process_insertion(state, u, v, rng)
        state.partition.validate()
        for sid in state.partition.supernode_ids():
            assert state.counts[sid] == state.recompute_counts(sid), sid

    def test_duplicate_insertions_ignored(self):
        state = StreamState(3)
        mosso = MoSSo(seed=0)
        rng = np.random.default_rng(0)
        mosso.process_insertion(state, 0, 1, rng)
        mosso.process_insertion(state, 1, 0, rng)
        mosso.process_insertion(state, 0, 0, rng)
        total = sum(
            sum(row.values()) for row in state.counts.values()
        )
        # One undirected edge: either internal (count 1) or cross (2 rows).
        assert total in (1, 2)


class TestObjectiveDelta:
    def test_twin_merge_positive(self, star):
        # Stream the star fully, then check twin-leaf merge is beneficial.
        state = StreamState(6)
        for u, v in star.edges():
            state.add_edge(u, v)
        mosso = MoSSo(seed=0)
        s1 = state.partition.supernode_of(1)
        s2 = state.partition.supernode_of(2)
        assert mosso.objective_delta(state, s1, s2) > 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_delta_equals_measured_objective_change(self, seed):
        # The absolute delta must equal the change in the total objective
        # measured by really encoding before and after the merge.
        from repro.core.encode import encode_sorted
        from repro.core.summary import Summarization

        def objective(graph, partition):
            result = encode_sorted(graph, partition)
            return Summarization(
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                partition=partition,
                superedges=result.superedges,
                corrections=result.corrections,
            ).objective

        graph = erdos_renyi(15, 0.3, seed=seed)
        rng = np.random.default_rng(seed)
        state = StreamState(graph.num_nodes)
        mosso = MoSSo(seed=seed, sample_size=6)
        for u, v in graph.edges():
            mosso.process_insertion(state, u, v, rng)
        ids = sorted(state.partition.supernode_ids())
        if len(ids) < 2:
            pytest.skip("degenerate partition")
        a, b = ids[0], ids[1]
        claimed = mosso.objective_delta(state, a, b)
        before = objective(graph, state.partition)
        trial = state.partition.copy()
        trial.merge(a, b)
        after = objective(graph, trial)
        assert claimed == pytest.approx(before - after)

    def test_saving_relative_form_available(self, star):
        state = StreamState(6)
        for u, v in star.edges():
            state.add_edge(u, v)
        mosso = MoSSo(seed=0)
        assert mosso.saving(state, 1, 2) == pytest.approx(0.5)


class TestStreamAPI:
    def test_summarize_stream_returns_partition(self, small_web):
        mosso = MoSSo(seed=0, sample_size=10)
        part = mosso.summarize_stream(
            small_web.num_nodes, small_web.edges()
        )
        part.validate()
        assert part.num_supernodes <= small_web.num_nodes


class TestDeletions:
    def test_deletion_removes_edge(self):
        state = StreamState(4)
        mosso = MoSSo(seed=0)
        rng = np.random.default_rng(0)
        mosso.process_insertion(state, 0, 1, rng)
        mosso.process_deletion(state, 0, 1, rng)
        assert 1 not in state.adjacency[0]
        total = sum(sum(row.values()) for row in state.counts.values())
        assert total == 0

    def test_deletion_of_absent_edge_noop(self):
        state = StreamState(3)
        mosso = MoSSo(seed=0)
        rng = np.random.default_rng(0)
        mosso.process_deletion(state, 0, 1, rng)
        state.partition.validate()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fully_dynamic_stream_counts_consistent(self, seed):
        graph = erdos_renyi(30, 0.2, seed=seed)
        rng = np.random.default_rng(seed)
        mosso = MoSSo(seed=seed, sample_size=8)
        state = StreamState(graph.num_nodes)
        edges = list(graph.edges())
        for u, v in edges:
            mosso.process_insertion(state, u, v, rng)
        # Delete a third of the edges, then re-insert some.
        for u, v in edges[::3]:
            mosso.process_deletion(state, u, v, rng)
        for u, v in edges[::6]:
            mosso.process_insertion(state, u, v, rng)
        state.partition.validate()
        for sid in state.partition.supernode_ids():
            assert state.counts[sid] == state.recompute_counts(sid), sid

    def test_deletion_triggers_reorganization(self):
        # After deleting all of a node's edges, the node should be able to
        # escape its supernode in later trials (no crash, valid partition).
        graph = web_host_graph(num_hosts=3, host_size=10, seed=2)
        rng = np.random.default_rng(0)
        mosso = MoSSo(seed=0, escape_prob=1.0, sample_size=5)
        state = StreamState(graph.num_nodes)
        edges = list(graph.edges())
        for u, v in edges:
            mosso.process_insertion(state, u, v, rng)
        for u, v in edges:
            mosso.process_deletion(state, u, v, rng)
        state.partition.validate()
        assert all(len(row) == 0 for row in state.counts.values())
