"""Cross-algorithm comparisons: the orderings the paper's story rests on.

Run every summarizer on the same structured graphs and check the relative
behaviour (not absolute numbers): compression orderings, supernode-count
sanity, and that all outputs describe the *same* graph.
"""

import pytest

from repro.baselines import SAGS, MoSSo, Randomized, SWeG
from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.generators import stochastic_block_model, web_host_graph


@pytest.fixture(scope="module")
def template_graph():
    return web_host_graph(num_hosts=10, host_size=20, seed=31)


@pytest.fixture(scope="module")
def results(template_graph):
    return {
        "LDME5": LDME(k=5, iterations=12, seed=0).summarize(template_graph),
        "LDME20": LDME(k=20, iterations=12, seed=0).summarize(template_graph),
        "SWeG": SWeG(iterations=12, seed=0).summarize(template_graph),
        "MoSSo": MoSSo(seed=0, sample_size=30).summarize(template_graph),
        "SAGS": SAGS(seed=0, rounds=3).summarize(template_graph),
        "Randomized": Randomized(seed=0, max_passes=3).summarize(
            template_graph
        ),
    }


class TestAllLossless:
    def test_every_algorithm_reconstructs(self, template_graph, results):
        for name, summary in results.items():
            assert reconstruct(summary) == template_graph, name


class TestCompressionOrderings:
    def test_ldme5_beats_ldme20(self, results):
        assert results["LDME5"].compression > results["LDME20"].compression

    def test_everyone_compresses_template_structure(self, results):
        for name, summary in results.items():
            assert summary.compression > 0.05, name

    def test_exact_saving_methods_lead(self, results):
        # SWeG/LDME5/Randomized (savings-driven, many rounds) should beat
        # the single-shot LSH baseline SAGS on this redundant graph.
        best_savings = max(
            results[name].compression
            for name in ("LDME5", "SWeG", "Randomized")
        )
        assert best_savings >= results["SAGS"].compression - 0.05


class TestStructuralSanity:
    def test_objectives_consistent_with_compression(self, template_graph,
                                                    results):
        for name, summary in results.items():
            expected = 1 - summary.objective / template_graph.num_edges
            assert summary.compression == pytest.approx(expected), name

    def test_supernode_counts_bounded(self, template_graph, results):
        for name, summary in results.items():
            assert 1 <= summary.num_supernodes <= template_graph.num_nodes

    def test_partitions_valid(self, results):
        for name, summary in results.items():
            summary.partition.validate()


class TestOnCommunityGraph:
    def test_relative_speed_on_sbm(self):
        # The Figure 5(c) core claim at test scale: LDME no slower than
        # SWeG on a dense-community SBM.
        graph = stochastic_block_model(
            [50, 50, 50],
            [[0.4, 0.02, 0.02], [0.02, 0.4, 0.02], [0.02, 0.02, 0.4]],
            seed=1,
        )
        ldme = LDME(k=5, iterations=5, seed=0).summarize(graph)
        sweg = SWeG(iterations=5, seed=0).summarize(graph)
        assert (
            ldme.stats.divide_merge_seconds
            <= sweg.stats.divide_merge_seconds
        )
        assert reconstruct(ldme) == graph
        assert reconstruct(sweg) == graph
