"""Tests for the SAGS (simple-LSH) baseline."""

import pytest

from repro.baselines.sags import SAGS
from repro.core.reconstruct import verify_lossless
from repro.graph.graph import Graph


class TestEndToEnd:
    def test_lossless(self, small_web):
        result = SAGS(seed=0, rounds=2).summarize(small_web)
        verify_lossless(small_web, result)

    def test_merges_identical_neighborhoods(self, star):
        result = SAGS(seed=0, similarity_threshold=0.9).summarize(star)
        assert result.num_supernodes < star.num_nodes
        verify_lossless(star, result)

    def test_empty_graph(self):
        result = SAGS(seed=0).summarize(Graph.from_edges(3, []))
        assert result.objective == 0

    def test_deterministic(self, small_web):
        a = SAGS(seed=2, rounds=2).summarize(small_web)
        b = SAGS(seed=2, rounds=2).summarize(small_web)
        assert a.objective == b.objective


class TestParameters:
    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            SAGS(num_hashes=10, bands=3)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            SAGS(similarity_threshold=1.5)

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            SAGS(rounds=0)

    def test_threshold_one_only_merges_identicals(self, small_web):
        result = SAGS(seed=0, similarity_threshold=1.0, rounds=2).summarize(
            small_web
        )
        # Merged members must have had identical neighbourhood unions.
        verify_lossless(small_web, result)

    def test_high_threshold_fewer_merges(self, small_web):
        loose = SAGS(seed=0, similarity_threshold=0.3, rounds=2).summarize(
            small_web
        )
        strict = SAGS(seed=0, similarity_threshold=0.95, rounds=2).summarize(
            small_web
        )
        assert strict.num_supernodes >= loose.num_supernodes
