"""Tests for the RANDOMIZED (Navlakha) baseline."""

import pytest

from repro.baselines.randomized import Randomized
from repro.core.reconstruct import verify_lossless
from repro.graph.graph import Graph


class TestEndToEnd:
    def test_lossless(self, small_web):
        result = Randomized(seed=0, max_passes=3).summarize(small_web)
        verify_lossless(small_web, result)

    def test_compresses_redundancy(self, star):
        result = Randomized(seed=0).summarize(star)
        # The star's leaves are perfect merge candidates.
        assert result.num_supernodes < star.num_nodes
        verify_lossless(star, result)

    def test_empty_graph(self):
        g = Graph.from_edges(3, [])
        result = Randomized(seed=0).summarize(g)
        assert result.objective == 0

    def test_objective_no_worse_than_identity(self, random_graph):
        result = Randomized(seed=1, max_passes=2).summarize(random_graph)
        assert result.objective <= random_graph.num_edges


class TestTwoHopCandidates:
    def test_candidates_within_two_hops(self, path4):
        algo = Randomized(seed=0)
        from repro.core.partition import SupernodePartition

        part = SupernodePartition(4)
        candidates = algo._two_hop_candidates(path4, part, 0)
        assert candidates == {1, 2}  # node 3 is 3 hops away

    def test_candidates_exclude_self(self, triangle):
        from repro.core.partition import SupernodePartition

        algo = Randomized(seed=0)
        part = SupernodePartition(3)
        assert 0 not in algo._two_hop_candidates(triangle, part, 0)


class TestParameters:
    def test_threshold_blocks_all(self, small_web):
        result = Randomized(threshold=1.0, seed=0).summarize(small_web)
        assert result.num_supernodes == small_web.num_nodes

    def test_max_passes_validated(self):
        with pytest.raises(ValueError):
            Randomized(max_passes=0)

    def test_deterministic(self, small_web):
        a = Randomized(seed=5, max_passes=2).summarize(small_web)
        b = Randomized(seed=5, max_passes=2).summarize(small_web)
        assert a.objective == b.objective
