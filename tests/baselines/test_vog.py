"""Tests for the VoG MDL baseline."""

import math

import pytest

from repro.baselines.vog import VoG, _log2_binom, _log2_star
from repro.graph.generators import stochastic_block_model, web_host_graph
from repro.graph.graph import Graph


class TestCodeLengths:
    def test_log2_star_monotone(self):
        values = [_log2_star(n) for n in (1, 2, 10, 100, 10_000)]
        assert values == sorted(values)

    def test_log2_star_small(self):
        assert _log2_star(0) == 0.0
        assert _log2_star(1) > 0.0

    def test_log2_binom_exact_small(self):
        assert _log2_binom(5, 2) == pytest.approx(math.log2(10))

    def test_log2_binom_edges(self):
        assert _log2_binom(5, 0) == 0.0
        assert _log2_binom(5, 5) == 0.0
        assert _log2_binom(5, 6) == 0.0  # out of range → free


class TestStructureIdentification:
    def test_clique_labelled_fc(self):
        # K6 embedded among leaves: the clique candidate should label "fc".
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
        g = Graph.from_edges(6, edges)
        vog = VoG(seed=0, min_size=3)
        structure = vog._best_structure(g, list(range(6)))
        assert structure is not None
        assert structure.kind == "fc"

    def test_star_labelled_st(self, star):
        vog = VoG(seed=0)
        structure = vog._best_structure(star, list(range(6)))
        assert structure is not None
        assert structure.kind == "st"
        assert structure.nodes[0] == 0  # hub first

    def test_bipartite_core_recognized(self, bipartite_block):
        vog = VoG(seed=0)
        structure = vog._best_structure(bipartite_block, list(range(6)))
        assert structure is not None
        assert structure.kind in ("bc", "st")  # K3,3 compresses as a core

    def test_empty_candidate_rejected(self):
        g = Graph.from_edges(4, [(0, 1)])
        vog = VoG(seed=0)
        assert vog._best_structure(g, [2, 3]) is None


class TestSummarize:
    def test_selects_structures_on_community_graph(self):
        graph = stochastic_block_model(
            [20, 20, 20],
            [[0.6, 0.02, 0.02], [0.02, 0.6, 0.02], [0.02, 0.02, 0.6]],
            seed=0,
        )
        summary = VoG(seed=0).summarize(graph)
        assert summary.structures
        assert summary.total_bits < summary.baseline_bits
        assert summary.bit_savings > 0

    def test_web_graph_summary(self):
        graph = web_host_graph(num_hosts=5, host_size=12, seed=0)
        summary = VoG(seed=0).summarize(graph)
        assert summary.num_edges == graph.num_edges
        assert summary.seconds >= 0

    def test_empty_graph(self):
        summary = VoG(seed=0).summarize(Graph.from_edges(4, []))
        assert summary.structures == []
        assert summary.total_bits == 0.0

    def test_max_candidates_respected(self):
        graph = web_host_graph(num_hosts=6, host_size=12, seed=0)
        vog = VoG(seed=0, max_candidates=5)
        assert len(vog._candidates(graph)) <= 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            VoG(min_size=1)
        with pytest.raises(ValueError):
            VoG(min_size=5, max_size=4)


class TestLabelPropagation:
    def test_communities_partition_nodes(self, small_web):
        vog = VoG(seed=0)
        communities = vog._label_propagation(small_web)
        nodes = sorted(v for comm in communities for v in comm)
        assert nodes == list(range(small_web.num_nodes))

    def test_disconnected_blocks_not_mixed(self):
        g = Graph.from_edges(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        communities = VoG(seed=0)._label_propagation(g)
        for comm in communities:
            blocks = {v // 3 for v in comm}
            assert len(blocks) == 1


class TestSlashBurnCandidates:
    def test_slashburn_source_runs(self):
        graph = web_host_graph(num_hosts=5, host_size=12, seed=0)
        summary = VoG(seed=0, candidate_source="slashburn").summarize(graph)
        assert summary.num_edges == graph.num_edges

    def test_unknown_source_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            VoG(candidate_source="bogus")

    def test_sources_produce_different_pools(self):
        graph = web_host_graph(num_hosts=5, host_size=12, seed=0)
        lp = VoG(seed=0)._candidates(graph)
        sb = VoG(seed=0, candidate_source="slashburn")._candidates(graph)
        assert lp != sb
