"""Property tests for the consistent-hash ring (satellite of the
sharding subsystem).

The two guarantees every consumer relies on, checked over arbitrary
shard sets and universes with hypothesis:

1. **balance** — with enough virtual nodes the max/min shard load stays
   within a small factor, so no shard's LDME run dominates wall-time;
2. **minimal remapping** — adding (removing) a shard only moves keys
   into (out of) that shard; keys never shuffle between two surviving
   shards, which is what makes re-sharding incremental.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.shard import HashRing
from repro.shard.hashring import splitmix64

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestConstruction:
    def test_int_shorthand_is_range(self):
        assert HashRing(4).shards == [0, 1, 2, 3]

    def test_explicit_ids_sorted_and_checked(self):
        assert HashRing([5, 1, 3]).shards == [1, 3, 5]
        with pytest.raises(ValueError):
            HashRing([1, 1])
        with pytest.raises(ValueError):
            HashRing([-1, 0])
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, virtual_nodes=0)

    def test_equality_and_roundtrip(self):
        ring = HashRing([0, 2, 7], virtual_nodes=32, seed=9)
        clone = HashRing.from_dict(ring.to_dict())
        assert clone == ring
        assert clone.to_dict() == ring.to_dict()
        assert ring != HashRing([0, 2, 7], virtual_nodes=32, seed=10)
        assert ring != HashRing([0, 2, 7], virtual_nodes=16, seed=9)

    def test_membership_changes_validate(self):
        ring = HashRing(2)
        with pytest.raises(ValueError):
            ring.add_shard(1)          # already present
        with pytest.raises(ValueError):
            ring.add_shard(-3)
        with pytest.raises(ValueError):
            ring.remove_shard(7)       # never present
        ring.remove_shard(1)
        with pytest.raises(ValueError):
            ring.remove_shard(0)       # cannot empty the ring


class TestAssignment:
    def test_deterministic_across_instances(self):
        a = HashRing(4, seed=3).assign_range(500)
        b = HashRing(4, seed=3).assign_range(500)
        np.testing.assert_array_equal(a, b)

    def test_scalar_and_vector_agree(self):
        ring = HashRing(5, seed=1)
        vector = ring.assign_range(64)
        for v in range(64):
            assert ring.shard_of(v) == int(vector[v])

    def test_assignment_lands_on_ring_members(self):
        ring = HashRing([2, 4, 9], seed=5)
        owners = set(ring.assign_range(1000).tolist())
        assert owners <= {2, 4, 9}

    def test_load_counts_sum_to_universe(self):
        ring = HashRing(3, seed=0)
        counts = ring.load_counts(777)
        assert sorted(counts) == [0, 1, 2]
        assert sum(counts.values()) == 777

    def test_splitmix64_matches_reference(self):
        # Reference value of splitmix64(seed=0) first output, as
        # published for the Steele/Lea/Flood generator.
        assert int(splitmix64(0)) == 0xE220A8397B1DCDAF


class TestBalanceProperty:
    @given(
        num_shards=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @SETTINGS
    def test_virtual_nodes_bound_the_load_ratio(self, num_shards, seed):
        """With 128 vnodes no shard exceeds 4x its fair share, and none
        is starved below a quarter of it (a loose but load-bearing bound:
        per-shard summarize wall-time stays the same order)."""
        ring = HashRing(num_shards, virtual_nodes=128, seed=seed)
        num_keys = 20_000
        counts = ring.load_counts(num_keys)
        fair = num_keys / num_shards
        assert max(counts.values()) <= 4.0 * fair
        assert min(counts.values()) >= fair / 4.0

    def test_more_virtual_nodes_tighten_balance(self):
        """Averaged over seeds, the max/min spread shrinks as vnodes
        grow — the reason virtual nodes exist."""
        def mean_spread(vnodes):
            spreads = []
            for seed in range(8):
                counts = HashRing(
                    8, virtual_nodes=vnodes, seed=seed
                ).load_counts(20_000)
                spreads.append(max(counts.values()) /
                               max(1, min(counts.values())))
            return float(np.mean(spreads))

        assert mean_spread(256) < mean_spread(4)


class TestMinimalRemappingProperty:
    @given(
        shard_ids=st.sets(
            st.integers(min_value=0, max_value=40),
            min_size=2, max_size=8,
        ),
        new_shard=st.integers(min_value=41, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @SETTINGS
    def test_add_shard_only_moves_keys_into_it(self, shard_ids,
                                               new_shard, seed):
        ring = HashRing(shard_ids, virtual_nodes=32, seed=seed)
        before = ring.assign_range(5000)
        ring.add_shard(new_shard)
        after = ring.assign_range(5000)
        moved = before != after
        # Every moved key moved *to* the new shard; nothing shuffled
        # between survivors.
        assert np.all(after[moved] == new_shard)
        # Consequently every key of a surviving shard either stayed or
        # left for the new shard — survivors never gain keys.
        for sid in shard_ids:
            gained = (after == sid) & (before != sid)
            assert not np.any(gained)

    @given(
        shard_ids=st.sets(
            st.integers(min_value=0, max_value=40),
            min_size=2, max_size=8,
        ),
        victim_pos=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @SETTINGS
    def test_remove_shard_only_moves_its_own_keys(self, shard_ids,
                                                  victim_pos, seed):
        ids = sorted(shard_ids)
        victim = ids[victim_pos % len(ids)]
        ring = HashRing(ids, virtual_nodes=32, seed=seed)
        before = ring.assign_range(5000)
        ring.remove_shard(victim)
        after = ring.assign_range(5000)
        moved = before != after
        # Only the victim's keys moved, and none remain assigned to it.
        assert np.all(before[moved] == victim)
        assert not np.any(after == victim)

    def test_add_then_remove_restores_assignment(self):
        ring = HashRing(4, seed=7)
        before = ring.assign_range(2000)
        ring.add_shard(9)
        ring.remove_shard(9)
        np.testing.assert_array_equal(before, ring.assign_range(2000))
