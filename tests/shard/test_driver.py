"""End-to-end sharded summarization through the one-call driver."""

import os

import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.generators import web_host_graph
from repro.serve import SummaryCluster
from repro.shard import HashRing, load_manifest, summarize_sharded


@pytest.fixture(scope="module")
def graph():
    return web_host_graph(num_hosts=5, host_size=8, seed=9)


class TestSummarizeSharded:
    def test_four_shard_run_is_lossless(self, graph):
        result = summarize_sharded(
            graph, shards=4, k=5, iterations=6, seed=0
        )
        assert result.report.ok, result.report.problems
        assert sorted(result.summaries) == [0, 1, 2, 3]
        assert result.summary.algorithm == "ldme-sharded-4"
        rebuilt = reconstruct(result.summary)
        assert rebuilt.num_edges == graph.num_edges

    def test_accepts_prebuilt_ring(self, graph):
        ring = HashRing([0, 2, 5], seed=3)
        result = summarize_sharded(
            graph, shards=ring, k=4, iterations=4
        )
        assert sorted(result.summaries) == [0, 2, 5]
        assert result.sharded.ring is ring

    def test_algo_factory_override_and_per_shard_seeds(self, graph):
        seen = []

        def factory(shard_id):
            seen.append(shard_id)
            return LDME(k=4, iterations=3, seed=100 + shard_id)

        result = summarize_sharded(
            graph, shards=2, algo_factory=factory
        )
        assert seen == [0, 1]
        assert result.report.ok

    def test_checkpoint_dir_gets_per_shard_subdirs(self, graph,
                                                   tmp_path):
        ckpt = tmp_path / "ckpt"
        result = summarize_sharded(
            graph, shards=2, k=4, iterations=4,
            checkpoint_dir=str(ckpt),
        )
        assert result.report.ok
        assert sorted(os.listdir(ckpt)) == ["shard-0", "shard-1"]

    def test_out_dir_persists_a_loadable_manifest(self, graph,
                                                  tmp_path):
        out = tmp_path / "out"
        result = summarize_sharded(
            graph, shards=3, k=4, iterations=4, out_dir=str(out)
        )
        assert result.manifest is not None
        manifest = load_manifest(str(out))
        assert manifest.shard_ids == [0, 1, 2]
        assert manifest.ring == result.sharded.ring
        assert manifest.load_global().num_edges == graph.num_edges

    def test_manifest_boots_a_serving_cluster(self, graph, tmp_path):
        out = tmp_path / "serving"
        summarize_sharded(
            graph, shards=2, k=4, iterations=4, out_dir=str(out)
        )
        with SummaryCluster.from_manifest(str(out), replicas=1) \
                as cluster:
            assert cluster.num_shards == 2
            assert cluster.num_replicas == 2
            client = cluster.client()
            try:
                for v in range(0, graph.num_nodes, 5):
                    got = client.degree(v)
                    want = int(graph.indptr[v + 1] - graph.indptr[v])
                    assert got == want
            finally:
                client.shutdown()
