"""The stitcher's two contracts: lossless global summary, exact
per-shard serving summaries.

``shard_serving_summary``'s parity guarantee — a shard answers
single-node queries about *its own* nodes identically to the full
stitched index — is pinned here; hash-ring routing in the cluster
client depends on it.
"""

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.core.validate import check_summary
from repro.graph.generators import web_host_graph
from repro.queries.compiled import CompiledSummaryIndex
from repro.shard import (
    HashRing,
    partition_graph,
    shard_serving_summary,
    stitch_shards,
)


@pytest.fixture(scope="module")
def graph():
    return web_host_graph(num_hosts=6, host_size=10, seed=11)


@pytest.fixture(scope="module")
def sharded(graph):
    return partition_graph(graph, HashRing(4, seed=0))


@pytest.fixture(scope="module")
def summaries(sharded):
    return {
        shard.shard_id: LDME(k=5, iterations=6,
                             seed=shard.shard_id).summarize(
            shard.local_graph
        )
        for shard in sharded.shards
    }


@pytest.fixture(scope="module")
def report(graph, sharded, summaries):
    return stitch_shards(sharded, summaries, graph=graph)


class TestStitching:
    def test_stitched_summary_is_lossless(self, report, graph):
        assert report.ok, report.problems
        rebuilt = reconstruct(report.summary)
        assert rebuilt.num_edges == graph.num_edges
        np.testing.assert_array_equal(rebuilt.indptr, graph.indptr)
        np.testing.assert_array_equal(rebuilt.indices, graph.indices)

    def test_accounting_covers_every_cut_edge(self, report, sharded):
        assert report.num_cut_edges == sharded.num_cut_edges
        assert report.num_shards == sharded.num_shards
        # Cross structure only exists when there are cut edges; with the
        # web-host graph at K=4 there always are some.
        assert report.num_cut_edges > 0
        assert (report.cross_superedges + report.cross_additions) > 0

    def test_algorithm_records_shard_count(self, report):
        assert report.summary.algorithm == "ldme-sharded-4"

    def test_cross_superedges_join_distinct_shards(self, report, sharded):
        """Intra-shard structure comes from the shard runs; everything
        the stitcher adds joins supernodes of two different shards."""
        stitched = report.summary
        assignment = sharded.assignment
        node2super = stitched.partition.node2super
        cross = [
            (a, b) for a, b in stitched.superedges
            if assignment[a] != assignment[b]
        ]
        assert len(cross) == report.cross_superedges
        for a, b in cross:
            # Cross superedges join supernode representatives whose
            # shards differ, and both ids really are supernode reps.
            assert int(node2super[a]) == a
            assert int(node2super[b]) == b

    def test_missing_shard_summary_raises(self, sharded, summaries):
        partial = dict(summaries)
        partial.pop(sharded.shards[0].shard_id)
        with pytest.raises(ValueError, match="missing summaries"):
            stitch_shards(sharded, partial)

    def test_wrong_sized_summary_raises(self, sharded, summaries):
        bad = dict(summaries)
        donor_id = sharded.shards[0].shard_id
        other_id = sharded.shards[1].shard_id
        bad[donor_id] = summaries[other_id]
        with pytest.raises(ValueError, match="covers"):
            stitch_shards(sharded, bad)

    def test_validate_false_skips_checks(self, sharded, summaries):
        report = stitch_shards(sharded, summaries, validate=False)
        assert report.problems == []
        assert check_summary(report.summary) == []

    def test_single_shard_stitch_equals_the_shard_run(self, graph):
        sharded = partition_graph(graph, HashRing(1))
        summary = LDME(k=5, iterations=6, seed=0).summarize(
            sharded.shards[0].local_graph
        )
        report = stitch_shards(sharded, {sharded.shards[0].shard_id:
                                         summary}, graph=graph)
        assert report.ok
        assert report.cross_superedges == 0
        assert report.cross_additions == 0
        assert report.cross_deletions == 0


class TestServingParity:
    def test_owned_node_queries_match_the_global_index(
        self, graph, sharded, report
    ):
        """The load-bearing guarantee: for every node, the owning
        shard's serving summary answers neighbors / degree / has_edge
        exactly like the full stitched index."""
        global_index = CompiledSummaryIndex(report.summary)
        assignment = sharded.assignment
        for shard in sharded.shards:
            serving = shard_serving_summary(
                report.summary, sharded, shard.shard_id
            )
            assert check_summary(serving) == []
            index = CompiledSummaryIndex(serving)
            for v in shard.global_ids.tolist():
                assert index.neighbors(v) == global_index.neighbors(v)
                assert index.degree(v) == global_index.degree(v)
            # has_edge routed by u: spot-check edges and non-edges.
            for v in shard.global_ids[:5].tolist():
                for u in range(0, graph.num_nodes, 7):
                    if int(assignment[v]) == shard.shard_id:
                        assert index.has_edge(v, u) == \
                            global_index.has_edge(v, u)

    def test_serving_summary_is_smaller_than_global(self, report,
                                                    sharded):
        total_super = len(report.summary.superedges)
        for shard in sharded.shards:
            serving = shard_serving_summary(
                report.summary, sharded, shard.shard_id
            )
            assert len(serving.superedges) <= total_super
            assert serving.num_nodes == report.summary.num_nodes

    def test_unknown_shard_raises(self, report, sharded):
        with pytest.raises(KeyError):
            shard_serving_summary(report.summary, sharded, 99)
