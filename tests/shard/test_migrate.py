"""Elastic re-sharding: planner properties, journal durability, and
crash-safe coordinator resume/rollback (``repro.shard.migrate``).

The planner's contract is checked against brute force with hypothesis:
the remap set is exactly the per-key diff of the two rings' assignments,
and an add-then-remove round trip plans nothing. The coordinator is
killed at every journal step and must either resume forward to a
committed generation or roll back all-or-nothing; a corrupted staged
artifact must trigger the rollback path, never a cutover.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CorruptSummaryError
from repro.graph.generators import web_host_graph
from repro.graph.graph import Graph
from repro.obs.metrics import MetricsRegistry
from repro.resilience import MigrationFault, MigrationFaultPlan
from repro.shard import (
    GenerationStore,
    HashRing,
    MigrationCoordinator,
    MigrationJournal,
    plan_migration,
)
from repro.shard.migrate import JOURNAL_STEPS, CoordinatorKilledError

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# planner properties
# ----------------------------------------------------------------------
class TestPlanProperties:
    @SETTINGS
    @given(
        old_shards=st.integers(min_value=1, max_value=6),
        new_shards=st.integers(min_value=1, max_value=6),
        virtual_nodes=st.integers(min_value=1, max_value=8),
        num_nodes=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_remap_set_matches_bruteforce(
        self, old_shards, new_shards, virtual_nodes, num_nodes, seed
    ):
        old = HashRing(old_shards, virtual_nodes=virtual_nodes, seed=seed)
        new = HashRing(new_shards, virtual_nodes=virtual_nodes, seed=seed)
        plan = plan_migration(old, new, num_nodes)

        moved = {
            key for key in range(num_nodes)
            if old.shard_of(key) != new.shard_of(key)
        }
        assert set(plan.remapped.tolist()) == moved

        donors = {old.shard_of(k) for k in moved}
        receivers = {new.shard_of(k) for k in moved}
        expect_rebuild = sorted((donors | receivers) & set(new.shards))
        assert plan.rebuild_shards == expect_rebuild
        assert sorted(plan.rebuild_shards + plan.reused_shards) == new.shards
        assert plan.num_remapped == len(moved)

    @SETTINGS
    @given(
        shards=st.integers(min_value=1, max_value=6),
        virtual_nodes=st.integers(min_value=1, max_value=8),
        num_nodes=st.integers(min_value=0, max_value=300),
        extra=st.integers(min_value=100, max_value=104),
    )
    def test_add_then_remove_round_trip_is_empty(
        self, shards, virtual_nodes, num_nodes, extra
    ):
        base = HashRing(shards, virtual_nodes=virtual_nodes)
        ring = HashRing(base.shards, virtual_nodes=virtual_nodes)
        ring.add_shard(extra)
        ring.remove_shard(extra)
        plan = plan_migration(base, ring, num_nodes)
        assert plan.is_empty
        assert plan.num_remapped == 0
        assert plan.rebuild_shards == []
        assert plan.reused_shards == base.shards

    def test_same_ring_plans_nothing(self):
        ring = HashRing(3, virtual_nodes=4)
        plan = plan_migration(ring, ring, 1000)
        assert plan.is_empty and plan.fraction_remapped == 0.0

    def test_graph_partition_counts_affected_cut_edges(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        old = HashRing(2, virtual_nodes=1)
        new = HashRing(3, virtual_nodes=1)
        plan = plan_migration(old, new, graph)
        moved = set(plan.remapped.tolist())
        expect = sum(
            1 for u, v in graph.edges() if u in moved or v in moved
        )
        assert plan.affected_cut_edges == expect

    def test_single_virtual_node_expansion_is_minimal(self):
        # The acceptance-criterion property: with one ring point per
        # shard, adding a shard splits exactly one arc, so a 2 -> 3
        # expansion rebuilds strictly fewer shards than from scratch.
        old = HashRing(2, virtual_nodes=1)
        new = HashRing(3, virtual_nodes=1)
        plan = plan_migration(old, new, 10_000)
        assert len(plan.rebuild_shards) < len(new.shards)
        assert plan.reused_shards


# ----------------------------------------------------------------------
# journal durability
# ----------------------------------------------------------------------
class TestJournal:
    def _journal(self):
        return MigrationJournal(
            step="build",
            old_generation="gen-000000",
            new_generation="gen-000001",
            old_ring=HashRing(2, virtual_nodes=1).to_dict(),
            new_ring=HashRing(3, virtual_nodes=1).to_dict(),
            num_remapped=7,
            rebuild_shards=[1, 2],
            reused_shards=[0],
        )

    def test_round_trip(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        journal = self._journal()
        store.write_journal(journal)
        back = store.read_journal()
        assert back == journal
        assert back.active

    def test_missing_journal_reads_none(self, tmp_path):
        assert GenerationStore(tmp_path / "store").read_journal() is None

    def test_crc_mismatch_rejected(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        store.write_journal(self._journal())
        with open(store.journal_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        doc["journal"]["step"] = "commit"   # tampered payload, stale CRC
        with open(store.journal_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        with pytest.raises(CorruptSummaryError):
            store.read_journal()

    def test_missing_crc_envelope_rejected(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        with open(store.journal_path, "w", encoding="utf-8") as fh:
            json.dump({"journal": self._journal().to_dict()}, fh)
        with pytest.raises(CorruptSummaryError):
            store.read_journal()


# ----------------------------------------------------------------------
# generation store
# ----------------------------------------------------------------------
class TestGenerationStore:
    def test_bootstrap_and_current(self, tmp_path):
        graph = web_host_graph(num_hosts=3, host_size=8, seed=1)
        store = GenerationStore(tmp_path / "store")
        manifest = store.bootstrap(graph, shards=2, iterations=4)
        assert store.current() == "gen-000000"
        assert manifest.ring == HashRing(2, virtual_nodes=1)
        assert manifest.has_locals
        with pytest.raises(RuntimeError):
            store.bootstrap(graph, shards=2, iterations=4)

    def test_refuses_to_remove_serving_generation(self, tmp_path):
        graph = web_host_graph(num_hosts=2, host_size=6, seed=1)
        store = GenerationStore(tmp_path / "store")
        store.bootstrap(graph, shards=2, iterations=3)
        with pytest.raises(ValueError):
            store.remove_generation("gen-000000")

    def test_set_current_requires_manifest(self, tmp_path):
        store = GenerationStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.set_current("gen-000042")


# ----------------------------------------------------------------------
# coordinator: crash safety
# ----------------------------------------------------------------------
@pytest.fixture()
def graph():
    return web_host_graph(num_hosts=4, host_size=10, seed=7)


@pytest.fixture()
def store(tmp_path, graph):
    store = GenerationStore(tmp_path / "store")
    store.bootstrap(graph, shards=2, iterations=4, seed=0)
    return store


def _coordinator(store, **kwargs):
    kwargs.setdefault("iterations", 4)
    kwargs.setdefault("registry", MetricsRegistry())
    return MigrationCoordinator(store, **kwargs)


class TestCoordinator:
    def test_expand_commits_and_reuses_untouched_shards(self, store, graph):
        report = _coordinator(store).migrate(
            HashRing(3, virtual_nodes=1), graph
        )
        assert report.committed and not report.rolled_back
        assert store.current() == "gen-000001"
        # Strictly fewer artifacts rebuilt than a from-scratch run.
        assert len(report.resummarized_shards) < 3
        assert report.reused_shards
        manifest = store.current_manifest()
        assert manifest.ring == HashRing(3, virtual_nodes=1)
        journal = store.read_journal()
        assert journal.step == "done" and not journal.active

    def test_shrink_commits(self, store, graph):
        coordinator = _coordinator(store)
        report = coordinator.migrate(HashRing(3, virtual_nodes=1), graph)
        assert report.committed
        report = coordinator.migrate(HashRing(2, virtual_nodes=1), graph)
        assert report.committed
        assert store.current_manifest().ring == HashRing(2, virtual_nodes=1)

    def test_noop_migration_short_circuits(self, store, graph):
        report = _coordinator(store).migrate(
            HashRing(2, virtual_nodes=1), graph
        )
        assert report.committed and report.plan.is_empty
        assert store.current() == "gen-000000"
        assert store.read_journal() is None

    def test_migrate_refuses_concurrent_migration(self, store, graph):
        with pytest.raises(CoordinatorKilledError):
            _coordinator(
                store,
                on_step=MigrationFaultPlan(
                    [MigrationFault(step="build")]
                ).on_step,
            ).migrate(HashRing(3, virtual_nodes=1), graph)
        with pytest.raises(RuntimeError, match="already in progress"):
            _coordinator(store).migrate(HashRing(3, virtual_nodes=1), graph)

    @pytest.mark.parametrize("step", JOURNAL_STEPS)
    def test_kill_at_every_step_then_resume_commits(
        self, tmp_path, graph, step
    ):
        store = GenerationStore(tmp_path / f"store-{step}")
        store.bootstrap(graph, shards=2, iterations=4, seed=0)
        plan = MigrationFaultPlan([MigrationFault(step=step)])
        with pytest.raises(CoordinatorKilledError):
            _coordinator(store, on_step=plan.on_step).migrate(
                HashRing(3, virtual_nodes=1), graph
            )
        assert plan.exhausted
        journal = store.read_journal()
        assert journal.step == step

        # A fresh coordinator (new process, same journal) finishes it.
        report = _coordinator(store).resume(graph)
        assert report.committed and not report.rolled_back
        assert store.current() == "gen-000001"
        assert store.read_journal().step == "done"
        store.current_manifest(verify=True)   # artifacts intact

    def test_resume_verifies_artifacts_and_rebuilds_torn_ones(
        self, store, graph
    ):
        with pytest.raises(CoordinatorKilledError):
            _coordinator(
                store,
                on_step=MigrationFaultPlan(
                    [MigrationFault(step="built")]
                ).on_step,
            ).migrate(HashRing(3, virtual_nodes=1), graph)
        # Damage one freshly built artifact; resume must notice via the
        # CRC check, fall back to "build", and still commit.
        from repro.resilience import flip_bit
        from repro.resilience.faults import _corruption_target

        flip_bit(_corruption_target(store.path("gen-000001")))
        report = _coordinator(store).resume(graph)
        assert report.committed
        store.current_manifest(verify=True)

    def test_corrupt_staged_artifact_rolls_back(self, store, graph):
        registry = MetricsRegistry()
        plan = MigrationFaultPlan([
            MigrationFault(
                step="prepare",
                action="corrupt",
                path=store.path("gen-000001"),
            ),
        ])
        report = _coordinator(
            store, on_step=plan.on_step, registry=registry
        ).migrate(HashRing(3, virtual_nodes=1), graph)
        assert report.rolled_back and not report.committed
        assert "gen-000001" in report.error or report.error
        # All-or-nothing: old generation serving, staged one removed.
        assert store.current() == "gen-000000"
        assert store.generations() == ["gen-000000"]
        journal = store.read_journal()
        assert journal.step == "aborted" and journal.error
        assert registry.counter("migration_rollback_total") == 1

    def test_abort_rolls_back_in_flight_migration(self, store, graph):
        with pytest.raises(CoordinatorKilledError):
            _coordinator(
                store,
                on_step=MigrationFaultPlan(
                    [MigrationFault(step="build")]
                ).on_step,
            ).migrate(HashRing(3, virtual_nodes=1), graph)
        report = _coordinator(store).abort()
        assert report.rolled_back
        assert store.current() == "gen-000000"
        assert store.read_journal().step == "aborted"
        # Aborted journal is terminal: nothing to abort or resume-run.
        with pytest.raises(RuntimeError):
            _coordinator(store).abort()
        resumed = _coordinator(store).resume(graph)
        assert resumed.rolled_back and not resumed.committed

    def test_committed_summary_matches_from_scratch(self, store, graph):
        # The reuse path must be invisible in the output: querying the
        # migrated generation gives the same answers as the graph.
        from repro.queries.compiled import CompiledSummaryIndex

        report = _coordinator(store).migrate(
            HashRing(3, virtual_nodes=1), graph
        )
        assert report.committed
        index = CompiledSummaryIndex(store.current_manifest().load_global())
        for v in range(0, graph.num_nodes, 7):
            assert index.neighbors(v) == sorted(graph.neighbors(v).tolist())

    def test_metrics_rows_zero_registered(self, tmp_path):
        registry = MetricsRegistry()
        MigrationCoordinator(GenerationStore(tmp_path / "store"),
                             registry=registry)
        from repro.shard.migrate import MIGRATION_PHASES

        for phase in MIGRATION_PHASES:
            assert registry.gauge(
                "migration_state", labels={"phase": phase}
            ) == 0
        assert registry.gauge("migration_remapped_vertices") == 0
        assert registry.counter("migration_rollback_total") == 0


# ----------------------------------------------------------------------
# CLI round trip (storage-only, real argv path)
# ----------------------------------------------------------------------
class TestMigrateCli:
    def test_init_kill_resume_round_trip(self, tmp_path, graph, capsys):
        from repro.cli import main
        from repro.graph.io import save_graph

        graph_path = tmp_path / "graph.txt"
        save_graph(graph, str(graph_path))
        store_root = str(tmp_path / "store")
        base = ["migrate", store_root, "--graph", str(graph_path),
                "--iterations", "3"]

        assert main(base + ["--init", "--shards", "2"]) == 0
        assert main(base + ["--shards", "3", "--plan-only"]) == 0
        plan_line = capsys.readouterr().out.strip().splitlines()[-1]
        assert plan_line.startswith("plan:")
        plan = json.loads(plan_line.split("plan:", 1)[1])
        assert len(plan["rebuild_shards"]) < 3

        assert main(base + ["--shards", "3",
                            "--kill-at-step", "prepare"]) == 3
        store = GenerationStore(store_root)
        assert store.read_journal().step == "prepare"

        assert main(base + ["--resume"]) == 0
        assert store.current() == "gen-000001"
        assert store.read_journal().step == "done"

    def test_abort_via_cli(self, tmp_path, graph):
        from repro.cli import main
        from repro.graph.io import save_graph

        graph_path = tmp_path / "graph.txt"
        save_graph(graph, str(graph_path))
        store_root = str(tmp_path / "store")
        base = ["migrate", store_root, "--graph", str(graph_path),
                "--iterations", "3"]
        assert main(base + ["--init", "--shards", "2"]) == 0
        assert main(base + ["--shards", "3",
                            "--kill-at-step", "build"]) == 3
        assert main(["migrate", store_root, "--abort"]) == 0
        store = GenerationStore(store_root)
        assert store.current() == "gen-000000"
        assert store.read_journal().step == "aborted"
