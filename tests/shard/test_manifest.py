"""Manifest round-trip and corruption rejection."""

import json
import os

import pytest

from repro.core.ldme import LDME
from repro.errors import CorruptSummaryError
from repro.graph.generators import web_host_graph
from repro.resilience import flip_bit
from repro.resilience.faults import _corruption_target, truncate_file
from repro.shard import (
    HashRing,
    load_manifest,
    load_serving_summaries,
    partition_graph,
    save_sharded,
    stitch_shards,
)


@pytest.fixture(scope="module")
def stitched_run():
    graph = web_host_graph(num_hosts=5, host_size=8, seed=4)
    sharded = partition_graph(graph, HashRing(3, seed=2))
    summaries = {
        s.shard_id: LDME(k=4, iterations=5, seed=s.shard_id).summarize(
            s.local_graph
        )
        for s in sharded.shards
    }
    report = stitch_shards(sharded, summaries, graph=graph)
    assert report.ok
    return sharded, report.summary


@pytest.fixture
def manifest_dir(stitched_run, tmp_path):
    sharded, stitched = stitched_run
    directory = tmp_path / "manifest"
    save_sharded(stitched, sharded, directory)
    return str(directory)


class TestRoundTrip:
    def test_layout(self, manifest_dir):
        names = sorted(os.listdir(manifest_dir))
        assert names == [
            "global.ldmeb", "manifest.json",
            "shard-0.ldmeb", "shard-1.ldmeb", "shard-2.ldmeb",
        ]

    def test_load_restores_ring_and_universe(self, stitched_run,
                                             manifest_dir):
        sharded, stitched = stitched_run
        manifest = load_manifest(manifest_dir)
        assert manifest.ring == sharded.ring
        assert manifest.num_nodes == sharded.num_nodes
        assert manifest.num_edges == sharded.num_edges
        assert manifest.shard_ids == [0, 1, 2]
        assert manifest.algorithm == stitched.algorithm

    def test_global_summary_round_trips(self, stitched_run,
                                        manifest_dir):
        _, stitched = stitched_run
        loaded = load_manifest(manifest_dir).load_global()
        assert loaded.num_nodes == stitched.num_nodes
        assert sorted(loaded.superedges) == sorted(stitched.superedges)

    def test_serving_summaries_load_per_shard(self, manifest_dir):
        manifest = load_manifest(manifest_dir)
        summaries = load_serving_summaries(manifest)
        assert sorted(summaries) == [0, 1, 2]
        for sid, summary in summaries.items():
            assert summary.num_supernodes == \
                manifest.entry(sid).num_supernodes

    def test_accepts_manifest_json_path(self, manifest_dir):
        direct = load_manifest(
            os.path.join(manifest_dir, "manifest.json")
        )
        assert direct.shard_ids == [0, 1, 2]
        assert direct.directory == manifest_dir


class TestCorruptionRejected:
    def test_flipped_shard_artifact_fails_verification(self,
                                                       manifest_dir):
        flip_bit(os.path.join(manifest_dir, "shard-1.ldmeb"))
        with pytest.raises(CorruptSummaryError, match="CRC"):
            load_manifest(manifest_dir)

    def test_flipped_global_fails_verification(self, manifest_dir):
        flip_bit(os.path.join(manifest_dir, "global.ldmeb"))
        with pytest.raises(CorruptSummaryError):
            load_manifest(manifest_dir)

    def test_truncated_artifact_fails_verification(self, manifest_dir):
        truncate_file(os.path.join(manifest_dir, "shard-0.ldmeb"))
        with pytest.raises(CorruptSummaryError):
            load_manifest(manifest_dir)

    def test_missing_artifact_fails_verification(self, manifest_dir):
        os.remove(os.path.join(manifest_dir, "shard-2.ldmeb"))
        with pytest.raises(CorruptSummaryError, match="missing"):
            load_manifest(manifest_dir)

    def test_verify_false_defers_to_read_time(self, manifest_dir):
        flip_bit(os.path.join(manifest_dir, "shard-1.ldmeb"))
        manifest = load_manifest(manifest_dir, verify=False)
        # The binary reader's own CRC footer still catches it on read.
        with pytest.raises(CorruptSummaryError):
            manifest.load_shard(1)

    def test_unsupported_version_rejected(self, manifest_dir):
        path = os.path.join(manifest_dir, "manifest.json")
        with open(path) as fh:
            data = json.load(fh)
        data["version"] = 99
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(CorruptSummaryError, match="version"):
            load_manifest(manifest_dir)

    def test_ring_entry_mismatch_rejected(self, manifest_dir):
        path = os.path.join(manifest_dir, "manifest.json")
        with open(path) as fh:
            data = json.load(fh)
        data["ring"]["shards"] = [0, 1, 2, 3]
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(CorruptSummaryError, match="ring shards"):
            load_manifest(manifest_dir, verify=False)


class TestCorruptionTarget:
    def test_plain_file_is_its_own_target(self, tmp_path):
        path = tmp_path / "x.ldmeb"
        path.write_bytes(b"abc")
        assert _corruption_target(str(path)) == str(path)

    def test_manifest_dir_targets_last_shard_artifact(self,
                                                      manifest_dir):
        assert _corruption_target(manifest_dir) == os.path.join(
            manifest_dir, "shard-2.ldmeb"
        )

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            _corruption_target(str(tmp_path))
