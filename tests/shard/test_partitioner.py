"""Partitioner invariants: coverage, edge conservation, cut ownership."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, web_host_graph
from repro.graph.graph import Graph
from repro.shard import HashRing, partition_graph


@pytest.fixture(scope="module")
def graph():
    return web_host_graph(num_hosts=6, host_size=10, seed=3)


@pytest.fixture(scope="module")
def sharded(graph):
    return partition_graph(graph, HashRing(4, seed=0))


class TestPartitioning:
    def test_validate_passes(self, sharded):
        sharded.validate()

    def test_every_node_in_exactly_one_shard(self, graph, sharded):
        seen = np.zeros(graph.num_nodes, dtype=int)
        for shard in sharded.shards:
            seen[shard.global_ids] += 1
        assert np.all(seen == 1)

    def test_assignment_matches_ring(self, graph, sharded):
        ring = sharded.ring
        np.testing.assert_array_equal(
            sharded.assignment, ring.assign_range(graph.num_nodes)
        )

    def test_edge_conservation(self, graph, sharded):
        local = sum(s.local_graph.num_edges for s in sharded.shards)
        assert local + sharded.num_cut_edges == graph.num_edges

    def test_local_edges_are_exactly_the_intra_shard_edges(
        self, graph, sharded
    ):
        """Union of lifted local edges + cut edges == input edge set."""
        edges = set()
        for shard in sharded.shards:
            gids = shard.global_ids
            sub = shard.local_graph
            for u in range(sub.num_nodes):
                for v in sub.indices[sub.indptr[u]:sub.indptr[u + 1]]:
                    if u < v:
                        edges.add((int(gids[u]), int(gids[v])))
        for u, v in sharded.all_cut_edges().tolist():
            pair = (min(u, v), max(u, v))
            assert pair not in edges      # cut edges are never local
            edges.add(pair)
        expected = set()
        for u in range(graph.num_nodes):
            for v in graph.indices[graph.indptr[u]:graph.indptr[u + 1]]:
                if u < v:
                    expected.add((int(u), int(v)))
        assert edges == expected

    def test_cut_edges_cross_shards_and_owner_is_smaller_endpoint(
        self, sharded
    ):
        assignment = sharded.assignment
        for owner, pairs in sharded.cut_edges.items():
            for u, v in pairs.tolist():
                assert u < v
                assert assignment[u] != assignment[v]
                assert int(assignment[u]) == owner

    def test_local_of_inverts_global_ids(self, sharded):
        shard = max(sharded.shards, key=lambda s: s.num_nodes)
        for local, gid in enumerate(shard.global_ids.tolist()):
            assert shard.local_of(gid) == local
        mine = set(shard.global_ids.tolist())
        foreign = next(
            v for v in range(sharded.num_nodes) if v not in mine
        )
        with pytest.raises(KeyError):
            shard.local_of(foreign)

    def test_isolated_nodes_are_carried(self):
        # Node 4 is isolated; it must still land in some shard.
        graph = Graph.from_edges(5, [(0, 1), (2, 3)])
        sharded = partition_graph(graph, HashRing(2, seed=1))
        sharded.validate()
        total = sum(s.num_nodes for s in sharded.shards)
        assert total == 5

    def test_single_shard_degenerates_to_identity(self, graph):
        sharded = partition_graph(graph, HashRing(1))
        sharded.validate()
        assert sharded.num_cut_edges == 0
        assert sharded.shards[0].local_graph.num_edges == graph.num_edges

    def test_random_graphs_conserve(self):
        for seed in range(3):
            graph = erdos_renyi(60, 0.1, seed=seed)
            sharded = partition_graph(graph, HashRing(3, seed=seed))
            sharded.validate()
