"""Tests for the compact binary summary format."""

import pytest

from repro.binaryio import (
    read_summary_binary,
    write_summary_binary,
    _read_varint,
)
from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.io import write_summary


@pytest.fixture
def summary(small_web):
    return LDME(k=5, iterations=8, seed=0).summarize(small_web)


class TestRoundtrip:
    def test_reconstruction_preserved(self, tmp_path, small_web, summary):
        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        loaded = read_summary_binary(path)
        assert reconstruct(loaded) == small_web

    def test_counts_preserved(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        loaded = read_summary_binary(path)
        assert loaded.num_nodes == summary.num_nodes
        assert loaded.num_edges == summary.num_edges
        assert loaded.num_supernodes == summary.num_supernodes
        assert loaded.objective == summary.objective
        assert sorted(loaded.superedges) == sorted(summary.superedges)

    def test_returns_file_size(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        size = write_summary_binary(summary, path)
        assert size == path.stat().st_size
        assert size > 4


class TestFileObjects:
    def test_bytesio_roundtrip(self, small_web, summary):
        import io

        buf = io.BytesIO()
        size = write_summary_binary(summary, buf)
        assert size == buf.tell() > 4
        buf.seek(0)
        loaded = read_summary_binary(buf)
        assert reconstruct(loaded) == small_web

    def test_file_object_matches_path_bytes(self, tmp_path, summary):
        import io

        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        buf = io.BytesIO()
        write_summary_binary(summary, buf)
        assert buf.getvalue() == path.read_bytes()

    def test_write_from_current_position(self, summary):
        import io

        buf = io.BytesIO()
        buf.write(b"HDR!")
        size = write_summary_binary(summary, buf)
        assert size == buf.tell() - 4
        buf.seek(4)
        assert read_summary_binary(buf).num_nodes == summary.num_nodes

    def test_open_file_handles(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        with open(path, "wb") as fh:
            write_summary_binary(summary, fh)
        with open(path, "rb") as fh:
            loaded = read_summary_binary(fh)
        assert loaded.num_edges == summary.num_edges

    def test_stream_errors_name_the_stream(self):
        import io

        with pytest.raises(ValueError, match="not an LDMB"):
            read_summary_binary(io.BytesIO(b"NOPE" + b"\x00" * 8))

    def test_empty_summary_roundtrip(self):
        """The degenerate summary (no nodes at all) survives the format."""
        import io

        from repro.core.summary import CorrectionSet, Summarization

        empty = Summarization.from_members(
            num_nodes=0, members={}, superedges=[],
            corrections=CorrectionSet([], []), num_edges=0,
        )
        buf = io.BytesIO()
        size = write_summary_binary(empty, buf)
        assert size == buf.tell()
        buf.seek(0)
        loaded = read_summary_binary(buf)
        assert loaded.num_nodes == 0
        assert loaded.num_edges == 0
        assert loaded.num_supernodes == 0
        assert list(loaded.superedges) == []
        assert loaded.corrections.size == 0

    def test_empty_summary_roundtrip_via_path(self, tmp_path):
        from repro.core.summary import CorrectionSet, Summarization

        empty = Summarization.from_members(
            num_nodes=0, members={}, superedges=[],
            corrections=CorrectionSet([], []), num_edges=0,
        )
        path = tmp_path / "empty.ldmeb"
        write_summary_binary(empty, path)
        assert read_summary_binary(path).num_nodes == 0


class TestCompactness:
    def test_smaller_than_text_format(self, tmp_path, summary):
        binary_path = tmp_path / "s.ldmeb"
        text_path = tmp_path / "s.summary"
        binary_size = write_summary_binary(summary, binary_path)
        write_summary(summary, text_path)
        assert binary_size < text_path.stat().st_size


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 10)
        with pytest.raises(ValueError, match="not an LDMB"):
            read_summary_binary(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "v99.bin"
        path.write_bytes(b"LDMB" + bytes([99]))
        with pytest.raises(ValueError, match="version"):
            read_summary_binary(path)

    def test_trailing_bytes_detected(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(ValueError, match="trailing"):
            read_summary_binary(path)

    def test_truncated_varint(self):
        with pytest.raises(ValueError, match="truncated"):
            _read_varint(b"\x80", 0)


class TestVarintLayer:
    def test_roundtrip_values(self, tmp_path):
        import io

        from repro.binaryio import _write_varint

        for value in (0, 1, 127, 128, 300, 2**20, 2**40):
            buf = io.BytesIO()
            _write_varint(buf, value)
            decoded, pos = _read_varint(buf.getvalue(), 0)
            assert decoded == value
            assert pos == len(buf.getvalue())

    def test_negative_rejected(self):
        import io

        from repro.binaryio import _write_varint

        with pytest.raises(ValueError):
            _write_varint(io.BytesIO(), -1)


class TestFuzzTruncation:
    def test_truncated_files_raise_cleanly(self, tmp_path, summary):
        """A summary file cut at any prefix must raise ValueError (or
        produce a detectable structural problem), never crash oddly."""
        import numpy as np

        path = tmp_path / "full.ldmeb"
        write_summary_binary(summary, path)
        data = path.read_bytes()
        rng = np.random.default_rng(0)
        cuts = sorted(set(rng.integers(0, len(data), size=25).tolist()))
        for cut in cuts:
            trunc = tmp_path / "trunc.ldmeb"
            trunc.write_bytes(data[:cut])
            try:
                loaded = read_summary_binary(trunc)
            except ValueError:
                continue  # clean rejection
            except IndexError:
                continue  # member list validation failure path
            # A short prefix can decode only if it is structurally valid;
            # it must then fail summary validation or differ from the
            # original.
            from repro.core.validate import check_summary

            assert cut == len(data) or loaded.objective != summary.objective \
                or check_summary(loaded)
