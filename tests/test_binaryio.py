"""Tests for the compact binary summary format."""

import pytest

from repro.binaryio import (
    read_summary_binary,
    write_summary_binary,
    _read_varint,
)
from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.io import write_summary


@pytest.fixture
def summary(small_web):
    return LDME(k=5, iterations=8, seed=0).summarize(small_web)


class TestRoundtrip:
    def test_reconstruction_preserved(self, tmp_path, small_web, summary):
        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        loaded = read_summary_binary(path)
        assert reconstruct(loaded) == small_web

    def test_counts_preserved(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        loaded = read_summary_binary(path)
        assert loaded.num_nodes == summary.num_nodes
        assert loaded.num_edges == summary.num_edges
        assert loaded.num_supernodes == summary.num_supernodes
        assert loaded.objective == summary.objective
        assert sorted(loaded.superedges) == sorted(summary.superedges)

    def test_returns_file_size(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        size = write_summary_binary(summary, path)
        assert size == path.stat().st_size
        assert size > 4


class TestCompactness:
    def test_smaller_than_text_format(self, tmp_path, summary):
        binary_path = tmp_path / "s.ldmeb"
        text_path = tmp_path / "s.summary"
        binary_size = write_summary_binary(summary, binary_path)
        write_summary(summary, text_path)
        assert binary_size < text_path.stat().st_size


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 10)
        with pytest.raises(ValueError, match="not an LDMB"):
            read_summary_binary(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "v99.bin"
        path.write_bytes(b"LDMB" + bytes([99]))
        with pytest.raises(ValueError, match="version"):
            read_summary_binary(path)

    def test_trailing_bytes_detected(self, tmp_path, summary):
        path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, path)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(ValueError, match="trailing"):
            read_summary_binary(path)

    def test_truncated_varint(self):
        with pytest.raises(ValueError, match="truncated"):
            _read_varint(b"\x80", 0)


class TestVarintLayer:
    def test_roundtrip_values(self, tmp_path):
        import io

        from repro.binaryio import _write_varint

        for value in (0, 1, 127, 128, 300, 2**20, 2**40):
            buf = io.BytesIO()
            _write_varint(buf, value)
            decoded, pos = _read_varint(buf.getvalue(), 0)
            assert decoded == value
            assert pos == len(buf.getvalue())

    def test_negative_rejected(self):
        import io

        from repro.binaryio import _write_varint

        with pytest.raises(ValueError):
            _write_varint(io.BytesIO(), -1)


class TestFuzzTruncation:
    def test_truncated_files_raise_cleanly(self, tmp_path, summary):
        """A summary file cut at any prefix must raise ValueError (or
        produce a detectable structural problem), never crash oddly."""
        import numpy as np

        path = tmp_path / "full.ldmeb"
        write_summary_binary(summary, path)
        data = path.read_bytes()
        rng = np.random.default_rng(0)
        cuts = sorted(set(rng.integers(0, len(data), size=25).tolist()))
        for cut in cuts:
            trunc = tmp_path / "trunc.ldmeb"
            trunc.write_bytes(data[:cut])
            try:
                loaded = read_summary_binary(trunc)
            except ValueError:
                continue  # clean rejection
            except IndexError:
                continue  # member list validation failure path
            # A short prefix can decode only if it is structurally valid;
            # it must then fail summary validation or differ from the
            # original.
            from repro.core.validate import check_summary

            assert cut == len(data) or loaded.objective != summary.objective \
                or check_summary(loaded)
