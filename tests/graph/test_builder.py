"""Unit tests for GraphBuilder."""

import pytest

from repro.graph.builder import GraphBuilder


class TestFixedMode:
    def test_basic_build(self):
        g = GraphBuilder(num_nodes=4).add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_nodes == 4
        assert g.num_edges == 2

    def test_out_of_range_rejected(self):
        builder = GraphBuilder(num_nodes=3)
        with pytest.raises(ValueError):
            builder.add_edge(0, 3)

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(num_nodes=-2)

    def test_labels_unavailable(self):
        builder = GraphBuilder(num_nodes=3)
        with pytest.raises(ValueError):
            builder.labels

    def test_empty_build(self):
        g = GraphBuilder(num_nodes=3).build()
        assert g.num_nodes == 3
        assert g.num_edges == 0


class TestLabelMode:
    def test_string_labels_compact(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob").add_edge("bob", "carol")
        g = builder.build()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert builder.labels == ["alice", "bob", "carol"]

    def test_first_seen_ordering(self):
        builder = GraphBuilder()
        builder.add_edge("z", "a")
        assert builder.labels == ["z", "a"]

    def test_isolated_node_via_add_node(self):
        builder = GraphBuilder()
        builder.add_node("lonely")
        builder.add_edge("a", "b")
        g = builder.build()
        assert g.num_nodes == 3
        assert g.degree(0) == 0  # "lonely" was seen first

    def test_mixed_hashable_labels(self):
        builder = GraphBuilder()
        builder.add_edge((1, 2), "x").add_edge("x", 99)
        assert builder.build().num_edges == 2


class TestBookkeeping:
    def test_self_loops_counted_and_dropped(self):
        builder = GraphBuilder(num_nodes=3)
        builder.add_edge(1, 1).add_edge(0, 1)
        assert builder.self_loops_dropped == 1
        assert builder.build().num_edges == 1

    def test_num_buffered_edges(self):
        builder = GraphBuilder(num_nodes=3)
        builder.add_edges([(0, 1), (0, 1), (1, 2)])
        assert builder.num_buffered_edges == 3
        assert builder.build().num_edges == 2  # deduped at build

    def test_add_edges_chains(self):
        g = GraphBuilder(num_nodes=4).add_edges([(0, 1)]).add_edges([(2, 3)]).build()
        assert g.num_edges == 2
