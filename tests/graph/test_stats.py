"""Tests for graph statistics."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.stats import (
    connected_components,
    degree_histogram,
    graph_stats,
)


class TestGraphStats:
    def test_star_stats(self, star):
        stats = graph_stats(star)
        assert stats.num_nodes == 6
        assert stats.num_edges == 5
        assert stats.min_degree == 1
        assert stats.max_degree == 5
        assert stats.num_isolated == 0
        assert stats.num_components == 1

    def test_density_complete(self, triangle):
        assert graph_stats(triangle).density == 1.0

    def test_isolated_counted(self):
        g = Graph.from_edges(5, [(0, 1)])
        stats = graph_stats(g)
        assert stats.num_isolated == 3
        assert stats.num_components == 4

    def test_empty_graph(self):
        stats = graph_stats(Graph.from_edges(0, []))
        assert stats.num_nodes == 0
        assert stats.density == 0.0

    def test_as_dict_keys(self, triangle):
        d = graph_stats(triangle).as_dict()
        assert {"nodes", "edges", "density", "components"} <= set(d)


class TestDegreeHistogram:
    def test_star_histogram(self, star):
        hist = degree_histogram(star)
        assert hist[1] == 5
        assert hist[5] == 1

    def test_histogram_sums_to_n(self, random_graph):
        assert degree_histogram(random_graph).sum() == random_graph.num_nodes

    def test_empty(self):
        hist = degree_histogram(Graph.from_edges(0, []))
        assert hist.sum() == 0


class TestConnectedComponents:
    def test_single_component(self, two_cliques):
        comps = connected_components(two_cliques)
        assert len(comps) == 1
        assert sorted(comps[0].tolist()) == list(range(8))

    def test_two_components(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 3]

    def test_components_partition_nodes(self, random_graph):
        comps = connected_components(random_graph)
        all_nodes = np.concatenate(comps)
        assert sorted(all_nodes.tolist()) == list(range(random_graph.num_nodes))


class TestPowerlawMLE:
    def test_known_distribution(self):
        # Generate a synthetic degree sequence ~ power law alpha=2.5 via a
        # BA-like graph and check the estimate lands in a sane band.
        from repro.graph.generators import barabasi_albert
        from repro.graph.stats import powerlaw_exponent_mle

        g = barabasi_albert(2000, m=2, seed=0)
        alpha = powerlaw_exponent_mle(g, xmin=2)
        assert 1.5 < alpha < 3.5

    def test_regular_graph_degenerate(self, triangle):
        from repro.graph.stats import powerlaw_exponent_mle

        # All degrees equal: estimator blows up (documented behaviour)
        # or is very large.
        alpha = powerlaw_exponent_mle(triangle, xmin=2)
        assert alpha > 2

    def test_xmin_validated(self, triangle):
        from repro.graph.stats import powerlaw_exponent_mle

        with pytest.raises(ValueError):
            powerlaw_exponent_mle(triangle, xmin=0)

    def test_no_tail_rejected(self):
        from repro.graph.stats import powerlaw_exponent_mle

        g = Graph.from_edges(3, [])
        with pytest.raises(ValueError):
            powerlaw_exponent_mle(g, xmin=1)

    def test_surrogates_have_heavy_tails(self):
        from repro.graph import datasets
        from repro.graph.stats import powerlaw_exponent_mle

        for name in ("IN", "UK"):  # the R-MAT web surrogates
            alpha = powerlaw_exponent_mle(datasets.load(name), xmin=2)
            assert 1.3 < alpha < 4.0, name


class TestAssortativity:
    def test_star_disassortative(self, star):
        from repro.graph.stats import degree_assortativity

        assert degree_assortativity(star) < 0

    def test_regular_graph_zero(self, triangle):
        from repro.graph.stats import degree_assortativity

        assert degree_assortativity(triangle) == 0.0

    def test_bounded(self, small_web):
        from repro.graph.stats import degree_assortativity

        value = degree_assortativity(small_web)
        assert -1.0 <= value <= 1.0

    def test_tiny_graph(self):
        from repro.graph.stats import degree_assortativity

        assert degree_assortativity(Graph.from_edges(2, [(0, 1)])) == 0.0
