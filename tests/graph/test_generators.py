"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    powerlaw_cluster,
    rmat,
    stochastic_block_model,
    web_host_graph,
)


class TestErdosRenyi:
    def test_p_zero_empty(self):
        assert erdos_renyi(20, 0.0, seed=0).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_pair_inversion_is_exact(self):
        # p=1 must produce every pair exactly once — validates the
        # triangular index inversion arithmetic.
        g = erdos_renyi(17, 1.0, seed=3)
        expected = {(u, v) for u in range(17) for v in range(u + 1, 17)}
        assert set(g.edges()) == expected

    def test_expected_edge_count(self):
        n, p = 200, 0.1
        counts = [erdos_renyi(n, p, seed=s).num_edges for s in range(5)]
        expect = p * n * (n - 1) / 2
        assert expect * 0.8 < np.mean(counts) < expect * 1.2

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_deterministic_with_seed(self):
        assert erdos_renyi(30, 0.2, seed=7) == erdos_renyi(30, 0.2, seed=7)

    def test_shared_generator_advances(self):
        rng = np.random.default_rng(0)
        a = erdos_renyi(30, 0.2, rng)
        b = erdos_renyi(30, 0.2, rng)
        assert a != b


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, m=3, seed=1)
        # m initial star edges + m per subsequent node
        assert g.num_edges == 3 + 3 * (100 - 4)

    def test_heavy_tail(self):
        g = barabasi_albert(400, m=2, seed=1)
        degs = g.degrees()
        assert degs.max() > 4 * degs.mean()

    def test_connected(self):
        from repro.graph.stats import connected_components

        g = barabasi_albert(50, m=1, seed=0)
        assert len(connected_components(g)) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, m=0)
        with pytest.raises(ValueError):
            barabasi_albert(3, m=3)


class TestRMAT:
    def test_node_count_power_of_two(self):
        g = rmat(scale=6, edge_factor=4, seed=0)
        assert g.num_nodes == 64

    def test_degree_skew(self):
        g = rmat(scale=10, edge_factor=8, seed=0)
        degs = g.degrees()
        assert degs.max() > 8 * max(1.0, degs.mean())

    def test_quadrant_probabilities_validated(self):
        with pytest.raises(ValueError):
            rmat(scale=4, a=0.9, b=0.2, c=0.2)

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            rmat(scale=0)

    def test_deterministic(self):
        assert rmat(scale=7, seed=5) == rmat(scale=7, seed=5)


class TestPowerlawCluster:
    def test_size(self):
        g = powerlaw_cluster(80, m=2, seed=0)
        assert g.num_nodes == 80
        assert g.num_edges >= 2 * (80 - 3)

    def test_triangle_prob_zero_runs(self):
        g = powerlaw_cluster(40, m=2, triangle_prob=0.0, seed=0)
        assert g.num_edges > 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(10, m=0)
        with pytest.raises(ValueError):
            powerlaw_cluster(10, m=2, triangle_prob=2.0)


class TestSBM:
    def test_total_nodes(self):
        g = stochastic_block_model([10, 20, 30], np.full((3, 3), 0.05), seed=0)
        assert g.num_nodes == 60

    def test_diagonal_only_keeps_blocks_disconnected(self):
        probs = [[1.0, 0.0], [0.0, 1.0]]
        g = stochastic_block_model([5, 5], probs, seed=0)
        for u in range(5):
            for v in range(5, 10):
                assert not g.has_edge(u, v)
        assert g.num_edges == 2 * 10  # two K5s

    def test_offdiagonal_density(self):
        probs = [[0.0, 1.0], [1.0, 0.0]]
        g = stochastic_block_model([4, 6], probs, seed=0)
        assert g.num_edges == 24  # complete bipartite

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ValueError):
            stochastic_block_model([3, 3], [[0.1, 0.2], [0.3, 0.1]])

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            stochastic_block_model([3], [[1.5]])

    def test_wrong_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            stochastic_block_model([3, 3], [[0.1]])

    def test_empty_blocks(self):
        g = stochastic_block_model([0, 0], [[0.5, 0.5], [0.5, 0.5]], seed=0)
        assert g.num_nodes == 0


class TestWebHostGraph:
    def test_shape(self):
        g = web_host_graph(num_hosts=5, host_size=10, seed=0)
        assert g.num_nodes == 50
        assert g.num_edges > 0

    def test_template_redundancy_exists(self):
        # The point of this generator: many identical neighbourhoods.
        g = web_host_graph(num_hosts=8, host_size=20, mutation_prob=0.0, seed=1)
        seen = {}
        for v in range(g.num_nodes):
            key = tuple(g.neighbors(v).tolist())
            seen[key] = seen.get(key, 0) + 1
        assert max(seen.values()) >= 3

    def test_host_locality(self):
        g = web_host_graph(num_hosts=10, host_size=10, inter_edges_per_host=0,
                           seed=2)
        src, dst = g.edge_arrays()
        assert np.all(src // 10 == dst // 10)  # all edges intra-host

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            web_host_graph(num_hosts=0, host_size=5)
        with pytest.raises(ValueError):
            web_host_graph(num_hosts=2, host_size=1)
        with pytest.raises(ValueError):
            web_host_graph(num_hosts=2, host_size=5, mutation_prob=1.5)
        with pytest.raises(ValueError):
            web_host_graph(num_hosts=2, host_size=5, templates_per_host=0)


class TestForestFire:
    def test_connected_and_sized(self):
        from repro.graph.generators import forest_fire
        from repro.graph.stats import connected_components

        g = forest_fire(120, forward_prob=0.3, seed=0)
        assert g.num_nodes == 120
        assert g.num_edges >= 119  # at least a spanning structure
        assert len(connected_components(g)) == 1

    def test_higher_prob_denser(self):
        from repro.graph.generators import forest_fire

        sparse = forest_fire(150, forward_prob=0.1, seed=1)
        dense = forest_fire(150, forward_prob=0.5, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_deterministic(self):
        from repro.graph.generators import forest_fire

        assert forest_fire(60, seed=4) == forest_fire(60, seed=4)

    def test_validation(self):
        from repro.graph.generators import forest_fire

        with pytest.raises(ValueError):
            forest_fire(0)
        with pytest.raises(ValueError):
            forest_fire(10, forward_prob=1.0)

    def test_single_node(self):
        from repro.graph.generators import forest_fire

        g = forest_fire(1, seed=0)
        assert g.num_nodes == 1
        assert g.num_edges == 0
