"""Tests for traversals, k-core and SlashBurn."""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert, web_host_graph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_distances,
    clustering_coefficient,
    core_numbers,
    k_core,
    shortest_path,
    slashburn,
)


class TestBFS:
    def test_path_distances(self, path4):
        assert bfs_distances(path4, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_excluded(self):
        g = Graph.from_edges(4, [(0, 1)])
        assert set(bfs_distances(g, 0)) == {0, 1}

    def test_source_validated(self, path4):
        with pytest.raises(IndexError):
            bfs_distances(path4, 9)


class TestShortestPath:
    def test_direct_path(self, path4):
        assert shortest_path(path4, 0, 3) == [0, 1, 2, 3]

    def test_same_node(self, path4):
        assert shortest_path(path4, 2, 2) == [2]

    def test_unreachable_none(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert shortest_path(g, 0, 3) is None

    def test_path_is_shortest(self, two_cliques):
        path = shortest_path(two_cliques, 1, 5)
        # 1 → 0 → 4 → 5 is the unique 3-hop route over the bridge.
        assert len(path) == 4
        assert path[0] == 1 and path[-1] == 5

    def test_endpoints_validated(self, path4):
        with pytest.raises(IndexError):
            shortest_path(path4, 0, 9)


class TestCoreNumbers:
    def test_clique_core(self):
        g = Graph.from_edges(4, [(u, v) for u in range(4) for v in range(u + 1, 4)])
        assert np.all(core_numbers(g) == 3)

    def test_star_core(self, star):
        cores = core_numbers(star)
        assert np.all(cores == 1)

    def test_path_core(self, path4):
        assert np.all(core_numbers(path4) == 1)

    def test_clique_with_tail(self):
        # K4 plus a pendant: clique nodes core 3, pendant core 1.
        edges = [(u, v) for u in range(4) for v in range(u + 1, 4)] + [(3, 4)]
        g = Graph.from_edges(5, edges)
        cores = core_numbers(g)
        assert cores[4] == 1
        assert all(cores[v] == 3 for v in range(4))

    def test_isolated_core_zero(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert core_numbers(g)[2] == 0

    def test_k_core_extraction(self, two_cliques):
        core3 = k_core(two_cliques, 3)
        assert sorted(core3.tolist()) == list(range(8))  # both K4s
        assert k_core(two_cliques, 4).size == 0

    def test_k_validated(self, path4):
        with pytest.raises(ValueError):
            k_core(path4, -1)


class TestClusteringCoefficient:
    def test_triangle_full(self, triangle):
        assert clustering_coefficient(triangle, 0) == 1.0

    def test_star_hub_zero(self, star):
        assert clustering_coefficient(star, 0) == 0.0

    def test_degree_one_zero(self, path4):
        assert clustering_coefficient(path4, 0) == 0.0

    def test_partial(self):
        # 0 adjacent to 1,2,3; only edge (1,2) among them → 1/3.
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert clustering_coefficient(g, 0) == pytest.approx(1 / 3)


class TestSlashBurn:
    def test_covers_all_nodes(self):
        g = web_host_graph(num_hosts=5, host_size=10, seed=1)
        hubs, spokes = slashburn(g, hub_count=2)
        covered = set(hubs.tolist())
        for spoke in spokes:
            covered.update(spoke.tolist())
        assert covered == set(range(g.num_nodes))

    def test_hubs_and_spokes_disjoint(self):
        g = barabasi_albert(60, m=2, seed=0)
        hubs, spokes = slashburn(g, hub_count=3)
        hub_set = set(hubs.tolist())
        for spoke in spokes:
            assert not hub_set & set(spoke.tolist())

    def test_first_hub_is_max_degree(self, star):
        hubs, _ = slashburn(star, hub_count=1)
        assert hubs[0] == 0

    def test_hub_count_validated(self, star):
        with pytest.raises(ValueError):
            slashburn(star, hub_count=0)

    def test_star_burns_to_leaves(self, star):
        hubs, spokes = slashburn(star, hub_count=1)
        # Removing the hub isolates every leaf into spokes.
        spoke_nodes = sorted(v for s in spokes for v in s.tolist())
        assert spoke_nodes == [1, 2, 3, 4, 5]
