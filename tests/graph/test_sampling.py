"""Tests for graph samplers."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.sampling import edge_sample, node_sample, random_walk_sample


class TestNodeSample:
    def test_size_and_mapping(self, small_web):
        sub, ids = node_sample(small_web, 0.25, seed=0)
        assert sub.num_nodes == ids.size
        assert ids.size == round(small_web.num_nodes * 0.25)

    def test_full_fraction_identity(self, two_cliques):
        sub, ids = node_sample(two_cliques, 1.0, seed=0)
        assert sub == two_cliques

    def test_induced_edges_preserved(self, two_cliques):
        sub, ids = node_sample(two_cliques, 0.5, seed=3)
        lookup = {int(o): i for i, o in enumerate(ids)}
        for u, v in two_cliques.edges():
            if u in lookup and v in lookup:
                assert sub.has_edge(lookup[u], lookup[v])

    def test_fraction_validated(self, triangle):
        with pytest.raises(ValueError):
            node_sample(triangle, 0.0)
        with pytest.raises(ValueError):
            node_sample(triangle, 1.5)


class TestEdgeSample:
    def test_edge_count(self, small_web):
        sub, ids = edge_sample(small_web, 0.1, seed=0)
        assert sub.num_edges == round(small_web.num_edges * 0.1)

    def test_endpoints_collected(self, path4):
        sub, ids = edge_sample(path4, 1.0, seed=0)
        assert sorted(ids.tolist()) == [0, 1, 2, 3]
        assert sub.num_edges == 3

    def test_empty_graph(self):
        sub, ids = edge_sample(Graph.from_edges(3, []), 0.5, seed=0)
        assert sub.num_nodes == 0
        assert ids.size == 0

    def test_fraction_validated(self, triangle):
        with pytest.raises(ValueError):
            edge_sample(triangle, -0.1)


class TestRandomWalkSample:
    def test_reaches_target_on_connected_graph(self, two_cliques):
        sub, ids = random_walk_sample(two_cliques, 6, seed=0)
        assert ids.size == 6
        assert sub.num_nodes == 6

    def test_sample_is_induced(self, small_web):
        sub, ids = random_walk_sample(small_web, 40, seed=1)
        lookup = {int(o): i for i, o in enumerate(ids)}
        for u, v in small_web.edges():
            if u in lookup and v in lookup:
                assert sub.has_edge(lookup[u], lookup[v])

    def test_target_capped_at_n(self, triangle):
        sub, ids = random_walk_sample(triangle, 100, seed=0)
        assert ids.size == 3

    def test_handles_isolated_starts(self):
        g = Graph.from_edges(6, [(0, 1)])
        sub, ids = random_walk_sample(g, 3, seed=2)
        assert 1 <= ids.size <= 3 or ids.size == 3

    def test_walk_keeps_local_structure(self, small_web):
        # Random-walk samples should be denser than uniform node samples
        # of the same size (the sampler's selling point).
        walk_sub, walk_ids = random_walk_sample(small_web, 30, seed=5)
        node_sub, _ = node_sample(
            small_web, walk_ids.size / small_web.num_nodes, seed=5
        )
        assert walk_sub.num_edges >= node_sub.num_edges

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            random_walk_sample(triangle, 0)
        with pytest.raises(ValueError):
            random_walk_sample(triangle, 2, restart_prob=1.0)

    def test_empty_graph(self):
        sub, ids = random_walk_sample(Graph.from_edges(0, []), 3, seed=0)
        assert sub.num_nodes == 0
