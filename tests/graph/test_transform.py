"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.transform import (
    add_edges,
    compact,
    difference,
    filter_min_degree,
    largest_component,
    relabel,
    remove_edges,
    union,
)


class TestLargestComponent:
    def test_extracts_giant(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        sub, ids = largest_component(g)
        assert sub.num_nodes == 4
        assert sorted(ids.tolist()) == [0, 1, 2, 3]
        assert sub.num_edges == 3

    def test_whole_graph_connected(self, two_cliques):
        sub, ids = largest_component(two_cliques)
        assert sub == two_cliques.subgraph(ids)
        assert sub.num_nodes == 8

    def test_empty_graph(self):
        sub, ids = largest_component(Graph.from_edges(0, []))
        assert sub.num_nodes == 0
        assert ids.size == 0


class TestFilterMinDegree:
    def test_iterative_peeling(self):
        # A triangle with a tail: the tail unravels completely at k=2.
        g = Graph.from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        sub, ids = filter_min_degree(g, 2)
        assert sorted(ids.tolist()) == [0, 1, 2]
        assert sub.num_edges == 3

    def test_zero_keeps_everything(self, random_graph):
        sub, ids = filter_min_degree(random_graph, 0)
        assert ids.size == random_graph.num_nodes

    def test_impossible_threshold_empties(self, path4):
        sub, ids = filter_min_degree(path4, 5)
        assert ids.size == 0

    def test_negative_rejected(self, path4):
        with pytest.raises(ValueError):
            filter_min_degree(path4, -1)

    def test_result_satisfies_threshold(self, small_web):
        sub, _ = filter_min_degree(small_web, 3)
        if sub.num_nodes:
            assert int(sub.degrees().min()) >= 3


class TestRelabel:
    def test_reverse_permutation(self, path4):
        mapping = {v: 3 - v for v in range(4)}
        relabelled = relabel(path4, mapping)
        assert relabelled.has_edge(3, 2)
        assert relabelled.has_edge(0, 1)
        assert relabelled.num_edges == 3

    def test_identity(self, triangle):
        assert relabel(triangle, {v: v for v in range(3)}) == triangle

    def test_incomplete_mapping_rejected(self, triangle):
        with pytest.raises(ValueError):
            relabel(triangle, {0: 0, 1: 1})

    def test_non_bijection_rejected(self, triangle):
        with pytest.raises(ValueError):
            relabel(triangle, {0: 0, 1: 0, 2: 2})


class TestCompact:
    def test_drops_isolated(self):
        g = Graph.from_edges(6, [(1, 4)])
        sub, ids = compact(g)
        assert sub.num_nodes == 2
        assert ids.tolist() == [1, 4]
        assert sub.has_edge(0, 1)

    def test_noop_when_dense(self, triangle):
        sub, ids = compact(triangle)
        assert sub == triangle


class TestSetOperations:
    def test_union_combines(self):
        a = Graph.from_edges(4, [(0, 1)])
        b = Graph.from_edges(4, [(2, 3)])
        combined = union(a, b)
        assert combined.num_edges == 2

    def test_union_different_sizes(self):
        a = Graph.from_edges(2, [(0, 1)])
        b = Graph.from_edges(5, [(3, 4)])
        assert union(a, b).num_nodes == 5

    def test_union_dedupes(self, triangle):
        assert union(triangle, triangle) == triangle

    def test_difference(self):
        a = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        b = Graph.from_edges(4, [(1, 2)])
        diff = difference(a, b)
        assert diff.num_edges == 2
        assert not diff.has_edge(1, 2)

    def test_difference_identity(self, triangle):
        empty = Graph.from_edges(3, [])
        assert difference(triangle, empty) == triangle
        assert difference(triangle, triangle).num_edges == 0


class TestEdgeEdits:
    def test_remove_edges(self, triangle):
        g = remove_edges(triangle, [(0, 1)])
        assert g.num_edges == 2
        assert not g.has_edge(0, 1)

    def test_remove_absent_edge_ignored(self, path4):
        assert remove_edges(path4, [(0, 3)]) == path4

    def test_add_edges(self, path4):
        g = add_edges(path4, [(0, 3)])
        assert g.has_edge(0, 3)
        assert g.num_edges == 4

    def test_add_edges_grows_universe(self):
        g = Graph.from_edges(2, [(0, 1)])
        grown = add_edges(g, [(1, 5)])
        assert grown.num_nodes == 6

    def test_add_nothing(self, triangle):
        assert add_edges(triangle, []) == triangle
