"""Unit tests for the CSR Graph core."""

import numpy as np
import pytest

from repro.graph.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        assert g.num_nodes == 4
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = Graph.from_edges(5, [])
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.neighbors(0).size == 0

    def test_zero_node_graph(self):
        g = Graph.from_edges(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_self_loops_dropped(self):
        g = Graph.from_edges(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_collapse(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1), (0, 2)])
        assert g.num_edges == 2

    def test_symmetrization(self):
        g = Graph.from_edges(3, [(2, 0)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert 2 in g.neighbors(0)
        assert 0 in g.neighbors(2)

    def test_isolated_nodes_allowed(self):
        g = Graph.from_edges(10, [(0, 1)])
        assert g.degree(9) == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(-1, 1)])

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(-1, [])

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 1, 2)])

    def test_raw_csr_validation(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([5]))  # index out of range
        with pytest.raises(ValueError):
            Graph(np.array([1, 1]), np.array([], dtype=np.int64))  # bad start
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 1]), np.array([0, 1]))  # decreasing indptr

    def test_from_edge_arrays_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Graph.from_edge_arrays(3, np.array([0, 1]), np.array([1]))


class TestAccessors:
    def test_neighbors_sorted(self, two_cliques):
        for v in range(two_cliques.num_nodes):
            nbrs = two_cliques.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_degree_matches_neighbors(self, two_cliques):
        for v in range(two_cliques.num_nodes):
            assert two_cliques.degree(v) == two_cliques.neighbors(v).size

    def test_degrees_vector(self, star):
        degs = star.degrees()
        assert degs[0] == 5
        assert np.all(degs[1:] == 1)

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert path4.has_edge(1, 0)
        assert not path4.has_edge(0, 2)
        assert not path4.has_edge(0, 0)

    def test_csr_arrays_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.indices[0] = 99
        with pytest.raises(ValueError):
            triangle.indptr[0] = 1


class TestEdgesIteration:
    def test_edges_each_once_ordered(self, two_cliques):
        edges = list(two_cliques.edges())
        assert len(edges) == two_cliques.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_edge_arrays_matches_edges(self, random_graph):
        src, dst = random_graph.edge_arrays()
        assert list(zip(src.tolist(), dst.tolist())) == list(random_graph.edges())

    def test_iter_and_len(self, path4):
        assert list(path4) == [0, 1, 2, 3]
        assert len(path4) == 4


class TestComparison:
    def test_equality_same_edges(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(2, 1), (1, 0)])
        assert a == b

    def test_inequality_different_edges(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(0, 2)])
        assert a != b

    def test_inequality_different_node_count(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(4, [(0, 1)])
        assert a != b

    def test_eq_non_graph(self, triangle):
        assert triangle != "not a graph"

    def test_repr(self, triangle):
        assert "num_nodes=3" in repr(triangle)
        assert "num_edges=3" in repr(triangle)


class TestSubgraph:
    def test_induced_subgraph(self, two_cliques):
        sub = two_cliques.subgraph([0, 1, 2, 3])
        assert sub.num_nodes == 4
        assert sub.num_edges == 6  # K4

    def test_subgraph_relabels_in_order(self):
        g = Graph.from_edges(5, [(2, 4)])
        sub = g.subgraph([4, 2])
        assert sub.has_edge(0, 1)

    def test_subgraph_rejects_duplicates(self, triangle):
        with pytest.raises(ValueError):
            triangle.subgraph([0, 0])

    def test_subgraph_drops_external_edges(self, two_cliques):
        sub = two_cliques.subgraph([0, 4])
        assert sub.num_edges == 1  # only the bridge


class TestNeighborSets:
    def test_neighbor_sets_match_csr(self, random_graph):
        sets = random_graph.neighbor_sets()
        for v in range(random_graph.num_nodes):
            assert sets[v] == set(random_graph.neighbors(v).tolist())
