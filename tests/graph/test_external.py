"""Tests for out-of-core edge-list ingestion."""

import pytest

from repro.graph.external import iter_edge_file, read_edge_list_chunked
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture
def edge_file(tmp_path, small_web):
    path = tmp_path / "graph.txt"
    write_edge_list(small_web, path)
    return path, small_web


class TestIterEdgeFile:
    def test_streams_pairs(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n0 1\n2 3\n")
        assert list(iter_edge_file(path)) == [(0, 1), (2, 3)]

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            list(iter_edge_file(path))

    def test_negative_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 0\n")
        with pytest.raises(ValueError):
            list(iter_edge_file(path))


class TestChunkedReader:
    def test_matches_in_memory_loader(self, edge_file):
        path, graph = edge_file
        chunked = read_edge_list_chunked(path, num_nodes=graph.num_nodes)
        assert chunked == graph

    def test_tiny_chunks_force_many_runs(self, edge_file):
        path, graph = edge_file
        chunked = read_edge_list_chunked(
            path, num_nodes=graph.num_nodes, chunk_edges=7
        )
        assert chunked == graph

    def test_infers_num_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n5 2\n")
        g = read_edge_list_chunked(path)
        assert g.num_nodes == 6
        assert g.num_edges == 2

    def test_dedup_and_symmetrize(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n0 1\n2 2\n")
        g = read_edge_list_chunked(path, chunk_edges=2)
        assert g.num_edges == 1
        assert not g.has_edge(2, 2)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        assert read_edge_list_chunked(path).num_nodes == 0

    def test_out_of_range_with_explicit_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        with pytest.raises(ValueError, match="exceeds"):
            read_edge_list_chunked(path, num_nodes=5)

    def test_chunk_edges_validated(self, edge_file):
        path, _ = edge_file
        with pytest.raises(ValueError):
            read_edge_list_chunked(path, chunk_edges=0)

    def test_agrees_with_plain_reader_on_messy_input(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 1\n1 3\n0 2\n2 0\n4 4\n1 0\n")
        chunked = read_edge_list_chunked(path, chunk_edges=2)
        plain = read_edge_list(path, num_nodes=chunked.num_nodes)
        assert chunked == plain
