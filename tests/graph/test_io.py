"""I/O round-trip tests: edge lists, adjacency files, summaries, gzip."""

import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.graph import Graph
from repro.graph.io import (
    load_graph,
    read_adjacency,
    read_edge_list,
    read_summary,
    save_graph,
    write_adjacency,
    write_edge_list,
    write_summary,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path, random_graph):
        path = tmp_path / "g.txt"
        write_edge_list(random_graph, path)
        assert read_edge_list(path, num_nodes=random_graph.num_nodes) == random_graph

    def test_gzip_roundtrip(self, tmp_path, two_cliques):
        path = tmp_path / "g.txt.gz"
        write_edge_list(two_cliques, path)
        assert read_edge_list(path) == two_cliques

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% other\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_directed_input_symmetrized(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n2 0\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_negative_id_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(ValueError, match="negative"):
            read_edge_list(path)

    def test_num_nodes_override_keeps_isolated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path, num_nodes=10).num_nodes == 10


class TestAdjacency:
    def test_roundtrip(self, tmp_path, two_cliques):
        path = tmp_path / "g.adj"
        write_adjacency(two_cliques, path)
        assert read_adjacency(path) == two_cliques

    def test_roundtrip_with_isolated(self, tmp_path):
        g = Graph.from_edges(4, [(0, 2)])
        path = tmp_path / "g.adj"
        write_adjacency(g, path)
        assert read_adjacency(path) == g

    def test_missing_separator_raises(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match=":"):
            read_adjacency(path)


class TestDispatch:
    def test_load_save_dispatch_edge_list(self, tmp_path, triangle):
        path = tmp_path / "g.edges"
        save_graph(triangle, path)
        assert load_graph(path) == triangle

    def test_load_save_dispatch_adjacency(self, tmp_path, triangle):
        path = tmp_path / "g.adj"
        save_graph(triangle, path)
        assert load_graph(path) == triangle


class TestSummaryIO:
    def test_summary_roundtrip_reconstructs(self, tmp_path, small_web):
        summary = LDME(k=5, iterations=8, seed=0).summarize(small_web)
        path = tmp_path / "out.summary"
        write_summary(summary, path)
        loaded = read_summary(path)
        assert reconstruct(loaded) == small_web

    def test_summary_roundtrip_preserves_counts(self, tmp_path, small_web):
        summary = LDME(k=5, iterations=8, seed=0).summarize(small_web)
        path = tmp_path / "out.summary"
        write_summary(summary, path)
        loaded = read_summary(path)
        assert loaded.num_supernodes == summary.num_supernodes
        assert loaded.num_superedges == summary.num_superedges
        assert sorted(loaded.corrections.additions) == sorted(
            summary.corrections.additions
        )
        assert sorted(loaded.corrections.deletions) == sorted(
            summary.corrections.deletions
        )

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.summary"
        path.write_text("S\n0 0\n")
        with pytest.raises(ValueError, match="header"):
            read_summary(path)

    def test_data_before_section_raises(self, tmp_path):
        path = tmp_path / "bad.summary"
        path.write_text("#ldme-summary num_nodes=2\n0 0\n")
        with pytest.raises(ValueError, match="section"):
            read_summary(path)


class TestBinaryGraphFormat:
    def test_roundtrip(self, tmp_path, random_graph):
        from repro.graph.io import read_graph_binary, write_graph_binary

        path = tmp_path / "g.npz"
        write_graph_binary(random_graph, path)
        assert read_graph_binary(path) == random_graph

    def test_dispatch_by_extension(self, tmp_path, two_cliques):
        path = tmp_path / "g.npz"
        save_graph(two_cliques, path)
        assert load_graph(path) == two_cliques

    def test_preserves_isolated_nodes(self, tmp_path):
        from repro.graph.io import read_graph_binary, write_graph_binary

        g = Graph.from_edges(10, [(0, 1)])
        path = tmp_path / "g.npz"
        write_graph_binary(g, path)
        assert read_graph_binary(path).num_nodes == 10

    def test_rejects_foreign_archive(self, tmp_path):
        import numpy as np

        from repro.graph.io import read_graph_binary

        path = tmp_path / "junk.npz"
        np.savez(path, other=np.arange(3))
        with pytest.raises(ValueError, match="CSR"):
            read_graph_binary(path)


class TestPartitionCheckpoint:
    def test_roundtrip(self, tmp_path, small_web):
        from repro.core.ldme import LDME
        from repro.graph.io import read_partition, write_partition

        summary = LDME(k=5, iterations=6, seed=0).summarize(small_web)
        path = tmp_path / "part.ckpt"
        write_partition(summary.partition, path)
        loaded = read_partition(path)
        loaded.validate()
        assert loaded.num_supernodes == summary.num_supernodes
        for sid in summary.partition.supernode_ids():
            assert sorted(loaded.members(sid)) == sorted(
                summary.partition.members(sid)
            )

    def test_resume_from_checkpoint(self, tmp_path, small_web):
        from repro.core.ldme import LDME
        from repro.core.reconstruct import verify_lossless
        from repro.graph.io import read_partition, write_partition

        first = LDME(k=5, iterations=4, seed=0).summarize(small_web)
        path = tmp_path / "part.ckpt"
        write_partition(first.partition, path)
        resumed = LDME(k=5, iterations=4, seed=1).summarize(
            small_web, initial_partition=read_partition(path)
        )
        verify_lossless(small_web, resumed)
        assert resumed.objective <= first.objective

    def test_missing_header_raises(self, tmp_path):
        from repro.graph.io import read_partition

        path = tmp_path / "bad.ckpt"
        path.write_text("0 0 1\n")
        with pytest.raises(ValueError, match="header"):
            read_partition(path)

    def test_malformed_line_raises(self, tmp_path):
        from repro.graph.io import read_partition

        path = tmp_path / "bad.ckpt"
        path.write_text("#ldme-partition num_nodes=2\n0\n")
        with pytest.raises(ValueError, match="expected"):
            read_partition(path)
