"""Tests for the Table 1 dataset surrogate registry."""

import pytest

from repro.graph import datasets


class TestRegistry:
    def test_eight_datasets(self):
        assert len(datasets.names()) == 8

    def test_paper_order(self):
        assert datasets.names() == ["CN", "IN", "EU", "H1", "H2", "IC", "UK", "AR"]

    def test_lookup_by_abbrev_and_name(self):
        assert datasets.DATASETS["CN"] is datasets.DATASETS["cnr-2000"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            datasets.load("nope")

    def test_paper_sizes_recorded(self):
        spec = datasets.DATASETS["AR"]
        assert spec.paper_nodes == 22_744_080
        assert spec.paper_edges == 1_116_651_935


class TestSurrogates:
    def test_load_deterministic(self):
        assert datasets.load("CN") == datasets.load("CN")

    def test_surrogate_sizes_monotone(self):
        rows = datasets.table1_rows()
        edges = [row[5] for row in rows]
        assert edges == sorted(edges)

    def test_cn_is_smallest(self):
        rows = {row[1]: row for row in datasets.table1_rows()}
        assert rows["CN"][5] == min(row[5] for row in rows.values())

    def test_surrogates_are_simple_graphs(self):
        g = datasets.load("CN")
        assert not g.has_edge(0, 0)
        assert g.num_edges > 0

    def test_table1_rows_include_paper_and_surrogate(self):
        row = datasets.table1_rows()[0]
        assert row[0] == "cnr-2000"
        assert row[2] > row[4]  # paper size dwarfs surrogate
