"""Differential tests: numpy kernels vs the pure-Python reference.

Property-based (Hypothesis) random graphs, partitions and seeds assert the
vectorized kernels in :mod:`repro.kernels` are **bit-identical** to the
reference implementations they replace:

* ``W`` tables (:func:`repro.kernels.wtable.build_group_w` vs the
  ``GroupAdjacency`` dict loop),
* DOPH signature matrices (bulk numpy vs bulk python vs per-row scalar),
* ``EncodeResult`` — superedges, C+ and C− as *ordered* lists,
* end-to-end LDME summaries under both backends.

These tests are the safety net that lets the numpy backend be the default:
any divergence — including iteration-order or tie-breaking drift — fails
here before it can silently change summary outputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.divide import lsh_divide
from repro.core.encode import encode_sorted
from repro.core.ldme import LDME
from repro.core.merge import merge_group_exact
from repro.core.partition import SupernodePartition
from repro.core.saving import GroupAdjacency
from repro.graph.graph import Graph
from repro.kernels import build_group_w
from repro.kernels.doph import (
    doph_signatures_bulk_numpy,
    doph_signatures_bulk_python,
)
from repro.kernels.encode import encode_sorted_numpy
from repro.lsh.permutation import random_permutation

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def graphs(draw, max_nodes=30, max_edges=90):
    """A small random simple graph (possibly with isolated nodes)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if n < 2 or num_edges == 0:
        return Graph.from_edges(n, [])
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    return Graph.from_edge_arrays(n, src, dst)


def random_partition(graph: Graph, seed: int) -> SupernodePartition:
    """A partition obtained by applying random merges to the singletons."""
    rng = np.random.default_rng(seed)
    partition = SupernodePartition(graph.num_nodes)
    merges = int(rng.integers(0, max(1, graph.num_nodes // 2)))
    for _ in range(merges):
        ids = list(partition.supernode_ids())
        if len(ids) < 2:
            break
        a, b = rng.choice(len(ids), size=2, replace=False)
        partition.merge(ids[int(a)], ids[int(b)])
    return partition


# ---------------------------------------------------------------------------
# W construction
# ---------------------------------------------------------------------------


class TestWTableDifferential:
    @given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_group_w_identical(self, graph, seed):
        partition = random_partition(graph, seed)
        rng = np.random.default_rng(seed)
        ids = list(partition.supernode_ids())
        take = int(rng.integers(1, len(ids) + 1))
        group = [ids[int(i)] for i in
                 rng.choice(len(ids), size=take, replace=False)]
        reference = GroupAdjacency(graph, partition, group, kernels="python")
        kernel = GroupAdjacency(graph, partition, group, kernels="numpy")
        assert reference.w == kernel.w
        assert build_group_w(graph, partition, group) == reference.w

    @given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_w_stays_identical_through_merges(self, graph, seed):
        """apply_merge (shared fold update) keeps both backends in lockstep."""
        partition_a = random_partition(graph, seed)
        partition_b = partition_a.copy()
        group = list(partition_a.supernode_ids())
        ref = GroupAdjacency(graph, partition_a, group, kernels="python")
        ker = GroupAdjacency(graph, partition_b, group, kernels="numpy")
        rng = np.random.default_rng(seed + 1)
        for _ in range(min(4, len(group) - 1)):
            ids = list(ref.w)
            if len(ids) < 2:
                break
            a, b = rng.choice(len(ids), size=2, replace=False)
            sa, xa = partition_a.merge(ids[int(a)], ids[int(b)])
            sb, xb = partition_b.merge(ids[int(a)], ids[int(b)])
            assert (sa, xa) == (sb, xb)
            ref.apply_merge(sa, xa)
            ker.apply_merge(sb, xb)
            assert ref.w == ker.w

    @given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_saving_and_merge_decisions_identical(self, graph, seed):
        partition_a = random_partition(graph, seed)
        partition_b = partition_a.copy()
        group = list(partition_a.supernode_ids())
        if len(group) < 2:
            return
        stats_a = merge_group_exact(
            graph, partition_a, list(group), 0.2,
            seed=np.random.default_rng(seed), kernels="python",
        )
        stats_b = merge_group_exact(
            graph, partition_b, list(group), 0.2,
            seed=np.random.default_rng(seed), kernels="numpy",
        )
        assert stats_a.merges == stats_b.merges
        assert stats_a.candidates_scored == stats_b.candidates_scored
        assert partition_a.members_map() == partition_b.members_map()


# ---------------------------------------------------------------------------
# DOPH signatures
# ---------------------------------------------------------------------------


class TestDophDifferential:
    @given(
        st.integers(min_value=1, max_value=24),   # universe size
        st.integers(min_value=1, max_value=8),    # k
        st.integers(min_value=0, max_value=6),    # rows
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["rotation", "optimal"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_bulk_backends_identical(self, n, k, rows, seed, densification):
        rng = np.random.default_rng(seed)
        perm = random_permutation(n, rng)
        directions = rng.integers(0, 2, size=k).astype(np.int64)
        num_items = int(rng.integers(0, 4 * rows)) if rows else 0
        row_ids = rng.integers(0, max(1, rows), size=num_items)
        item_ids = rng.integers(0, n, size=num_items)
        ref = doph_signatures_bulk_python(
            row_ids, item_ids, rows, perm, k, directions,
            densification=densification,
        )
        ker = doph_signatures_bulk_numpy(
            row_ids, item_ids, rows, perm, k, directions,
            densification=densification,
        )
        assert np.array_equal(ref, ker)

    @given(graphs(), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_divide_groups_identical(self, graph, k, seed):
        partition = random_partition(graph, seed)
        ga, sa = lsh_divide(graph, partition, k, seed=seed, kernels="numpy")
        gb, sb = lsh_divide(graph, partition, k, seed=seed, kernels="python")
        assert ga == gb
        assert sa == sb


# ---------------------------------------------------------------------------
# Encode
# ---------------------------------------------------------------------------


class TestEncodeDifferential:
    @given(graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_encode_result_identical(self, graph, seed):
        partition = random_partition(graph, seed)
        reference = encode_sorted(graph, partition, backend="python")
        kernel = encode_sorted_numpy(graph, partition)
        assert reference.superedges == kernel.superedges
        assert reference.corrections.additions == kernel.corrections.additions
        assert reference.corrections.deletions == kernel.corrections.deletions


# ---------------------------------------------------------------------------
# End to end
# ---------------------------------------------------------------------------


class TestEndToEndDifferential:
    @given(graphs(max_nodes=24, max_edges=60),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_summaries_identical_across_backends(self, graph, k, seed):
        ref = LDME(k=k, iterations=4, seed=seed,
                   kernels="python").summarize(graph)
        ker = LDME(k=k, iterations=4, seed=seed,
                   kernels="numpy").summarize(graph)
        assert ref.objective == ker.objective
        assert ref.superedges == ker.superedges
        assert ref.corrections.additions == ker.corrections.additions
        assert ref.corrections.deletions == ker.corrections.deletions
        assert ref.partition.members_map() == ker.partition.members_map()

    def test_invalid_backend_rejected(self):
        graph = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError, match="kernels"):
            LDME(kernels="cython")
        with pytest.raises(ValueError, match="kernels"):
            GroupAdjacency(graph, SupernodePartition(3), [0], kernels="jax")
        with pytest.raises(ValueError, match="backend"):
            encode_sorted(graph, SupernodePartition(3), backend="jax")


# ---------------------------------------------------------------------------
# Observability differential: identical traces and counters
# ---------------------------------------------------------------------------


class TestObservabilityDifferential:
    """The two backends must be *observably* identical, not just in their
    outputs: same span tree (same span ids — the run span key is
    deliberately backend-free) and the same pipeline counter values.
    Instrumentation drift between backends would poison the golden-trace
    oracle, so it is checked with the same Hypothesis inputs as the
    output differential above."""

    @staticmethod
    def _run_observed(graph, k, seed, kernels):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        tracer = Tracer(seed=seed)
        registry = MetricsRegistry()
        with obs_trace.use(tracer), obs_metrics.use(registry):
            LDME(k=k, iterations=3, seed=seed,
                 kernels=kernels).summarize(graph)
        return tracer, registry

    COUNTERS = (
        "ldme_merges_accepted_total",
        "ldme_merge_candidates_scored_total",
        "ldme_superedges_total",
        "ldme_correction_additions_total",
        "ldme_correction_deletions_total",
    )

    @given(graphs(max_nodes=20, max_edges=50),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_span_structure_and_ids_identical(self, graph, k, seed):
        ref_trace, _ = self._run_observed(graph, k, seed, "python")
        ker_trace, _ = self._run_observed(graph, k, seed, "numpy")

        def facts(tracer):
            return {
                (s.name, s.key, s.span_id, s.parent_id)
                for s in tracer.spans
            }

        assert facts(ref_trace) == facts(ker_trace)

    @given(graphs(max_nodes=20, max_edges=50),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_counters_identical(self, graph, k, seed):
        _, ref_metrics = self._run_observed(graph, k, seed, "python")
        _, ker_metrics = self._run_observed(graph, k, seed, "numpy")
        for name in self.COUNTERS:
            assert ref_metrics.counter(name) == ker_metrics.counter(name), name

    @given(graphs(max_nodes=20, max_edges=50),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_span_attributes_differ_only_in_backend(self, graph, k, seed):
        ref_trace, _ = self._run_observed(graph, k, seed, "python")
        ker_trace, _ = self._run_observed(graph, k, seed, "numpy")

        def normalized(tracer):
            spans = {}
            for s in tracer.spans:
                attrs = {
                    key: value for key, value in s.attributes.items()
                    if key not in ("backend", "kernels")
                }
                spans[s.span_id] = (s.name, s.key, attrs)
            return spans

        assert normalized(ref_trace) == normalized(ker_trace)
