"""Kernel-suite fixtures."""

import pytest

from repro.graph import datasets
from repro.kernels.shm import leaked_segments


@pytest.fixture(autouse=True)
def shm_leak_sentinel():
    """Fail any test in this package that leaves an arena segment behind.

    Runs after *every* kernel test — including the SIGKILL chaos cases —
    so a cleanup regression is pinned to the test that caused it instead
    of surfacing as a mystery ENOSPC later.
    """
    before = set(leaked_segments())
    yield
    fresh = [name for name in leaked_segments() if name not in before]
    assert fresh == [], f"test leaked shared-memory segments: {fresh}"


@pytest.fixture(scope="session")
def dataset_cache():
    """Session-cached Table 1 surrogates (golden runs reuse the graph)."""
    cache = {}

    def load(name: str):
        if name not in cache:
            cache[name] = datasets.load(name)
        return cache[name]

    return load
