"""Kernel-suite fixtures."""

import pytest

from repro.graph import datasets


@pytest.fixture(scope="session")
def dataset_cache():
    """Session-cached Table 1 surrogates (golden runs reuse the graph)."""
    cache = {}

    def load(name: str):
        if name not in cache:
            cache[name] = datasets.load(name)
        return cache[name]

    return load
