"""Golden end-to-end fixtures guarding determinism across the kernels knob.

Summary shapes for fixed seeds on the bundled Table 1 surrogates, pinned
once and asserted under **both** kernel backends and under
``MultiprocessLDME``. A change to any hot-path kernel that shifts a single
merge decision, superedge or correction edge fails here.

The serial and multiprocess pins differ (the multiprocess planner works
against an iteration-start snapshot — the paper's Spark staleness
semantics), but each must be identical across ``kernels="python"`` and
``kernels="numpy"`` and stable across runs.
"""

import multiprocessing

import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.distributed.multiprocess import MultiprocessLDME
from repro.graph import datasets

BACKENDS = ("python", "numpy")

#: (dataset, k, iterations, seed) → pinned
#: (objective, supernodes, superedges, additions, deletions)
SERIAL_GOLDEN = {
    ("CN", 5, 5, 7): (4449, 791, 3245, 1048, 258),
    ("IN", 20, 4, 3): (12572, 1894, 12551, 21, 0),
}

MULTIPROCESS_GOLDEN = {
    ("CN", 5, 5, 7): (4292, 771, 3000, 1050, 330),
    ("IN", 20, 4, 3): (12572, 1895, 12555, 17, 0),
}

fork_available = "fork" in multiprocessing.get_all_start_methods()


def _shape(summary):
    return (
        summary.objective,
        summary.num_supernodes,
        len(summary.superedges),
        len(summary.corrections.additions),
        len(summary.corrections.deletions),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(SERIAL_GOLDEN))
def test_serial_golden(dataset_cache, case, backend):
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    summary = LDME(
        k=k, iterations=iterations, seed=seed, kernels=backend
    ).summarize(graph)
    assert _shape(summary) == SERIAL_GOLDEN[case]
    verify_lossless(graph, summary)


@pytest.mark.skipif(not fork_available, reason="fork start method required")
@pytest.mark.parametrize("shared_memory", ["off", "on"])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(MULTIPROCESS_GOLDEN))
def test_multiprocess_golden(dataset_cache, case, backend, shared_memory):
    """One pin for both transports: the zero-copy shared-memory path must
    reproduce the pickle path's summaries bit-for-bit."""
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    summary = MultiprocessLDME(
        num_workers=2, k=k, iterations=iterations, seed=seed,
        kernels=backend, shared_memory=shared_memory,
    ).summarize(graph)
    assert _shape(summary) == MULTIPROCESS_GOLDEN[case]
    verify_lossless(graph, summary)


@pytest.mark.parametrize("case", sorted(SERIAL_GOLDEN))
def test_backends_bit_identical_end_to_end(dataset_cache, case):
    """Beyond the pinned shape: the full outputs must match element-wise."""
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    ref = LDME(k=k, iterations=iterations, seed=seed,
               kernels="python").summarize(graph)
    ker = LDME(k=k, iterations=iterations, seed=seed,
               kernels="numpy").summarize(graph)
    assert ref.superedges == ker.superedges
    assert ref.corrections.additions == ker.corrections.additions
    assert ref.corrections.deletions == ker.corrections.deletions
    assert ref.partition.members_map() == ker.partition.members_map()
