"""Golden end-to-end fixtures guarding determinism across the kernels knob.

Summary shapes for fixed seeds on the bundled Table 1 surrogates, pinned
once and asserted under **both** kernel backends and under
``MultiprocessLDME``. A change to any hot-path kernel that shifts a single
merge decision, superedge or correction edge fails here.

The serial and multiprocess pins differ (the multiprocess planner works
against an iteration-start snapshot — the paper's Spark staleness
semantics), but each must be identical across ``kernels="python"`` and
``kernels="numpy"`` and stable across runs.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.distributed.multiprocess import MultiprocessLDME
from repro.graph import datasets
from repro.queries.compiled import CompiledSummaryIndex

BACKENDS = ("python", "numpy")

#: (dataset, k, iterations, seed) → pinned
#: (objective, supernodes, superedges, additions, deletions)
SERIAL_GOLDEN = {
    ("CN", 5, 5, 7): (4449, 791, 3245, 1048, 258),
    ("IN", 20, 4, 3): (12572, 1894, 12551, 21, 0),
}

MULTIPROCESS_GOLDEN = {
    ("CN", 5, 5, 7): (4292, 771, 3000, 1050, 330),
    ("IN", 20, 4, 3): (12572, 1895, 12555, 17, 0),
}

#: Summary-native analytics pinned on the same fixture summaries:
#: (hist_bins, hist_sum, hist_bound, top_pagerank_node,
#:  top_rank@9dp, pagerank_bound@9dp, triangles@3dp,
#:  triangles_bound@3dp, modularity@9dp). Lossless fixtures, so the
#: degree-histogram bound is exactly 0.0 and hist_sum = num_nodes.
SERIAL_ANALYTICS_GOLDEN = {
    ("CN", 5, 5, 7): (
        34, 1200, 0.0, 510, 0.001879625, 0.000591717,
        15927.589, 16114.589, 0.02244534,
    ),
    ("IN", 20, 4, 3): (
        599, 2048, 0.0, 0, 0.02233245, 0.000591602,
        58221.752, 64.752, -0.003656053,
    ),
}

MULTIPROCESS_ANALYTICS_GOLDEN = {
    ("CN", 5, 5, 7): (
        34, 1200, 0.0, 510, 0.001879625, 0.000591717,
        16858.72, 17164.72, 0.025463664,
    ),
    ("IN", 20, 4, 3): (
        599, 2048, 0.0, 0, 0.02233245, 0.000591602,
        58223.083, 48.083, -0.003656046,
    ),
}

fork_available = "fork" in multiprocessing.get_all_start_methods()


def _analytics_pin(summary):
    """Compact analytics fingerprint of one summary (rounded floats)."""
    analytics = CompiledSummaryIndex(summary).analytics()
    hist, hist_bound = analytics.degree_histogram()
    rank, pr_bound = analytics.pagerank()
    top = int(np.lexsort((np.arange(rank.size), -rank))[0])
    triangles, tri_bound = analytics.triangles()
    mod, _ = analytics.modularity()
    return (
        int(hist.size), int(hist.sum()), float(hist_bound),
        top, round(float(rank[top]), 9), round(float(pr_bound), 9),
        round(triangles, 3), round(tri_bound, 3),
        round(mod, 9),
    )


def _shape(summary):
    return (
        summary.objective,
        summary.num_supernodes,
        len(summary.superedges),
        len(summary.corrections.additions),
        len(summary.corrections.deletions),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(SERIAL_GOLDEN))
def test_serial_golden(dataset_cache, case, backend):
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    summary = LDME(
        k=k, iterations=iterations, seed=seed, kernels=backend
    ).summarize(graph)
    assert _shape(summary) == SERIAL_GOLDEN[case]
    verify_lossless(graph, summary)


@pytest.mark.skipif(not fork_available, reason="fork start method required")
@pytest.mark.parametrize("shared_memory", ["off", "on"])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(MULTIPROCESS_GOLDEN))
def test_multiprocess_golden(dataset_cache, case, backend, shared_memory):
    """One pin for both transports: the zero-copy shared-memory path must
    reproduce the pickle path's summaries bit-for-bit."""
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    summary = MultiprocessLDME(
        num_workers=2, k=k, iterations=iterations, seed=seed,
        kernels=backend, shared_memory=shared_memory,
    ).summarize(graph)
    assert _shape(summary) == MULTIPROCESS_GOLDEN[case]
    verify_lossless(graph, summary)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(SERIAL_ANALYTICS_GOLDEN))
def test_serial_analytics_golden(dataset_cache, case, backend):
    """Summary-native analytics (values *and* bounds) pinned on the
    serial fixture summaries, identical across kernel backends."""
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    summary = LDME(
        k=k, iterations=iterations, seed=seed, kernels=backend
    ).summarize(graph)
    assert _analytics_pin(summary) == SERIAL_ANALYTICS_GOLDEN[case]


@pytest.mark.skipif(not fork_available, reason="fork start method required")
@pytest.mark.parametrize("shared_memory", ["off", "on"])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", sorted(MULTIPROCESS_ANALYTICS_GOLDEN))
def test_multiprocess_analytics_golden(dataset_cache, case, backend,
                                       shared_memory):
    """Same pins through the multiprocess planner, for both transports:
    pickle and the zero-copy shared-memory arena must produce summaries
    whose analytics (values and bounds) match bit-for-bit."""
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    summary = MultiprocessLDME(
        num_workers=2, k=k, iterations=iterations, seed=seed,
        kernels=backend, shared_memory=shared_memory,
    ).summarize(graph)
    assert _analytics_pin(summary) == MULTIPROCESS_ANALYTICS_GOLDEN[case]


@pytest.mark.parametrize("case", sorted(SERIAL_GOLDEN))
def test_backends_bit_identical_end_to_end(dataset_cache, case):
    """Beyond the pinned shape: the full outputs must match element-wise."""
    name, k, iterations, seed = case
    graph = dataset_cache(name)
    ref = LDME(k=k, iterations=iterations, seed=seed,
               kernels="python").summarize(graph)
    ker = LDME(k=k, iterations=iterations, seed=seed,
               kernels="numpy").summarize(graph)
    assert ref.superedges == ker.superedges
    assert ref.corrections.additions == ker.corrections.additions
    assert ref.corrections.deletions == ker.corrections.deletions
    assert ref.partition.members_map() == ker.partition.members_map()
