"""Lifecycle tests for :mod:`repro.kernels.shm`.

The arena's contract is that ``/dev/shm`` is clean after every exit mode
the resilience suite can produce — normal completion, a SIGKILL'd worker
(the segments must *survive* the worker and be unlinked by the parent), a
mid-run ``KeyboardInterrupt`` — and that integrity failures surface as the
typed :class:`ArenaDescriptorError` and degrade the run to the pickle
transport with the fallback counter bumped, never as a wrong answer.

The module-level leak sentinel in ``conftest.py`` additionally asserts no
test in this package leaves a segment behind.
"""

import dataclasses
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.distributed.multiprocess import MultiprocessLDME
from repro.graph.generators import web_host_graph
from repro.kernels.shm import (
    ArenaDescriptorError,
    ArenaError,
    SharedGraphArena,
    leaked_segments,
)
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector, WorkerFault

fork_available = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not fork_available, reason="fork start method required"
)


def small_graph():
    return web_host_graph(num_hosts=5, host_size=9, seed=2)


def make_algo(**kwargs):
    # CI's shm-kernels job sets REPRO_TEST_KERNELS to run this suite once
    # per backend; locally it defaults to the vectorized kernels.
    kwargs.setdefault("kernels", os.environ.get("REPRO_TEST_KERNELS", "numpy"))
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("k", 4)
    kwargs.setdefault("iterations", 3)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("shared_memory", "on")
    kwargs.setdefault("batch_timeout", 120.0)
    return MultiprocessLDME(**kwargs)


class TestArenaUnit:
    def test_roundtrip_and_unlink(self):
        data = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 7),
        }
        arena = SharedGraphArena.create(data, outputs={
            "out": ((3, 2), np.int64),
        })
        names = [s.segment for s in arena.descriptor.arrays]
        try:
            attached = SharedGraphArena.attach(arena.descriptor)
            for name, expect in data.items():
                assert np.array_equal(attached.array(name), expect)
            assert np.array_equal(
                attached.array("out"), np.zeros((3, 2), dtype=np.int64)
            )
            # Worker writes land in the creator's view zero-copy.
            attached.array("out")[1, 1] = 42
            assert arena.array("out")[1, 1] == 42
            attached.close()
        finally:
            arena.unlink()
        assert leaked_segments(names) == []

    def test_context_manager_unlinks(self):
        with SharedGraphArena.create(
            {"x": np.ones(4, dtype=np.int64)}
        ) as arena:
            names = [s.segment for s in arena.descriptor.arrays]
            assert leaked_segments(names) == names
        assert leaked_segments(names) == []

    def test_attach_missing_segment_raises_typed(self):
        arena = SharedGraphArena.create({"x": np.ones(4, dtype=np.int64)})
        descriptor = arena.descriptor
        arena.unlink()
        with pytest.raises(ArenaDescriptorError, match="does not exist"):
            SharedGraphArena.attach(descriptor)

    def test_attach_corrupted_payload_raises_typed(self):
        arena = SharedGraphArena.create({"x": np.arange(8, dtype=np.int64)})
        try:
            arena.array("x")[3] = -1          # corrupt after CRC pinning
            with pytest.raises(ArenaDescriptorError, match="CRC mismatch"):
                SharedGraphArena.attach(arena.descriptor)
            with pytest.raises(ArenaDescriptorError, match="CRC mismatch"):
                arena.self_check()
        finally:
            arena.unlink()

    def test_attach_tampered_descriptor_raises_typed(self):
        arena = SharedGraphArena.create({"x": np.arange(8, dtype=np.int64)})
        try:
            spec = arena.descriptor.arrays[0]
            grown = dataclasses.replace(spec, shape=(1024 * 1024,))
            tampered = dataclasses.replace(arena.descriptor, arrays=(grown,))
            with pytest.raises(ArenaDescriptorError, match="bytes"):
                SharedGraphArena.attach(tampered)
        finally:
            arena.unlink()

    def test_attacher_may_not_unlink(self):
        arena = SharedGraphArena.create({"x": np.ones(2, dtype=np.int64)})
        try:
            attached = SharedGraphArena.attach(arena.descriptor)
            with pytest.raises(ArenaError, match="creating process"):
                attached.unlink()
            attached.close()
        finally:
            arena.unlink()

    def test_creation_metrics(self):
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            arena = SharedGraphArena.create(
                {"x": np.arange(64, dtype=np.int64)}, label="graph"
            )
            assert registry.counter(
                "shm_arena_created_total", labels={"label": "graph"}
            ) == 1
            assert registry.gauge("shm_arena_live_bytes") >= 64 * 8
            arena.unlink()
            assert registry.gauge("shm_arena_live_bytes") == 0


class TestRunLifecycle:
    def test_normal_exit_unlinks_everything(self):
        graph = small_graph()
        summary = make_algo().summarize(graph)
        verify_lossless(graph, summary)
        assert leaked_segments() == []

    def test_keyboard_interrupt_unlinks_everything(self):
        graph = small_graph()

        def boom(state):
            if state.iteration == 2:
                raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            make_algo().summarize(graph, iteration_hook=boom)
        assert leaked_segments() == []

    def test_sigkilled_worker_cannot_leak_or_destroy(self):
        """A worker crash (os._exit, modelling SIGKILL/OOM) mid-iteration:
        the supervisor retries on a fresh pool, the summary is unchanged,
        and the parent still unlinks every segment."""
        graph = small_graph()
        baseline = make_algo().summarize(graph)
        injector = FaultInjector([
            WorkerFault(iteration=1, batch_index=0, attempt=0, kind="crash"),
            WorkerFault(iteration=2, batch_index=1, attempt=0, kind="crash"),
        ])
        algo = make_algo(fault_injector=injector)
        chaotic = algo.summarize(graph)
        assert chaotic.superedges == baseline.superedges
        assert (
            chaotic.partition.members_map()
            == baseline.partition.members_map()
        )
        assert leaked_segments() == []

    def test_crash_storm_falls_back_serially_and_stays_clean(self):
        """Faults on every attempt exhaust retries; the parent plans the
        batch serially from its own arena views and cleans up."""
        graph = small_graph()
        baseline = make_algo().summarize(graph)
        injector = FaultInjector([
            WorkerFault(iteration=1, batch_index=0, attempt=a, kind="crash")
            for a in range(4)
        ])
        algo = make_algo(fault_injector=injector, max_batch_retries=1)
        summary = algo.summarize(graph)
        assert summary.superedges == baseline.superedges
        assert summary.stats.serial_fallbacks >= 1
        assert leaked_segments() == []

    def test_corrupt_arena_degrades_to_pickle_with_counter(self):
        """Pre-dispatch CRC failure raises the typed error in the parent,
        bumps the fallback counters, and the run completes on the pickle
        transport with the identical summary."""
        graph = small_graph()
        baseline = make_algo(shared_memory="off").summarize(graph)
        algo = make_algo(shared_memory="on")
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            arena = algo._ensure_graph_arena(graph)
            arena.array("indices")[0] += 1    # corrupt after CRC pinning
            summary = algo.summarize(graph)
            assert registry.counter("shm_fallback_total") >= 1
        assert summary.stats.shm_fallbacks == 1
        assert summary.superedges == baseline.superedges
        assert (
            summary.partition.members_map()
            == baseline.partition.members_map()
        )
        assert leaked_segments() == []

    def test_shared_memory_off_never_creates_segments(self):
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            make_algo(shared_memory="off").summarize(small_graph())
            for label in ("graph", "merge", "signatures"):
                assert registry.counter(
                    "shm_arena_created_total", labels={"label": label}
                ) == 0

    def test_attach_counter_reported(self):
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            make_algo().summarize(small_graph())
            assert registry.counter("shm_arena_attach_total") >= 1


class TestParentHardKill:
    def test_parent_sigkill_leaves_tracker_to_clean(self, tmp_path):
        """A parent hard-killed mid-run cannot run its finally blocks; the
        resource tracker (which survives the kill) unlinks the registered
        segments. We assert the child got far enough to create an arena,
        then that nothing it created is left after the tracker winds down."""
        marker = tmp_path / "arena_names.txt"
        child = textwrap.dedent(
            f"""
            import os, signal
            from repro.distributed.multiprocess import MultiprocessLDME
            from repro.graph.generators import web_host_graph

            algo = MultiprocessLDME(
                num_workers=2, k=4, iterations=5, seed=7,
                shared_memory="on", batch_timeout=120.0,
            )
            graph = web_host_graph(num_hosts=5, host_size=9, seed=2)
            arena = algo._ensure_graph_arena(graph)
            with open({str(marker)!r}, "w") as fh:
                for spec in arena.descriptor.arrays:
                    fh.write(spec.segment + "\\n")
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, timeout=120,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        names = marker.read_text().split()
        assert names, "child never created its arena"
        # The tracker process unlinks asynchronously after the parent
        # dies; give it a moment before asserting.
        import time

        deadline = time.monotonic() + 30.0
        while leaked_segments(names) and time.monotonic() < deadline:
            time.sleep(0.2)
        assert leaked_segments(names) == []


class TestSerialUnaffected:
    def test_serial_ldme_ignores_shm_config(self):
        """The knob is accepted by the config/serial driver (so configs
        are portable) without any arena machinery engaging."""
        graph = small_graph()
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            serial = LDME(k=4, iterations=3, seed=7).summarize(graph)
            assert registry.counter(
                "shm_arena_created_total", labels={"label": "graph"}
            ) == 0
        mp = make_algo(shared_memory="off").summarize(graph)
        assert serial.num_nodes == mp.num_nodes
