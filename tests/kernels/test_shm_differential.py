"""Differential tests for the shared-memory-era kernels.

Property-based (Hypothesis) inputs assert the three transformations this
layer is allowed to make are all **bit-identical** rewrites:

* the chunked cache-blocked DOPH scatter — any ``chunk_rows`` value
  (1, a prime, larger than the entry list) produces the same signature
  matrix as the one-shot scatter and the pure-Python reference;
* partial scatters over an arbitrary partitioning of the entries,
  min-reduced together, equal the single-pass scatter (the invariant the
  multiprocess signature fan-out rests on);
* the partitioned encode sort — any bucket count yields the exact
  permutation of the global ``np.lexsort``, hence identical
  superedge/C+/C− lists;
* end-to-end: ``MultiprocessLDME`` summaries are identical across
  ``shared_memory={on,off}`` × ``kernels={numpy,python}``.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encode import encode_sorted
from repro.distributed.multiprocess import MultiprocessLDME
from repro.graph.graph import Graph
from repro.kernels.doph import (
    doph_densify,
    doph_scatter_min,
    doph_signatures_bulk_numpy,
    doph_signatures_bulk_python,
)
from repro.kernels.encode import partitioned_lexsort
from repro.lsh.permutation import random_permutation

from .test_differential import graphs, random_partition

fork_available = "fork" in multiprocessing.get_all_start_methods()


@st.composite
def scatter_inputs(draw, max_universe=40, max_rows=8):
    """Random ``(row, item)`` entry lists plus the DOPH parameters."""
    n = draw(st.integers(min_value=1, max_value=max_universe))
    k = draw(st.integers(min_value=1, max_value=8))
    rows = draw(st.integers(min_value=0, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    num_items = int(rng.integers(0, 8 * rows)) if rows else 0
    row_ids = rng.integers(0, max(1, rows), size=num_items).astype(np.int64)
    item_ids = rng.integers(0, n, size=num_items).astype(np.int64)
    perm = random_permutation(n, rng)
    directions = rng.integers(0, 2, size=k).astype(np.int64)
    return row_ids, item_ids, rows, perm, k, directions


class TestChunkedScatterDifferential:
    @given(scatter_inputs(), st.sampled_from([1, 3, 7, 13, 10_000]))
    @settings(max_examples=120, deadline=None)
    def test_any_chunking_matches_bulk(self, inputs, chunk_rows):
        """chunk_rows of 1, a small prime, or far beyond the entry count
        all reproduce the unchunked scatter bit-for-bit."""
        row_ids, item_ids, rows, perm, k, directions = inputs
        bulk = doph_signatures_bulk_numpy(
            row_ids, item_ids, rows, perm, k, directions
        )
        chunked = doph_signatures_bulk_numpy(
            row_ids, item_ids, rows, perm, k, directions,
            chunk_rows=chunk_rows,
        )
        assert np.array_equal(bulk, chunked)

    @given(scatter_inputs(), st.sampled_from([1, 5, 1 << 18]))
    @settings(max_examples=60, deadline=None)
    def test_chunked_matches_python_reference(self, inputs, chunk_rows):
        row_ids, item_ids, rows, perm, k, directions = inputs
        ref = doph_signatures_bulk_python(
            row_ids, item_ids, rows, perm, k, directions
        )
        ker = doph_signatures_bulk_numpy(
            row_ids, item_ids, rows, perm, k, directions,
            chunk_rows=chunk_rows,
        )
        assert np.array_equal(ref, ker)

    @given(scatter_inputs(), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_partial_scatters_reduce_to_single_pass(
        self, inputs, num_parts, split_seed
    ):
        """An arbitrary partitioning of the entries, scattered separately
        and min-reduced, equals the one-pass scatter — the exactness
        guarantee behind the multiprocess signature fan-out."""
        row_ids, item_ids, rows, perm, k, directions = inputs
        single = doph_scatter_min(row_ids, item_ids, rows, perm, k)
        rng = np.random.default_rng(split_seed)
        cuts = np.sort(rng.integers(0, item_ids.size + 1, size=num_parts - 1))
        bounds = np.concatenate([[0], cuts, [item_ids.size]])
        partials = np.stack([
            doph_scatter_min(
                row_ids[lo:hi], item_ids[lo:hi], rows, perm, k,
                chunk_rows=int(rng.integers(1, 9)),
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ])
        reduced = np.minimum.reduce(partials, axis=0)
        assert np.array_equal(single, reduced)
        assert np.array_equal(
            doph_densify(reduced.copy(), rows, k, directions),
            doph_densify(single.copy(), rows, k, directions),
        )


class TestPartitionedEncodeDifferential:
    @given(
        st.integers(min_value=0, max_value=200),   # number of keys
        st.integers(min_value=1, max_value=60),    # key value bound
        st.sampled_from([0, 1, 2, 3, 7, 500]),     # partition counts
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_partitioned_lexsort_exact_permutation(
        self, size, bound, partitions, seed
    ):
        rng = np.random.default_rng(seed)
        lo = rng.integers(0, bound, size=size).astype(np.int64)
        hi = rng.integers(0, bound, size=size).astype(np.int64)
        assert np.array_equal(
            partitioned_lexsort(lo, hi, partitions),
            np.lexsort((hi, lo)),
        )

    @given(graphs(), st.sampled_from([2, 3, 5, 64]),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_encode_identical_for_any_partition_count(
        self, graph, partitions, seed
    ):
        partition = random_partition(graph, seed)
        reference = encode_sorted(graph, partition, backend="python")
        bucketed = encode_sorted(
            graph, partition, backend="numpy", partitions=partitions
        )
        assert reference.superedges == bucketed.superedges
        assert (
            reference.corrections.additions == bucketed.corrections.additions
        )
        assert (
            reference.corrections.deletions == bucketed.corrections.deletions
        )


@pytest.mark.skipif(not fork_available, reason="fork start method required")
class TestSharedMemoryEndToEnd:
    """The transport knob must never touch the output: summaries are
    element-identical across ``shared_memory`` × ``kernels``."""

    @staticmethod
    def _summarize(graph, seed, shared_memory, kernels):
        algo = MultiprocessLDME(
            num_workers=2, k=4, iterations=3, seed=seed,
            kernels=kernels, shared_memory=shared_memory,
            batch_timeout=120.0,
        )
        return algo.summarize(graph)

    @given(graphs(max_nodes=24, max_edges=70),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_summaries_identical_across_transport_and_kernels(
        self, graph, seed
    ):
        baseline = self._summarize(graph, seed, "off", "numpy")
        for shared_memory in ("on", "off"):
            for kernels in ("numpy", "python"):
                if (shared_memory, kernels) == ("off", "numpy"):
                    continue
                other = self._summarize(graph, seed, shared_memory, kernels)
                assert baseline.superedges == other.superedges
                assert (
                    baseline.corrections.additions
                    == other.corrections.additions
                )
                assert (
                    baseline.corrections.deletions
                    == other.corrections.deletions
                )
                assert (
                    baseline.partition.members_map()
                    == other.partition.members_map()
                )

    def test_signature_fanout_identical(self):
        """Force the parallel scatter fan-out (normally gated on graph
        size) and require identical signatures end to end."""
        from repro.graph.generators import web_host_graph

        graph = web_host_graph(num_hosts=6, host_size=10, seed=1)
        off = self._summarize(graph, 7, "off", "numpy")
        algo = MultiprocessLDME(
            num_workers=2, k=4, iterations=3, seed=7,
            kernels="numpy", shared_memory="on", batch_timeout=120.0,
        )
        algo.signature_fanout_min_nnz = 0
        on = algo.summarize(graph)
        assert off.superedges == on.superedges
        assert off.corrections.additions == on.corrections.additions
        assert off.corrections.deletions == on.corrections.deletions
        assert off.partition.members_map() == on.partition.members_map()
