"""Scalar-vs-bulk DOPH property tests (Algorithm 2).

``doph_signature`` applied to each node's vector must equal the
corresponding row of the bulk path — for **every** densification mode and
**both** bulk backends, including the all-``EMPTY`` isolated-node sentinel
(rows with no items) and the termination-hostile cases where the optimal
probe step shares a factor with ``k`` (``69_069 ≡ 0 mod 3``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lsh.doph import EMPTY, doph_signature, doph_signatures_bulk
from repro.lsh.permutation import random_permutation

DENSIFICATIONS = ("rotation", "optimal")
BACKENDS = ("python", "numpy")


@st.composite
def bulk_inputs(draw):
    """Random (row_ids, item_ids, num_rows, perm, k, directions)."""
    n = draw(st.integers(min_value=1, max_value=30))
    k = draw(st.integers(min_value=1, max_value=9))
    num_rows = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    perm = random_permutation(n, rng)
    directions = rng.integers(0, 2, size=k).astype(np.int64)
    num_items = int(rng.integers(0, 5 * num_rows))
    row_ids = rng.integers(0, num_rows, size=num_items)
    item_ids = rng.integers(0, n, size=num_items)
    return row_ids, item_ids, num_rows, perm, k, directions


class TestScalarMatchesBulk:
    @pytest.mark.parametrize("densification", DENSIFICATIONS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(inputs=bulk_inputs())
    @settings(max_examples=60, deadline=None)
    def test_every_row_equals_scalar(self, backend, densification, inputs):
        row_ids, item_ids, num_rows, perm, k, directions = inputs
        bulk = doph_signatures_bulk(
            row_ids, item_ids, num_rows, perm, k, directions,
            densification=densification, backend=backend,
        )
        assert bulk.shape == (num_rows, k)
        for r in range(num_rows):
            items = item_ids[row_ids == r]
            expected = doph_signature(
                items, perm, k, directions, densification=densification
            )
            assert np.array_equal(bulk[r], expected), (
                f"row {r} diverged under backend={backend}, "
                f"densification={densification}"
            )

    @pytest.mark.parametrize("densification", DENSIFICATIONS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_empty_rows_are_all_empty_sentinel(self, backend,
                                                   densification):
        """Isolated supernodes (no items at all) keep the EMPTY sentinel."""
        perm = random_permutation(12, np.random.default_rng(0))
        directions = np.ones(4, dtype=np.int64)
        bulk = doph_signatures_bulk(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            3, perm, 4, directions,
            densification=densification, backend=backend,
        )
        assert bulk.shape == (3, 4)
        assert np.all(bulk == EMPTY)

    @pytest.mark.parametrize("densification", DENSIFICATIONS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_empty_and_populated_rows(self, backend, densification):
        """Empty rows stay EMPTY while neighbours densify normally."""
        rng = np.random.default_rng(3)
        perm = random_permutation(20, rng)
        directions = rng.integers(0, 2, size=5).astype(np.int64)
        row_ids = np.array([0, 0, 2], dtype=np.int64)   # row 1 has no items
        item_ids = np.array([4, 11, 7], dtype=np.int64)
        bulk = doph_signatures_bulk(
            row_ids, item_ids, 3, perm, 5, directions,
            densification=densification, backend=backend,
        )
        assert np.all(bulk[1] == EMPTY)
        for r in (0, 2):
            expected = doph_signature(
                item_ids[row_ids == r], perm, 5, directions,
                densification=densification,
            )
            assert np.array_equal(bulk[r], expected)
            assert np.all(bulk[r] >= 0)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", (3, 6, 9))
    def test_optimal_terminates_when_k_divisible_by_three(self, backend, k):
        """Regression: 69_069 ≡ 0 mod 3 used to freeze the hashed probe.

        The probe walk now degrades to a bounded linear scan after k
        hashed attempts, so ks sharing a factor with the step terminate —
        and scalar and bulk still agree on the result.
        """
        rng = np.random.default_rng(11)
        perm = random_permutation(6 * k, rng)
        for trial in range(20):
            directions = rng.integers(0, 2, size=k).astype(np.int64)
            items = rng.integers(0, 6 * k, size=2)
            scalar = doph_signature(items, perm, k, directions,
                                    densification="optimal")
            bulk = doph_signatures_bulk(
                np.zeros(2, dtype=np.int64), items, 1, perm, k, directions,
                densification="optimal", backend=backend,
            )
            assert np.array_equal(bulk[0], scalar)
            assert np.all(scalar >= 0)
