"""Shared fixtures: small deterministic graphs used across the suite."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, web_host_graph
from repro.graph.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """K3: the smallest graph with a superloop opportunity."""
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    """P4: 0-1-2-3."""
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star() -> Graph:
    """Star with hub 0 and 5 leaves (identical leaf neighbourhoods)."""
    return Graph.from_edges(6, [(0, i) for i in range(1, 6)])


@pytest.fixture
def two_cliques() -> Graph:
    """Two K4s joined by one bridge — classic summarization shape."""
    edges = []
    for block in (range(0, 4), range(4, 8)):
        block = list(block)
        edges += [(u, v) for i, u in enumerate(block) for v in block[i + 1:]]
    edges.append((0, 4))
    return Graph.from_edges(8, edges)


@pytest.fixture
def bipartite_block() -> Graph:
    """Complete bipartite K3,3 plus an isolated node."""
    return Graph.from_edges(7, [(u, v) for u in range(3) for v in range(3, 6)])


@pytest.fixture
def small_web() -> Graph:
    """A small template-structured web graph (compressible)."""
    return web_host_graph(num_hosts=6, host_size=12, seed=42)


@pytest.fixture
def random_graph() -> Graph:
    """A fixed mid-density random graph."""
    return erdos_renyi(40, 0.15, seed=123)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
