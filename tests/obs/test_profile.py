"""Profiler hooks: kernel attribution, the decorator seam, the sampler.

The contract under test is "free when off": with no active profiler the
decorated kernels run undisturbed (the overhead bound itself is enforced
in ``benchmarks/test_obs_overhead.py``), and with one installed, every
call is attributed to its kernel name with exact call counts.
"""

import threading
import time

import numpy as np
import pytest

from repro.obs import profile
from repro.obs.profile import KernelProfiler, SamplingProfiler


class TestKernelProfiler:
    def test_record_accumulates(self):
        profiler = KernelProfiler()
        profiler.record("wtable", 0.5)
        profiler.record("wtable", 0.25)
        profiler.record("encode_sorted", 1.0)
        summary = profiler.summary()
        assert summary["wtable"] == {"calls": 2, "seconds": 0.75}
        assert summary["encode_sorted"]["calls"] == 1
        assert list(summary) == sorted(summary)

    def test_format_table(self):
        profiler = KernelProfiler()
        assert profiler.format_table() == "no kernel calls recorded"
        profiler.record("doph_bulk", 0.125)
        table = profiler.format_table()
        assert "doph_bulk" in table
        assert "0.1250" in table

    def test_thread_safety(self):
        profiler = KernelProfiler()

        def hammer():
            for _ in range(500):
                profiler.record("k", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert profiler.summary()["k"]["calls"] == 2000


class TestSeam:
    def test_disabled_by_default(self):
        assert profile.active() is None
        # kernel() returns the shared no-op timer when off.
        timer = profile.kernel("anything")
        with timer:
            pass
        assert timer is profile.kernel("other")

    def test_use_installs_and_restores(self):
        profiler = KernelProfiler()
        with profile.use(profiler) as installed:
            assert installed is profiler
            assert profile.active() is profiler
            with profile.kernel("k"):
                pass
        assert profile.active() is None
        assert profiler.summary()["k"]["calls"] == 1

    def test_use_nests(self):
        outer, inner = KernelProfiler(), KernelProfiler()
        with profile.use(outer):
            with profile.use(inner):
                assert profile.active() is inner
            assert profile.active() is outer

    def test_timer_records_on_exception(self):
        profiler = KernelProfiler()
        with profile.use(profiler):
            with pytest.raises(ValueError):
                with profile.kernel("k"):
                    raise ValueError("boom")
        assert profiler.summary()["k"]["calls"] == 1


class TestProfiledDecorator:
    def test_passthrough_when_disabled(self):
        calls = []

        @profile.profiled("k")
        def fn(x, y=1):
            calls.append((x, y))
            return x + y

        assert fn(2, y=3) == 5
        assert calls == [(2, 3)]

    def test_records_when_active(self):
        @profile.profiled("k")
        def fn():
            return 42

        profiler = KernelProfiler()
        with profile.use(profiler):
            assert fn() == 42
            assert fn() == 42
        assert profiler.summary()["k"]["calls"] == 2
        assert profiler.summary()["k"]["seconds"] >= 0

    def test_records_on_exception(self):
        @profile.profiled("k")
        def fn():
            raise RuntimeError("boom")

        profiler = KernelProfiler()
        with profile.use(profiler):
            with pytest.raises(RuntimeError):
                fn()
        assert profiler.summary()["k"]["calls"] == 1

    def test_wraps_preserves_metadata(self):
        @profile.profiled("k")
        def documented():
            """The docstring survives."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "The docstring survives."

    def test_production_kernels_are_instrumented(self):
        from repro.kernels.doph import doph_signatures_bulk_numpy
        from repro.lsh.permutation import random_permutation

        rng = np.random.default_rng(1)
        perm = random_permutation(8, rng)
        directions = rng.integers(0, 2, size=4).astype(np.int64)
        row_ids = np.array([0, 0, 1, 1])
        item_ids = np.array([1, 3, 2, 5])
        profiler = KernelProfiler()
        with profile.use(profiler):
            doph_signatures_bulk_numpy(
                row_ids, item_ids, 2, perm, 4, directions
            )
        assert profiler.summary()["doph_bulk"]["calls"] == 1


def busy_wait(duration):
    """Burn CPU in a repro-module frame so the sampler can attribute it."""
    deadline = time.perf_counter() + duration
    while time.perf_counter() < deadline:
        pass


class TestSamplingProfiler:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_noop(self):
        SamplingProfiler().stop()

    def test_samples_calling_thread(self):
        profiler = SamplingProfiler(
            interval=0.002, module_prefix="repro"
        )
        from repro.graph.generators import web_host_graph
        from repro.core.ldme import LDME

        with profiler:
            LDME(k=4, iterations=4, seed=0).summarize(
                web_host_graph(num_hosts=8, host_size=16, seed=1)
            )
        assert profiler.total_samples > 0
        # Every attributed location is inside the package.
        for name in profiler.samples:
            assert name.startswith("repro")
        table = profiler.format_table()
        assert "location" in table or "no samples" in table

    def test_all_threads_mode_sees_worker_threads(self):
        profiler = SamplingProfiler(
            interval=0.002, module_prefix="tests.obs", all_threads=True
        )
        threads = [
            threading.Thread(target=busy_wait, args=(0.15,))
            for _ in range(2)
        ]
        profiler.start()
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            profiler.stop()
        busy = sum(
            count for name, count in profiler.samples.items()
            if name.endswith("busy_wait")
        )
        assert busy > 0

    def test_report_orders_by_count(self):
        profiler = SamplingProfiler()
        profiler.samples = {"a.f": 3, "b.g": 10, "c.h": 1}
        profiler.total_samples = 14
        report = profiler.report(top=2)
        assert [name for name, _, _ in report] == ["b.g", "a.f"]
        name, count, est = report[0]
        assert est == pytest.approx(count * profiler.interval)
