"""Unit tests for the deterministic tracer (repro.obs.trace).

The tracer's contract — deterministic span ids, thread-local nesting,
cross-process context propagation, canonical trees, and a free no-op
mode — is what the golden-trace suite builds on, so each piece is pinned
here in isolation first.
"""

import json
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import Span, Tracer, _NOOP_SPAN


class TestDeterministicIds:
    def test_same_structure_same_ids(self):
        def build(tracer):
            with tracer.span("run", key="r"):
                with tracer.span("iteration", key=1):
                    with tracer.span("divide", key=1):
                        pass

        a, b = Tracer(seed=7), Tracer(seed=7)
        build(a)
        build(b)
        assert [s.span_id for s in a.spans] == [s.span_id for s in b.spans]
        assert a.trace_id == b.trace_id

    def test_seed_changes_trace_id_not_span_ids(self):
        # Span ids hash the *structural path*, whose root is the trace
        # id — so a different seed shifts every id.
        a, b = Tracer(seed=0), Tracer(seed=1)
        with a.span("run", key="x"):
            pass
        with b.span("run", key="x"):
            pass
        assert a.trace_id != b.trace_id
        assert a.spans[0].span_id != b.spans[0].span_id

    def test_key_disambiguates_siblings(self):
        tracer = Tracer()
        with tracer.span("run", key="r"):
            with tracer.span("iteration", key=1):
                pass
            with tracer.span("iteration", key=2):
                pass
        it1, it2 = tracer.find("iteration")
        assert it1.span_id != it2.span_id

    def test_default_key_is_occurrence_index(self):
        tracer = Tracer()
        with tracer.span("run", key="r"):
            with tracer.span("batch"):
                pass
            with tracer.span("batch"):
                pass
        assert [s.key for s in tracer.find("batch")] == [0, 1]

    def test_completion_order_does_not_change_ids(self):
        # Two same-keyed structures entered in different orders still get
        # identical ids (ids derive from position, not sequence).
        a, b = Tracer(), Tracer()
        with a.span("run", key="r"):
            with a.span("divide", key=1):
                pass
            with a.span("merge", key=1):
                pass
        with b.span("run", key="r"):
            with b.span("merge", key=1):
                pass
            with b.span("divide", key=1):
                pass
        ids = lambda t: {(s.name, s.span_id) for s in t.spans}  # noqa: E731
        assert ids(a) == ids(b)


class TestSpanLifecycle:
    def test_nesting_parents_follow_stack(self):
        tracer = Tracer()
        with tracer.span("run", key="r") as run:
            with tracer.span("iteration", key=1) as it:
                assert it.parent_id == run.span_id
            with tracer.span("iteration", key=2) as it2:
                assert it2.parent_id == run.span_id
        assert run.parent_id == tracer.trace_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("run", key="r") as run:
            with tracer.span("iteration", key=1):
                detached = tracer.span("side", key=0, parent=run)
                with detached:
                    pass
        assert detached.parent_id == run.span_id

    def test_parent_accepts_context_dict(self):
        tracer = Tracer()
        with tracer.span("run", key="r") as run:
            ctx = tracer.context()
        with tracer.span("child", key=0, parent=ctx) as child:
            pass
        assert child.parent_id == run.span_id

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", key=0):
                raise ValueError("nope")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError"

    def test_attributes_coerced_jsonable(self):
        import numpy as np

        tracer = Tracer()
        with tracer.span("a", key=0, n=np.int64(3)) as span:
            span.set_attribute("f", np.float64(0.5))
            span.set_attribute("obj", object())
        doc = tracer.spans[0].record()
        json.dumps(doc)     # everything serializes
        assert doc["attributes"]["n"] == 3
        assert doc["attributes"]["f"] == 0.5

    def test_max_spans_drops_beyond_cap(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span("s", key=i):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        parents = {}

        def work(name):
            with tracer.span(name, key=0) as outer:
                barrier.wait()
                with tracer.span(f"{name}_inner", key=0) as inner:
                    parents[name] = (outer.span_id, inner.parent_id)

        threads = [
            threading.Thread(target=work, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each inner span is parented at its own thread's outer span,
        # even though both pairs were open concurrently.
        for outer_id, inner_parent in parents.values():
            assert inner_parent == outer_id


class TestContextPropagation:
    def test_worker_roundtrip_matches_inline(self):
        # Spans recorded in a "worker" tracer rebuilt from a context and
        # ingested back are identical to spans recorded inline.
        inline = Tracer(seed=5)
        with inline.span("merge", key=1):
            with inline.span("group_batch", key=2, groups=3):
                pass

        parent = Tracer(seed=5)
        with parent.span("merge", key=1):
            ctx = parent.context()
        worker = Tracer.from_context(ctx)
        with worker.span("group_batch", key=2, groups=3):
            pass
        parent.ingest(worker.records())

        assert {s.span_id for s in inline.spans} == {
            s.span_id for s in parent.spans
        }
        assert inline.tree() == parent.tree()

    def test_context_without_open_span_points_at_root(self):
        tracer = Tracer()
        assert tracer.context()["span_id"] == tracer.trace_id


class TestTreeAndExport:
    def test_tree_sorts_children_canonically(self):
        tracer = Tracer()
        with tracer.span("run", key="r"):
            for key in (3, 1, 2):
                with tracer.span("iteration", key=key):
                    pass
        (root,) = tracer.tree(include_attributes=False)
        assert [c["key"] for c in root["children"]] == [1, 2, 3]

    def test_tree_omits_durations(self):
        tracer = Tracer()
        with tracer.span("run", key="r", n=1):
            pass
        (root,) = tracer.tree()
        assert set(root) == {"name", "key", "attributes", "children"}

    def test_export_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(seed=9)
        with tracer.span("run", key="r"):
            with tracer.span("iteration", key=1):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        replay = Tracer(seed=9)
        replay.ingest(docs)
        assert replay.tree() == tracer.tree()


class TestModuleSeam:
    def test_disabled_returns_shared_noop(self):
        assert obs_trace.active() is None
        span = obs_trace.span("anything", key=1, attr="x")
        assert span is _NOOP_SPAN
        with span as inner:
            inner.set_attribute("still", "noop")
        assert obs_trace.context() is None

    def test_use_installs_and_restores(self):
        tracer = Tracer()
        with obs_trace.use(tracer) as installed:
            assert installed is tracer
            assert obs_trace.active() is tracer
            with obs_trace.span("s", key=0):
                pass
        assert obs_trace.active() is None
        assert len(tracer.spans) == 1

    def test_use_nests(self):
        outer, inner = Tracer(), Tracer()
        with obs_trace.use(outer):
            with obs_trace.use(inner):
                assert obs_trace.active() is inner
            assert obs_trace.active() is outer

    def test_span_type_dispatch(self):
        tracer = Tracer()
        with obs_trace.use(tracer):
            assert isinstance(obs_trace.span("s", key=0), Span)
