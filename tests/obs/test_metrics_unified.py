"""Unified metrics registry: one Histogram, labels, and the module seam.

The serving layer and the pipeline historically carried duplicate metric
implementations; these tests pin the unification (``repro.serve.metrics``
re-exports the *same* objects) and property-test the shared Histogram
with Hypothesis: percentiles below capacity are insertion-order
insensitive and always bounded by the reservoir min/max.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs.metrics as obs_metrics
import repro.serve.metrics as serve_metrics
from repro.metrics import PhaseTimer
from repro.obs.metrics import Histogram, MetricsRegistry


class TestUnification:
    def test_serve_reexports_identity(self):
        # Not copies: isinstance checks and monkeypatching anywhere hit
        # the single implementation.
        assert serve_metrics.Histogram is obs_metrics.Histogram
        assert serve_metrics.MetricsRegistry is obs_metrics.MetricsRegistry

    def test_phase_timer_forwards_to_active_registry(self):
        registry = MetricsRegistry()
        timer = PhaseTimer()
        with obs_metrics.use(registry):
            with timer.phase("w_build", backend="numpy"):
                pass
            timer.add("encode", 0.25)
        hist = registry.histogram(
            "phase_seconds", labels={"phase": "encode"}
        )
        assert hist is not None and hist.count == 1
        assert hist.total == 0.25
        assert registry.histogram(
            "phase_seconds", labels={"phase": "w_build"}
        ).count == 1
        # The timer's own records are unaffected by forwarding.
        assert [r["phase"] for r in timer.records] == ["w_build", "encode"]

    def test_phase_timer_without_registry_is_silent(self):
        timer = PhaseTimer()
        timer.add("anything", 1.0)
        assert obs_metrics.active() is None


floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestHistogramProperties:
    @given(
        st.lists(floats, min_size=1, max_size=200),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentiles_order_insensitive_below_capacity(
        self, values, rnd
    ):
        a = Histogram(capacity=512)
        b = Histogram(capacity=512)
        shuffled = list(values)
        rnd.shuffle(shuffled)
        for v in values:
            a.observe(v)
        for v in shuffled:
            b.observe(v)
        for q in (0, 25, 50, 75, 95, 99, 100):
            assert a.percentile(q) == b.percentile(q)
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)

    @given(st.lists(floats, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_bounded_by_min_max(self, values):
        hist = Histogram(capacity=128)
        for v in values:
            hist.observe(v)
        window = values[-128:] if len(values) > 128 else values
        for q in (0, 10, 50, 90, 100):
            p = hist.percentile(q)
            assert min(window) <= p <= max(window)

    @given(st.lists(floats, min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_percentiles_monotone_in_q(self, values):
        hist = Histogram()
        for v in values:
            hist.observe(v)
        quantiles = [hist.percentile(q) for q in range(0, 101, 10)]
        assert quantiles == sorted(quantiles)

    @given(st.lists(floats, min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_count_and_total_are_exact_despite_eviction(self, values):
        hist = Histogram(capacity=16)
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))

    def test_empty_and_invalid(self):
        assert Histogram().percentile(50) is None
        assert Histogram().summary() == {"count": 0}
        with pytest.raises(ValueError):
            Histogram(capacity=0)

    def test_summary_keys(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["max"] == 3.0


class TestRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("reqs")
        registry.inc("reqs", 2)
        registry.set_gauge("depth", 7)
        registry.observe("lat", 0.5)
        assert registry.counter("reqs") == 3
        assert registry.gauge("depth") == 7
        assert registry.histogram("lat").count == 1
        assert registry.counter("never") == 0
        assert registry.gauge("never") is None
        assert registry.histogram("never") is None

    def test_labels_are_independent_series(self):
        registry = MetricsRegistry()
        registry.inc("m", labels={"backend": "numpy"})
        registry.inc("m", 5, labels={"backend": "python"})
        registry.inc("m")
        assert registry.counter("m", labels={"backend": "numpy"}) == 1
        assert registry.counter("m", labels={"backend": "python"}) == 5
        assert registry.counter("m") == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.inc("m", labels={"a": 1, "b": 2})
        assert registry.counter("m", labels={"b": 2, "a": 1}) == 1

    def test_snapshot_flattens_labeled_series(self):
        registry = MetricsRegistry()
        registry.inc("plain")
        registry.inc("labeled", labels={"op": "bfs"})
        snap = registry.snapshot()
        assert snap["counters"]["plain"] == 1
        assert snap["counters"]['labeled{op="bfs"}'] == 1
        assert "uptime_seconds" in snap

    def test_format_line_still_works(self):
        # The serve heartbeat's format survived the unification.
        registry = MetricsRegistry()
        registry.inc("requests_total", 10)
        registry.observe("request_latency_seconds", 0.01)
        line = registry.format_line()
        assert line.startswith("serve ")
        assert "requests=10" in line
        assert "latency_ms" in line


class TestModuleSeam:
    def test_disabled_calls_are_noops(self):
        assert obs_metrics.active() is None
        obs_metrics.inc("x")
        obs_metrics.observe("y", 1.0)
        obs_metrics.set_gauge("z", 2.0)

    def test_use_routes_and_restores(self):
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            assert obs_metrics.active() is registry
            obs_metrics.inc("x", labels={"k": "v"})
            obs_metrics.observe("y", 0.5)
            obs_metrics.set_gauge("z", 9)
        assert obs_metrics.active() is None
        assert registry.counter("x", labels={"k": "v"}) == 1
        assert registry.histogram("y").count == 1
        assert registry.gauge("z") == 9
