"""Prometheus text-format conformance for the exporter.

A minimal parser for the exposition format (0.0.4) lives *in this test*
— a deliberately independent reimplementation of the grammar: ``# TYPE``
comments, ``name{label="value"} number`` samples, backslash/quote/newline
escapes in label values. Every exporter output must round-trip through
it, be NaN-free, and use only declared metric names. The serving tests
then verify the same text comes back through the ``metrics`` op and the
HTTP scrape endpoint.
"""

import math
import re
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ldme import LDME
from repro.graph.generators import web_host_graph
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServerConfig, ServerThread, SummaryClient

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^(?P<name>{_NAME})(?:\{{(?P<labels>.*)\}})? (?P<value>\S+)$"
)
_TYPE = re.compile(rf"^# TYPE (?P<name>{_NAME}) "
                   r"(?P<type>counter|gauge|histogram|summary|untyped)$")
_LABEL = re.compile(rf'^(?P<key>{_NAME})="')


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> dict:
    labels = {}
    rest = text
    while rest:
        match = _LABEL.match(rest)
        assert match, f"bad label syntax at {rest!r}"
        key = match.group("key")
        i = match.end()
        value = []
        while i < len(rest):
            ch = rest[i]
            if ch == "\\":
                assert i + 1 < len(rest), "dangling escape"
                value.append(rest[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            assert ch != "\n", "raw newline inside label value"
            value.append(ch)
            i += 1
        assert i < len(rest) and rest[i] == '"', "unterminated label value"
        labels[key] = _unescape("".join(value))
        rest = rest[i + 1:]
        if rest.startswith(","):
            rest = rest[1:]
        else:
            assert rest == "", f"junk after label value: {rest!r}"
    return labels


def parse_exposition(text: str):
    """Parse exposition text to ``(types, samples)``.

    ``types`` maps metric name -> declared type. ``samples`` is a list of
    ``(name, labels-dict, float-value)``. Raises AssertionError on any
    grammar violation — the conformance check itself.
    """
    types = {}
    samples = []
    assert text == "" or text.endswith("\n"), "must end with a newline"
    # Split on "\n" only: the format is byte-line oriented, and label
    # values may legally contain other Unicode line breaks (e.g. NEL)
    # that str.splitlines() would treat as delimiters.
    for line in text.split("\n"):
        if not line:
            continue
        if line.startswith("#"):
            match = _TYPE.match(line)
            if match:        # other comments are legal and skipped
                assert match.group("name") not in types, "duplicate TYPE"
                types[match.group("name")] = match.group("type")
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = _parse_labels(match.group("labels") or "")
        value = float(match.group("value"))
        samples.append((match.group("name"), labels, value))
    return types, samples


def base_name(name: str) -> str:
    """Strip summary suffixes so samples map to their TYPE declaration."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def assert_conformant(text: str):
    """Full conformance: parses, typed, NaN-free, no duplicate series."""
    types, samples = parse_exposition(text)
    seen = set()
    for name, labels, value in samples:
        assert math.isfinite(value), f"non-finite sample {name} {value}"
        declared = types.get(name) or types.get(base_name(name))
        assert declared is not None, f"sample {name} has no TYPE"
        series = (name, tuple(sorted(labels.items())))
        assert series not in seen, f"duplicate series {series}"
        seen.add(series)
    return types, samples


class TestExporterConformance:
    def test_basic_render(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 3)
        registry.set_gauge("queue_depth", 2)
        registry.observe("latency_seconds", 0.5)
        registry.observe("latency_seconds", 1.5)
        types, samples = assert_conformant(registry.to_prometheus())
        assert types["repro_requests_total"] == "counter"
        assert types["repro_queue_depth"] == "gauge"
        assert types["repro_latency_seconds"] == "summary"
        by_name = {(n, tuple(sorted(l.items()))): v for n, l, v in samples}
        assert by_name[("repro_requests_total", ())] == 3
        assert by_name[("repro_latency_seconds_count", ())] == 2
        assert by_name[("repro_latency_seconds_sum", ())] == 2.0
        assert (
            "repro_latency_seconds", (("quantile", "0.5"),)
        ) in by_name

    def test_labels_render_and_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("ops_total", 2, labels={"op": "bfs", "ok": True})
        types, samples = assert_conformant(registry.to_prometheus())
        (sample,) = [s for s in samples if s[0] == "repro_ops_total"]
        assert sample[1] == {"op": "bfs", "ok": "True"}
        assert sample[2] == 2

    def test_escaping_edge_cases(self):
        registry = MetricsRegistry()
        evil = 'quo"te back\\slash new\nline'
        registry.inc("evil_total", labels={"v": evil})
        _, samples = assert_conformant(registry.to_prometheus())
        (sample,) = [s for s in samples if s[0] == "repro_evil_total"]
        # The parser's unescape must recover the original value exactly.
        assert sample[1]["v"] == evil

    def test_metric_name_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("weird-metric.name!")
        types, samples = assert_conformant(registry.to_prometheus())
        assert "repro_weird_metric_name_" in types

    def test_nonfinite_values_skipped(self):
        registry = MetricsRegistry()
        registry.set_gauge("bad", float("nan"))
        registry.set_gauge("worse", float("inf"))
        registry.set_gauge("good", 1.0)
        registry.observe("h", float("nan"))
        text = registry.to_prometheus()
        assert "nan" not in text.lower().replace("# type", "")
        _, samples = assert_conformant(text)
        names = {n for n, _, _ in samples}
        assert "repro_good" in names
        assert "repro_bad" not in names
        assert "repro_worse" not in names

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    label_values = st.text(min_size=0, max_size=30)

    @given(st.dictionaries(
        st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
        label_values, min_size=0, max_size=4,
    ))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_label_values_roundtrip(self, labels):
        registry = MetricsRegistry()
        registry.inc("fuzz_total", labels=labels)
        _, samples = assert_conformant(registry.to_prometheus())
        (sample,) = [s for s in samples if s[0] == "repro_fuzz_total"]
        assert sample[1] == {k: str(v) for k, v in labels.items()}


@pytest.fixture(scope="module")
def live_server():
    summary = LDME(k=4, iterations=3, seed=1).summarize(
        web_host_graph(num_hosts=4, host_size=8, seed=2)
    )
    config = ServerConfig(
        port=0, metrics_port=0, log_interval=0, batch_window=0.001
    )
    with ServerThread(summary, config) as handle:
        yield handle


class TestServedMetrics:
    def test_metrics_op_returns_conformant_text(self, live_server):
        client = SummaryClient("127.0.0.1", live_server.port)
        try:
            client.neighbors(0)
            text = client.metrics_text()
        finally:
            client.close()
        types, samples = assert_conformant(text)
        names = {n for n, _, _ in samples}
        assert "repro_serve_requests_total" in names
        assert "repro_serve_queue_depth" in names

    def test_http_scrape_endpoint(self, live_server):
        client = SummaryClient("127.0.0.1", live_server.port)
        try:
            client.degree(0)
        finally:
            client.close()
        port = live_server.server.metrics_http_port
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            assert response.status == 200
            content_type = response.headers.get("Content-Type", "")
            assert content_type.startswith("text/plain")
            body = response.read().decode("utf-8")
        types, samples = assert_conformant(body)
        assert any(n == "repro_serve_requests_total" for n, _, _ in samples)

    def test_http_unknown_path_is_404(self, live_server):
        port = live_server.server.metrics_http_port
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/nope", timeout=10
            )
        assert excinfo.value.code == 404

    def test_scrape_includes_latency_summary_after_traffic(
        self, live_server
    ):
        client = SummaryClient("127.0.0.1", live_server.port)
        try:
            for v in range(5):
                client.degree(v)
            text = client.metrics_text()
        finally:
            client.close()
        types, _ = assert_conformant(text)
        assert types.get("repro_serve_request_latency_seconds") == "summary"


class TestShardMetricsConformance:
    """The shard-aware serving metrics render conformantly: per-shard
    generation gauges, the scatter fanout counter, and the
    partial-results counter."""

    @pytest.fixture()
    def sharded_cluster(self, tmp_path):
        from repro.serve import SummaryCluster
        from repro.shard import summarize_sharded

        graph = web_host_graph(num_hosts=5, host_size=8, seed=6)
        result = summarize_sharded(
            graph, shards=2, k=4, iterations=4, seed=0,
            out_dir=str(tmp_path / "m"),
        )
        with SummaryCluster.from_manifest(
            result.manifest, replicas=1,
            config=ServerConfig(batch_window=0.001),
        ) as cluster:
            yield cluster

    def test_shard_gauges_and_counters_render(self, sharded_cluster):
        from repro.serve.cluster import ClusterHealthChecker

        client = sharded_cluster.client()
        try:
            client.bfs(0)                      # drives scatter fanout
            ClusterHealthChecker(client).probe_all()
            types, samples = assert_conformant(client.prometheus())
            assert types["repro_cluster_shard_generation"] == "gauge"
            assert types["repro_cluster_scatter_fanout_total"] == \
                "counter"
            gens = {
                s[1]["shard"]: s[2] for s in samples
                if s[0] == "repro_cluster_shard_generation"
            }
            assert sorted(gens) == [
                str(s) for s in sharded_cluster.shard_ids
            ]
            assert all(v == 0 for v in gens.values())
            fanout = [s for s in samples
                      if s[0] == "repro_cluster_scatter_fanout_total"]
            assert fanout and fanout[0][2] > 0
        finally:
            client.shutdown()

    def test_partial_results_counter_renders_after_shard_loss(
        self, sharded_cluster
    ):
        # Kill the second shard's only replica, then accept a partial.
        sharded_cluster.kill(1)
        client = sharded_cluster.client(timeout=1.0,
                                        breaker_failures=1)
        try:
            ring = sharded_cluster.ring
            dead = sharded_cluster.shard_ids[1]
            truth = sharded_cluster.shard_index(
                sharded_cluster.shard_ids[0]
            )
            source = next(
                v for v in range(truth.num_nodes)
                if ring.shard_of(v) != dead and any(
                    ring.shard_of(u) == dead
                    for u in truth.bfs_distances(v)
                )
            )
            client.bfs(source, allow_partial=True)
            types, samples = assert_conformant(client.prometheus())
            assert types["repro_cluster_partial_results_total"] == \
                "counter"
            (sample,) = [
                s for s in samples
                if s[0] == "repro_cluster_partial_results_total"
            ]
            assert sample[2] >= 1
        finally:
            client.shutdown()


class TestMigrationMetricsConformance:
    """The elastic re-sharding rows: per-phase ``migration_state``
    gauges, the remapped-vertex gauge, the rollback counter, and the
    cluster ring epoch — all zero-registered at construction so
    dashboards see the series before the first migration ever runs."""

    def test_migration_rows_zero_registered(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.shard import GenerationStore, MigrationCoordinator
        from repro.shard.migrate import MIGRATION_PHASES

        registry = MetricsRegistry()
        MigrationCoordinator(
            GenerationStore(tmp_path / "store"), registry=registry
        )
        types, samples = assert_conformant(registry.to_prometheus())
        assert types["repro_migration_state"] == "gauge"
        assert types["repro_migration_remapped_vertices"] == "gauge"
        assert types["repro_migration_rollback_total"] == "counter"
        assert types["repro_cluster_ring_epoch"] == "gauge"
        states = {
            s[1]["phase"]: s[2] for s in samples
            if s[0] == "repro_migration_state"
        }
        assert sorted(states) == sorted(MIGRATION_PHASES)
        assert all(v == 0 for v in states.values())
        by_name = {n: v for n, l, v in samples if not l}
        assert by_name["repro_migration_remapped_vertices"] == 0
        assert by_name["repro_migration_rollback_total"] == 0
        assert by_name["repro_cluster_ring_epoch"] == 0

    def test_migration_rows_after_a_run(self, tmp_path):
        from repro.graph.generators import web_host_graph as _whg
        from repro.obs.metrics import MetricsRegistry
        from repro.shard import (
            GenerationStore,
            HashRing,
            MigrationCoordinator,
        )

        graph = _whg(num_hosts=3, host_size=8, seed=5)
        store = GenerationStore(tmp_path / "store")
        store.bootstrap(graph, shards=2, iterations=3, seed=0)
        registry = MetricsRegistry()
        report = MigrationCoordinator(
            store, iterations=3, seed=0, registry=registry
        ).migrate(HashRing(3, virtual_nodes=1), graph)
        assert report.committed
        _, samples = assert_conformant(registry.to_prometheus())
        states = {
            s[1]["phase"]: s[2] for s in samples
            if s[0] == "repro_migration_state"
        }
        assert states["done"] == 1
        assert sum(states.values()) == 1     # exactly one active phase
        by_name = {n: v for n, l, v in samples if not l}
        assert by_name["repro_migration_remapped_vertices"] > 0

    def test_ring_epoch_gauge_tracks_client_refresh(self):
        from repro.serve import ClusterClient

        client = ClusterClient([("127.0.0.1", 1)], epoch=2)
        try:
            _, samples = assert_conformant(
                client.metrics.to_prometheus()
            )
            by_name = {n: v for n, l, v in samples if not l}
            assert by_name["repro_cluster_ring_epoch"] == 2
        finally:
            client.shutdown()


class TestIngestMetricsConformance:
    """The crash-safe ingest service's exposition: lag/segment gauges
    plus applied/replayed counters, refreshed at scrape time."""

    def run_ingest(self, tmp_path, events, **kwargs):
        from repro.ingest import IngestService

        service, report = IngestService.open(
            tmp_path / "wal", num_nodes=16, fsync=False, **kwargs
        )
        with service:
            for op, u, v in events:
                service.submit(op, u, v)
            assert service.drain(10)
            text = service.prometheus()
        return service, report, text

    def test_ingest_rows_render_conformantly(self, tmp_path):
        events = [("+", u, u + 1) for u in range(12)] + [("-", 3, 4)]
        service, _, text = self.run_ingest(tmp_path, events)
        types, samples = assert_conformant(text)
        assert types["repro_ingest_lag_events"] == "gauge"
        assert types["repro_ingest_applied_total"] == "counter"
        assert types["repro_ingest_replayed_total"] == "counter"
        assert types["repro_wal_segments_active"] == "gauge"
        by_name = {n: v for n, _, v in samples}
        assert by_name["repro_ingest_applied_total"] == len(events)
        assert by_name["repro_ingest_replayed_total"] == 0
        assert by_name["repro_ingest_lag_events"] == 0
        assert by_name["repro_wal_segments_active"] >= 1
        assert by_name["repro_ingest_last_seq"] == len(events)

    def test_replayed_counter_counts_recovery(self, tmp_path):
        from repro.ingest import IngestService

        events = [("+", u, u + 1) for u in range(9)]
        first, _ = IngestService.open(
            tmp_path / "wal", num_nodes=16, fsync=False
        )
        first.start()
        for op, u, v in events:
            first.submit(op, u, v)
        assert first.drain(10)
        # No checkpoint gets written (snapshot_every=0 and the final
        # snapshot is skipped), so reopening replays the whole WAL.
        first.stop(snapshot=False)

        service, report = IngestService.open(
            tmp_path / "wal", num_nodes=16, fsync=False
        )
        try:
            assert report.replayed == len(events)
            _, samples = assert_conformant(service.prometheus())
            by_name = {n: v for n, _, v in samples}
            assert by_name["repro_ingest_replayed_total"] == len(events)
            assert by_name["repro_ingest_last_seq"] == len(events)
        finally:
            service.stop(snapshot=False)
