"""Golden-trace suite: the span tree is a pinned regression oracle.

Span ids are digests of structural position and the trace id derives
from the run seed, so a fixed-seed run has a *fully deterministic* span
tree — names, keys, parent edges and the key attributes (never
durations). These tests pin that tree for the serial driver under both
kernel backends, for the multiprocess driver, and across checkpoint
resume — including a resume after a real SIGKILL. If instrumentation
drifts (a span renamed, re-parented, or silently dropped), these fail.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.core.ldme import LDME
from repro.distributed import MultiprocessLDME
from repro.graph.generators import web_host_graph
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer
from repro.resilience import run_resumable

ITERATIONS = 3
SEED = 3


def small_graph():
    return web_host_graph(num_hosts=4, host_size=8, seed=1)


def make_algo(kernels="numpy", **kwargs):
    kwargs.setdefault("k", 4)
    kwargs.setdefault("iterations", ITERATIONS)
    kwargs.setdefault("seed", SEED)
    return LDME(kernels=kernels, **kwargs)


def traced_run(algo, graph, **run_kwargs):
    """Run ``algo`` under a fresh tracer; returns the tracer."""
    tracer = Tracer(seed=algo.seed)
    with obs_trace.use(tracer):
        algo.summarize(graph, **run_kwargs)
    return tracer


def shape(tree):
    """Strip attributes: nested ``(name, key, children)`` tuples."""
    return tuple(
        (node["name"], node["key"], shape(node["children"]))
        for node in tree
    )


def id_set(tracer):
    """The set of (name, key, span id, parent id) structural facts."""
    return {
        (s.name, s.key, s.span_id, s.parent_id) for s in tracer.spans
    }


#: The pinned span tree for a 3-iteration serial run (children are in
#: canonical order: sorted by (name, str(key))).
GOLDEN_SERIAL_SHAPE = (
    ("run", f"LDME4/{SEED}", (
        ("encode", "final", ()),
        ("iteration", 1, (
            ("divide", 1, (("signatures", "sig", ()),)),
            ("merge", 1, (("group_batch", 0, ()),)),
        )),
        ("iteration", 2, (
            ("divide", 2, (("signatures", "sig", ()),)),
            ("merge", 2, (("group_batch", 0, ()),)),
        )),
        ("iteration", 3, (
            ("divide", 3, (("signatures", "sig", ()),)),
            ("merge", 3, (("group_batch", 0, ()),)),
        )),
    )),
)


class TestGoldenSerial:
    @pytest.mark.parametrize("kernels", ["python", "numpy"])
    def test_span_tree_matches_golden(self, kernels):
        tracer = traced_run(make_algo(kernels=kernels), small_graph())
        assert shape(tracer.tree()) == GOLDEN_SERIAL_SHAPE

    @pytest.mark.parametrize("kernels", ["python", "numpy"])
    def test_rerun_is_identical(self, kernels):
        graph = small_graph()
        a = traced_run(make_algo(kernels=kernels), graph)
        b = traced_run(make_algo(kernels=kernels), graph)
        assert a.tree() == b.tree()
        assert id_set(a) == id_set(b)

    def test_backends_share_span_ids(self):
        # The run key is (name, seed) — deliberately backend-free — so
        # the two backends produce the *same* span ids; only the
        # backend-identifying attributes differ.
        graph = small_graph()
        py = traced_run(make_algo(kernels="python"), graph)
        np_ = traced_run(make_algo(kernels="numpy"), graph)
        assert id_set(py) == id_set(np_)

    def test_run_attributes_pinned(self):
        graph = small_graph()
        tracer = traced_run(make_algo(), graph)
        (run,) = tracer.find("run")
        assert run.attributes["algorithm"] == "LDME4"
        assert run.attributes["seed"] == SEED
        assert run.attributes["kernels"] == "numpy"
        assert run.attributes["iterations"] == ITERATIONS
        assert run.attributes["num_nodes"] == graph.num_nodes
        assert run.attributes["num_edges"] == graph.num_edges
        # Set at completion, from the result:
        assert run.attributes["num_supernodes"] > 0
        assert run.attributes["objective"] > 0

    def test_phase_attributes_pinned(self):
        tracer = traced_run(make_algo(), small_graph())
        for divide in tracer.find("divide"):
            assert divide.attributes["backend"] == "numpy"
            assert divide.attributes["num_groups"] >= 0
            assert divide.attributes["num_mergeable"] >= 0
        signatures = tracer.find("signatures")
        assert len(signatures) == ITERATIONS
        for sig in signatures:
            assert sig.attributes["backend"] == "numpy"
            assert sig.attributes["rows"] > 0
            assert sig.attributes["nnz"] > 0
        for merge in tracer.find("merge"):
            assert merge.attributes["merges"] >= 0
            assert merge.attributes["candidates_scored"] >= 0
        (encode,) = tracer.find("encode")
        assert encode.key == "final"
        assert encode.attributes["encoder"] == "sorted"
        assert encode.attributes["superedges"] >= 0

    def test_merge_attrs_equal_batch_attrs(self):
        # The serial group_batch span carries the whole phase's counts.
        tracer = traced_run(make_algo(), small_graph())
        merges = {s.key: s for s in tracer.find("merge")}
        for batch in tracer.find("group_batch"):
            merge = merges[
                next(
                    m.key for m in merges.values()
                    if m.span_id == batch.parent_id
                )
            ]
            assert batch.attributes["merges"] == merge.attributes["merges"]
            assert (
                batch.attributes["candidates_scored"]
                == merge.attributes["candidates_scored"]
            )


class TestGoldenMultiprocess:
    def make_mp(self, **kwargs):
        kwargs.setdefault("shared_memory", "off")
        return MultiprocessLDME(
            num_workers=2, k=4, iterations=ITERATIONS, seed=SEED,
            batch_timeout=120.0, **kwargs,
        )

    @pytest.mark.parametrize("shared_memory", ["off", "on"])
    def test_batches_parent_under_merge_and_rerun_identical(
        self, shared_memory
    ):
        graph = small_graph()
        a = Tracer(seed=SEED)
        with obs_trace.use(a):
            self.make_mp(shared_memory=shared_memory).summarize(graph)
        merge_ids = {s.span_id for s in a.find("merge")}
        batches = a.find("group_batch")
        assert batches, "worker batches must ship spans back"
        for batch in batches:
            assert batch.parent_id in merge_ids
            assert batch.attributes["merges"] >= 0
        # Batch spans key on the batch index, never the worker pid, so a
        # second run reproduces the tree exactly.
        b = Tracer(seed=SEED)
        with obs_trace.use(b):
            self.make_mp(shared_memory=shared_memory).summarize(graph)
        assert a.tree() == b.tree()
        assert id_set(a) == id_set(b)

    @pytest.mark.parametrize("shared_memory", ["off", "on"])
    def test_iteration_skeleton_matches_serial_shape(self, shared_memory):
        # Everything except batch fan-out is shared driver code, so the
        # (run → iteration → divide/merge/encode) skeleton is identical
        # in shape to the serial golden tree — plus, under the
        # shared-memory transport, one "arena" span per merge recording
        # the segment setup.
        graph = small_graph()
        tracer = Tracer(seed=SEED)
        with obs_trace.use(tracer):
            self.make_mp(shared_memory=shared_memory).summarize(graph)

        def strip_batches(nodes):
            return tuple(
                (n["name"], n["key"], strip_batches(n["children"]))
                for n in nodes
                if n["name"] != "group_batch"
            )

        div = (("signatures", "sig", ()),)

        def mrg(t):
            if shared_memory == "on":
                return (("arena", t, ()),)
            return ()

        expected = (
            ("run", f"LDME4-mp2/{SEED}", (
                ("encode", "final", ()),
                ("iteration", 1, (("divide", 1, div), ("merge", 1, mrg(1)))),
                ("iteration", 2, (("divide", 2, div), ("merge", 2, mrg(2)))),
                ("iteration", 3, (("divide", 3, div), ("merge", 3, mrg(3)))),
            )),
        )
        assert strip_batches(tracer.tree()) == expected

    def test_arena_spans_carry_segment_bytes(self):
        graph = small_graph()
        tracer = Tracer(seed=SEED)
        with obs_trace.use(tracer):
            self.make_mp(shared_memory="on").summarize(graph)
        arenas = tracer.find("arena")
        assert len(arenas) == ITERATIONS
        for arena in arenas:
            assert arena.attributes["graph_bytes"] > 0
            assert arena.attributes["merge_bytes"] > 0
            assert arena.attributes["groups"] > 0

    def test_scatter_fanout_span_under_signatures(self):
        # Force the parallel DOPH scatter (gated on graph size) and pin
        # its span: one "scatter" child per signatures span, keyed
        # "fanout", recording the partition count and attach total.
        graph = small_graph()
        algo = self.make_mp(shared_memory="on")
        algo.signature_fanout_min_nnz = 0
        tracer = Tracer(seed=SEED)
        with obs_trace.use(tracer):
            algo.summarize(graph)
        signature_ids = {s.span_id for s in tracer.find("signatures")}
        scatters = tracer.find("scatter")
        assert len(scatters) == ITERATIONS
        for scatter in scatters:
            assert scatter.key == "fanout"
            assert scatter.parent_id in signature_ids
            assert scatter.attributes["parts"] >= 1
            assert scatter.attributes["nnz"] > 0
            assert scatter.attributes["attaches"] >= 1


class Interrupt(Exception):
    """Simulated crash raised from the iteration hook."""


class TestResumeGolden:
    def test_resume_emits_identical_spans(self, tmp_path):
        """crash(iter 2) + resume re-emits exactly the uninterrupted
        run's spans: the union of the two attempts' structural facts
        equals the baseline's."""
        graph = small_graph()
        baseline = Tracer(seed=SEED)
        with obs_trace.use(baseline):
            run_resumable(make_algo(), graph, tmp_path / "base")

        def boom(state):
            if state.iteration == 2:
                raise Interrupt()

        crashed = Tracer(seed=SEED)
        with obs_trace.use(crashed):
            with pytest.raises(Interrupt):
                run_resumable(
                    make_algo(), graph, tmp_path / "c",
                    iteration_hook=boom,
                )
        resumed = Tracer(seed=SEED)
        with obs_trace.use(resumed):
            run_resumable(make_algo(), graph, tmp_path / "c")

        assert id_set(crashed) | id_set(resumed) == id_set(baseline)
        # The resumed attempt's spans are a strict subset: it re-creates
        # the run span and emits only post-checkpoint work.
        assert id_set(resumed) < id_set(baseline)

    def test_checkpoint_spans_keyed_by_iteration(self, tmp_path):
        graph = small_graph()
        tracer = Tracer(seed=SEED)
        with obs_trace.use(tracer):
            run_resumable(make_algo(), graph, tmp_path / "c")
        checkpoints = tracer.find("checkpoint")
        assert [s.key for s in checkpoints] == [1, 2, 3]
        iteration_ids = {s.key: s.span_id for s in tracer.find("iteration")}
        for ckpt in checkpoints:
            assert ckpt.parent_id == iteration_ids[ckpt.key]
            assert ckpt.attributes["num_supernodes"] > 0

    def test_sigkill_resume_emits_identical_spans(self, tmp_path):
        """A child hard-killed mid-run exports its partial trace; the
        parent's resumed trace and the partial trace are both exact
        subsets of the uninterrupted baseline's spans."""
        ckpt_dir = tmp_path / "c"
        trace_path = tmp_path / "partial.jsonl"
        child = textwrap.dedent(
            f"""
            import os, signal
            from repro.core.ldme import LDME
            from repro.graph.generators import web_host_graph
            from repro.obs import trace as obs_trace
            from repro.obs.trace import Tracer
            from repro.resilience import run_resumable

            graph = web_host_graph(num_hosts=4, host_size=8, seed=1)
            tracer = Tracer(seed={SEED})

            def die(state):
                tracer.export_jsonl({str(trace_path)!r})
                if state.iteration == 2:
                    os.kill(os.getpid(), signal.SIGKILL)

            with obs_trace.use(tracer):
                run_resumable(
                    LDME(k=4, iterations={ITERATIONS}, seed={SEED}),
                    graph, {str(ckpt_dir)!r}, iteration_hook=die,
                )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, timeout=120,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        graph = small_graph()
        baseline = Tracer(seed=SEED)
        with obs_trace.use(baseline):
            run_resumable(make_algo(), graph, tmp_path / "base")

        import json

        partial = Tracer(seed=SEED)
        with open(trace_path, encoding="utf-8") as fh:
            partial.ingest(json.loads(line) for line in fh)
        assert id_set(partial) < id_set(baseline)

        resumed = Tracer(seed=SEED)
        with obs_trace.use(resumed):
            run_resumable(make_algo(), graph, ckpt_dir)
        assert id_set(resumed) < id_set(baseline)
        # The resumed attempt re-emits every post-checkpoint span the
        # uninterrupted run would have: everything from iteration 3 on,
        # plus the shared run span and the final encode.
        resumed_facts = id_set(resumed)
        for fact in id_set(baseline):
            name, key, _, _ = fact
            if name in ("iteration", "divide", "merge", "checkpoint") \
                    and isinstance(key, int) and key >= 3:
                assert fact in resumed_facts
            if name == "run" or (name == "encode" and key == "final"):
                assert fact in resumed_facts
