"""Load-generator chaos mode: the server survives hostile traffic."""

import pytest

from repro.core.ldme import LDME
from repro.graph.generators import web_host_graph
from repro.serve import ChaosConfig, ServerConfig, ServerThread, run_load


@pytest.fixture(scope="module")
def summary():
    graph = web_host_graph(num_hosts=4, host_size=8, seed=1)
    return LDME(k=4, iterations=5, seed=0).summarize(graph)


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop_every=-1)
        assert not ChaosConfig().enabled
        assert ChaosConfig(drop_every=5).enabled


class TestChaosLoad:
    def test_queries_complete_under_chaos(self, summary):
        """Forced reconnects + garbage frames mid-load: every query still
        completes, the server stays up, and chaos events are counted."""
        config = ServerConfig(batch_window=0.001)
        with ServerThread(summary, config) as handle:
            report = run_load(
                "127.0.0.1", handle.port,
                num_queries=120, concurrency=3, seed=0,
                chaos=ChaosConfig(drop_every=10, junk_every=15),
            )
            assert report.errors == 0
            assert sum(report.op_counts.values()) == 120
            assert report.chaos_drops > 0
            assert report.chaos_junk > 0
            # Server observed and survived the garbage frames.
            stats = handle.server.stats()
            assert stats["metrics"]["counters"].get(
                "errors_bad_frame", 0
            ) >= 1
            assert "chaos" in report.format()

    def test_no_chaos_reports_zero(self, summary):
        config = ServerConfig(batch_window=0.001)
        with ServerThread(summary, config) as handle:
            report = run_load(
                "127.0.0.1", handle.port,
                num_queries=40, concurrency=2, seed=0,
            )
            assert report.chaos_drops == 0
            assert report.chaos_junk == 0
            assert "chaos" not in report.format()
