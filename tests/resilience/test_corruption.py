"""Corruption-safe I/O: checksummed binary format + serve-layer rejection.

A damaged summary file must raise a typed :class:`CorruptSummaryError`
(never silently decode to garbage), and a server asked to hot-swap to a
damaged file must reject it while the old index keeps serving.
"""

import struct
import zlib

import pytest

from repro.binaryio import (
    FOOTER_BYTES,
    FOOTER_MAGIC,
    MAGIC,
    VERSION,
    read_summary_binary,
    write_summary_binary,
)
from repro.core.ldme import LDME
from repro.errors import CorruptSummaryError
from repro.graph.generators import web_host_graph
from repro.resilience import flip_bit, partial_write, truncate_file


@pytest.fixture(scope="module")
def graph():
    return web_host_graph(num_hosts=4, host_size=8, seed=1)


@pytest.fixture(scope="module")
def summary(graph):
    return LDME(k=4, iterations=5, seed=0).summarize(graph)


@pytest.fixture
def binary_path(tmp_path, summary):
    path = tmp_path / "s.ldmeb"
    write_summary_binary(summary, path)
    return path


class TestFormatV2:
    def test_roundtrip(self, binary_path, summary):
        loaded = read_summary_binary(binary_path)
        # The binary format canonicalizes member order within supernodes.
        assert {
            sid: sorted(mem)
            for sid, mem in loaded.partition.members_map().items()
        } == {
            sid: sorted(mem)
            for sid, mem in summary.partition.members_map().items()
        }
        assert loaded.superedges == summary.superedges

    def test_footer_layout(self, binary_path):
        data = binary_path.read_bytes()
        assert data.startswith(MAGIC + bytes([VERSION]))
        assert data.endswith(FOOTER_MAGIC)
        crc = struct.unpack("<I", data[-FOOTER_BYTES:-4])[0]
        assert crc == zlib.crc32(data[:-FOOTER_BYTES])

    def test_bitflip_detected(self, binary_path):
        flip_bit(binary_path)
        with pytest.raises(CorruptSummaryError, match="checksum"):
            read_summary_binary(binary_path)

    def test_every_byte_protected(self, tmp_path, summary):
        # Flip each byte position in a small file: all must be caught.
        reference = tmp_path / "ref.ldmeb"
        write_summary_binary(summary, reference)
        size = reference.stat().st_size
        step = max(1, size // 23)
        for offset in range(0, size, step):
            victim = tmp_path / "victim.ldmeb"
            victim.write_bytes(reference.read_bytes())
            flip_bit(victim, byte_offset=offset)
            with pytest.raises((CorruptSummaryError, ValueError)):
                read_summary_binary(victim)

    def test_truncation_detected(self, binary_path):
        truncate_file(binary_path, keep_fraction=0.6)
        with pytest.raises(CorruptSummaryError):
            read_summary_binary(binary_path)

    def test_torn_write_detected(self, binary_path):
        data = binary_path.read_bytes()
        partial_write(binary_path, data, write_fraction=0.5)
        with pytest.raises(CorruptSummaryError):
            read_summary_binary(binary_path)

    def test_error_carries_path(self, binary_path):
        flip_bit(binary_path)
        with pytest.raises(CorruptSummaryError) as excinfo:
            read_summary_binary(binary_path)
        assert str(binary_path) in str(excinfo.value)
        assert excinfo.value.path == str(binary_path)

    def test_corrupt_error_is_valueerror(self):
        # Existing `except ValueError` sites keep working.
        assert issubclass(CorruptSummaryError, ValueError)


class TestFormatV1Compat:
    def test_v1_files_still_readable(self, binary_path, summary):
        # Strip the v2 footer and rewrite the version byte → a v1 file.
        data = bytearray(binary_path.read_bytes()[:-FOOTER_BYTES])
        data[len(MAGIC)] = 1
        v1_path = binary_path.with_suffix(".v1.ldmeb")
        v1_path.write_bytes(bytes(data))
        loaded = read_summary_binary(v1_path)
        assert loaded.superedges == summary.superedges
        assert loaded.corrections.additions == summary.corrections.additions


class TestServeRejection:
    def test_corrupt_reload_rejected_old_index_lives(
        self, tmp_path, graph, summary
    ):
        """Hot-swap to a corrupt file: typed error, no swap, old index
        keeps answering queries, rejection counted in metrics."""
        from repro.queries import SummaryIndex
        from repro.serve import (
            ErrorCode,
            ServerConfig,
            ServerError,
            ServerThread,
            SummaryClient,
        )

        bad_path = tmp_path / "bad.ldmeb"
        write_summary_binary(summary, bad_path)
        flip_bit(bad_path)

        truth = SummaryIndex(summary)
        config = ServerConfig(batch_window=0.001, allow_reload=True)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            try:
                before = client.neighbors(0)
                with pytest.raises(ServerError) as excinfo:
                    client.reload(str(bad_path))
                assert excinfo.value.code == ErrorCode.BAD_REQUEST
                # Old index still live and correct.
                assert client.neighbors(0) == before == truth.neighbors(0)
                stats = client.stats()
                assert stats["generation"] == 0          # no swap happened
                assert stats["metrics"]["counters"].get(
                    "reload_rejected_total"
                ) == 1
            finally:
                client.close()

    def test_good_reload_after_rejection(self, tmp_path, graph, summary):
        from repro.serve import (
            ServerConfig,
            ServerError,
            ServerThread,
            SummaryClient,
        )

        bad_path = tmp_path / "bad.ldmeb"
        write_summary_binary(summary, bad_path)
        truncate_file(bad_path)
        good_path = tmp_path / "good.ldmeb"
        write_summary_binary(summary, good_path)

        config = ServerConfig(batch_window=0.001, allow_reload=True)
        with ServerThread(summary, config) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            try:
                with pytest.raises(ServerError):
                    client.reload(str(bad_path))
                result = client.reload(str(good_path))
                assert result["generation"] == 1
            finally:
                client.close()
