"""Worker supervision: retries, timeouts, serial fallback, lossless output.

Two layers: :class:`BatchSupervisor` unit tests against a fake in-process
pool (fast, exhaustive), and end-to-end :class:`MultiprocessLDME` runs
with injected crashes/hangs/exceptions that must still produce output
identical to a fault-free run.
"""

import multiprocessing

import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.distributed.multiprocess import MultiprocessLDME, _fork_available
from repro.graph.generators import web_host_graph
from repro.resilience import FaultInjector, WorkerFault
from repro.resilience.supervisor import (
    BatchSupervisor,
    SupervisionPolicy,
    SupervisionReport,
    WorkerPoolError,
)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


# ----------------------------------------------------------------------
# fake-pool unit tests
# ----------------------------------------------------------------------
class _FakeHandle:
    def __init__(self, fn, task):
        self._fn = fn
        self._task = task

    def get(self, timeout=None):
        return self._fn(self._task)


class _FakePool:
    """Runs tasks lazily in-process; records lifecycle calls."""

    created = 0

    def __init__(self):
        _FakePool.created += 1
        self.terminated = False

    def apply_async(self, fn, args):
        return _FakeHandle(fn, args[0])

    def terminate(self):
        self.terminated = True

    def join(self):
        pass


def make_supervisor(worker_fn, policy=None, pool_factory=None):
    return BatchSupervisor(
        worker_fn=worker_fn,
        task_builder=lambda descriptor, attempt: (descriptor, attempt),
        serial_fn=lambda descriptor: f"serial:{descriptor}",
        pool_factory=pool_factory or (lambda n: _FakePool()),
        policy=policy or SupervisionPolicy(batch_timeout=5.0, max_retries=2),
    )


class TestBatchSupervisor:
    def test_all_succeed(self):
        sup = make_supervisor(lambda task: f"ok:{task[0]}")
        results, report = sup.run(["a", "b", "c"])
        assert results == ["ok:a", "ok:b", "ok:c"]
        assert report == SupervisionReport()

    def test_transient_failure_retried(self):
        def flaky(task):
            descriptor, attempt = task
            if descriptor == "b" and attempt == 0:
                raise RuntimeError("transient")
            return f"ok:{descriptor}:{attempt}"

        results, report = sup_run(flaky)
        assert results == ["ok:a:0", "ok:b:1", "ok:c:0"]
        assert report.worker_failures == 1
        assert report.batch_retries == 1
        assert report.serial_fallbacks == 0

    def test_timeout_retried(self):
        def hang_once(task):
            descriptor, attempt = task
            if descriptor == "a" and attempt == 0:
                raise multiprocessing.TimeoutError()
            return f"ok:{descriptor}:{attempt}"

        results, report = sup_run(hang_once)
        assert results[0] == "ok:a:1"
        assert report.batch_timeouts == 1
        assert report.batch_retries == 1

    def test_persistent_failure_falls_back_serial(self):
        def always_fails(task):
            descriptor, _ = task
            if descriptor == "b":
                raise RuntimeError("poison")
            return f"ok:{descriptor}"

        results, report = sup_run(always_fails)
        assert results == ["ok:a", "serial:b", "ok:c"]
        assert report.worker_failures == 3      # attempts 0, 1, 2
        assert report.serial_fallbacks == 1

    def test_fallback_disabled_raises(self):
        sup = make_supervisor(
            lambda task: (_ for _ in ()).throw(RuntimeError("no")),
            policy=SupervisionPolicy(
                batch_timeout=5.0, max_retries=1, serial_fallback=False
            ),
        )
        with pytest.raises(WorkerPoolError, match="failed after"):
            sup.run(["a"])

    def test_no_pool_degrades_to_serial(self):
        sup = make_supervisor(
            lambda task: "never", pool_factory=lambda n: None
        )
        results, report = sup.run(["a", "b"])
        assert results == ["serial:a", "serial:b"]
        assert report.serial_fallbacks == 2
        assert report.batch_retries == 0

    def test_pool_factory_oserror_degrades(self):
        def broken_factory(n):
            raise OSError("fork failed")

        sup = make_supervisor(lambda task: "never",
                              pool_factory=broken_factory)
        results, report = sup.run(["a"])
        assert results == ["serial:a"]
        assert report.serial_fallbacks == 1

    def test_empty_task_list(self):
        sup = make_supervisor(lambda task: "x")
        results, report = sup.run([])
        assert results == []
        assert report == SupervisionReport()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(batch_timeout=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_retries=-1)

    def test_report_merges_into_stats(self):
        from repro.core.summary import RunStats

        stats = RunStats()
        report = SupervisionReport(
            worker_failures=2, batch_timeouts=1,
            batch_retries=3, serial_fallbacks=1,
        )
        report.merge_into(stats)
        report.merge_into(stats)
        assert stats.worker_failures == 4
        assert stats.batch_timeouts == 2
        assert stats.batch_retries == 6
        assert stats.serial_fallbacks == 2


def sup_run(worker_fn):
    return make_supervisor(worker_fn).run(["a", "b", "c"])


# ----------------------------------------------------------------------
# end-to-end: MultiprocessLDME under injected faults
# ----------------------------------------------------------------------
def small_graph():
    return web_host_graph(num_hosts=4, host_size=8, seed=1)


def mp_algo(fault_injector=None, batch_timeout=60.0, **kwargs):
    kwargs.setdefault("k", 4)
    kwargs.setdefault("iterations", 3)
    kwargs.setdefault("seed", 3)
    return MultiprocessLDME(
        num_workers=2,
        batch_timeout=batch_timeout,
        fault_injector=fault_injector,
        **kwargs,
    )


def assert_identical(a, b):
    assert a.partition.members_map() == b.partition.members_map()
    assert a.superedges == b.superedges
    assert a.corrections.additions == b.corrections.additions
    assert a.corrections.deletions == b.corrections.deletions


@needs_fork
class TestMultiprocessSupervision:
    def test_clean_run_records_no_incidents(self):
        graph = small_graph()
        result = mp_algo().summarize(graph)
        stats = result.stats
        assert stats.worker_failures == 0
        assert stats.batch_timeouts == 0
        assert stats.batch_retries == 0
        assert stats.serial_fallbacks == 0

    @pytest.mark.slow
    def test_worker_crash_retried_lossless(self):
        """A hard-killed worker (os._exit) surfaces as a timeout, the
        batch retries on a fresh pool, and the output is identical."""
        graph = small_graph()
        baseline = mp_algo().summarize(graph)
        injector = FaultInjector(
            [WorkerFault(iteration=1, batch_index=0, kind="crash")]
        )
        result = mp_algo(
            fault_injector=injector, batch_timeout=3.0
        ).summarize(graph)
        assert_identical(result, baseline)
        verify_lossless(graph, result)
        assert result.stats.batch_timeouts >= 1
        assert result.stats.batch_retries >= 1
        assert result.stats.serial_fallbacks == 0

    def test_worker_exception_retried_lossless(self):
        graph = small_graph()
        baseline = mp_algo().summarize(graph)
        injector = FaultInjector(
            [WorkerFault(iteration=2, batch_index=1, kind="exception")]
        )
        result = mp_algo(fault_injector=injector).summarize(graph)
        assert_identical(result, baseline)
        assert result.stats.worker_failures == 1
        assert result.stats.batch_retries == 1

    @pytest.mark.slow
    def test_hung_worker_times_out_and_retries(self):
        graph = small_graph()
        baseline = mp_algo().summarize(graph)
        injector = FaultInjector(
            [WorkerFault(iteration=1, batch_index=0, kind="slow", delay=30.0)]
        )
        result = mp_algo(
            fault_injector=injector, batch_timeout=1.0
        ).summarize(graph)
        assert_identical(result, baseline)
        assert result.stats.batch_timeouts >= 1

    def test_persistent_faults_fall_back_serial_lossless(self):
        """A batch that fails on every attempt is planned serially in the
        parent — graceful degradation with identical output."""
        graph = small_graph()
        baseline = mp_algo().summarize(graph)
        injector = FaultInjector(
            [
                WorkerFault(1, 0, attempt=a, kind="exception")
                for a in range(3)       # attempts 0..2 = initial + retries
            ]
        )
        result = mp_algo(fault_injector=injector).summarize(graph)
        assert_identical(result, baseline)
        verify_lossless(graph, result)
        assert result.stats.worker_failures == 3
        assert result.stats.serial_fallbacks >= 1

    def test_resumable_mp_run(self, tmp_path):
        """Supervision composes with checkpoint/resume."""
        from repro.resilience import run_resumable

        class Interrupt(Exception):
            pass

        graph = small_graph()
        baseline = mp_algo().summarize(graph)

        def boom(state):
            if state.iteration == 2:
                raise Interrupt()

        with pytest.raises(Interrupt):
            run_resumable(mp_algo(), graph, tmp_path / "c",
                          iteration_hook=boom)
        resumed = run_resumable(mp_algo(), graph, tmp_path / "c")
        assert_identical(resumed, baseline)
