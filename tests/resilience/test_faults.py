"""Unit tests for the deterministic fault-injection primitives."""

import os
import time

import pytest

from repro.resilience import (
    FaultInjector,
    WorkerFault,
    WorkerFaultError,
    flip_bit,
    partial_write,
    torn_tail,
    truncate_file,
)


class TestWorkerFault:
    def test_defaults(self):
        fault = WorkerFault(iteration=1, batch_index=0)
        assert fault.kind == "crash"
        assert fault.attempt == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WorkerFault(iteration=1, batch_index=0, kind="explode")

    def test_slow_needs_delay(self):
        with pytest.raises(ValueError, match="delay"):
            WorkerFault(iteration=1, batch_index=0, kind="slow")


class TestFaultInjector:
    def test_planned_lookup(self):
        fault = WorkerFault(iteration=2, batch_index=1, attempt=0)
        injector = FaultInjector([fault])
        assert injector.planned(2, 1, 0) is fault
        assert injector.planned(2, 1, 1) is None
        assert injector.planned(3, 1, 0) is None

    def test_duplicate_coordinates_rejected(self):
        fault = WorkerFault(iteration=1, batch_index=0)
        with pytest.raises(ValueError, match="duplicate"):
            FaultInjector([fault, WorkerFault(1, 0, kind="exception")])

    def test_no_fault_is_noop(self):
        injector = FaultInjector([])
        injector.on_worker_batch(1, 0, 0)
        assert injector.triggered == []

    def test_exception_kind_raises(self):
        injector = FaultInjector(
            [WorkerFault(iteration=1, batch_index=0, kind="exception")]
        )
        with pytest.raises(WorkerFaultError, match="iteration 1"):
            injector.on_worker_batch(1, 0, 0)
        assert injector.triggered == [(1, 0, 0)]

    def test_slow_kind_sleeps(self):
        injector = FaultInjector(
            [WorkerFault(1, 0, kind="slow", delay=0.05)]
        )
        tic = time.perf_counter()
        injector.on_worker_batch(1, 0, 0)
        assert time.perf_counter() - tic >= 0.05

    def test_attempt_scoping(self):
        # A fault at attempt 0 must not re-fire on the retry.
        injector = FaultInjector(
            [WorkerFault(1, 0, attempt=0, kind="exception")]
        )
        with pytest.raises(WorkerFaultError):
            injector.on_worker_batch(1, 0, 0)
        injector.on_worker_batch(1, 0, 1)       # retry sails through


class TestFileCorruption:
    def test_flip_bit_changes_one_byte(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(64)))
        offset = flip_bit(path, byte_offset=10, bit=3)
        assert offset == 10
        data = path.read_bytes()
        assert data[10] == 10 ^ 0b1000
        assert data[:10] == bytes(range(10))
        assert data[11:] == bytes(range(11, 64))

    def test_flip_bit_default_middle(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"\x00" * 100)
        assert flip_bit(path) == 50

    def test_flip_bit_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            flip_bit(path)

    def test_flip_bit_bounds(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abc")
        with pytest.raises(ValueError):
            flip_bit(path, byte_offset=3)
        with pytest.raises(ValueError):
            flip_bit(path, bit=8)

    def test_truncate(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 100)
        assert truncate_file(path, keep_fraction=0.25) == 25
        assert path.stat().st_size == 25

    def test_partial_write(self, tmp_path):
        path = tmp_path / "f.bin"
        written = partial_write(path, b"abcdefgh", write_fraction=0.5)
        assert written == 4
        assert path.read_bytes() == b"abcd"


class TestTornTail:
    """WAL-aware tearing: cut mid-record, exactly at a frame boundary."""

    def build_segment(self, tmp_path, records=8, seal=False):
        from repro.ingest.wal import WalWriter, segment_path

        with WalWriter(tmp_path, fsync=False) as writer:
            writer.append([("+", i, i + 1) for i in range(records)])
            writer.close(seal=seal)
        return segment_path(tmp_path, 1)

    def test_tears_at_frame_boundary(self, tmp_path):
        from repro.ingest.wal import read_segment

        path = self.build_segment(tmp_path)
        size = torn_tail(path, keep_records=5)
        assert os.path.getsize(path) == size
        info = read_segment(path)
        assert len(info.records) == 5
        assert info.torn_bytes > 0

    def test_keep_zero_leaves_header_plus_garbage(self, tmp_path):
        from repro.ingest.wal import read_segment

        path = self.build_segment(tmp_path)
        torn_tail(path, keep_records=0)
        info = read_segment(path)
        assert info.records == []
        assert info.torn_bytes > 0

    def test_keep_all_appends_partial_next_record(self, tmp_path):
        from repro.ingest.wal import read_segment

        path = self.build_segment(tmp_path, records=4)
        before = os.path.getsize(path)
        size = torn_tail(path, keep_records=4)
        assert size == before + 3       # default torn_bytes
        info = read_segment(path)
        assert len(info.records) == 4
        assert info.torn_bytes == 3

    def test_sealed_segment_loses_its_footer(self, tmp_path):
        from repro.ingest.wal import read_segment

        path = self.build_segment(tmp_path, seal=True)
        torn_tail(path, keep_records=2)
        info = read_segment(path)
        assert not info.sealed
        assert len(info.records) == 2

    def test_rejects_impossible_keeps(self, tmp_path):
        path = self.build_segment(tmp_path, records=3)
        with pytest.raises(ValueError, match="cannot keep"):
            torn_tail(path, keep_records=4)
        with pytest.raises(ValueError, match="non-negative"):
            torn_tail(path, keep_records=-1)
        with pytest.raises(ValueError, match="positive"):
            torn_tail(path, keep_records=1, torn_bytes=0)
