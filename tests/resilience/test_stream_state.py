"""Stream-file hardening and DynamicSummarizer checkpoint/restore."""

import os

import numpy as np
import pytest

from repro.core.reconstruct import verify_lossless
from repro.errors import CheckpointError
from repro.resilience import CheckpointManager
from repro.streaming import (
    STREAM_PAYLOAD_KIND,
    DynamicSummarizer,
    read_stream,
    write_stream,
)


def sample_events(num_nodes=24, count=200, seed=7):
    rng = np.random.default_rng(seed)
    events = []
    live = set()
    for _ in range(count):
        u, v = int(rng.integers(num_nodes)), int(rng.integers(num_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in live and rng.random() < 0.3:
            events.append(("-", u, v))
            live.discard(key)
        else:
            events.append(("+", u, v))
            live.add(key)
    return events


class TestReadStreamValidation:
    def write_lines(self, tmp_path, text):
        path = tmp_path / "s.stream"
        path.write_text(text)
        return path

    def test_roundtrip(self, tmp_path):
        events = sample_events()
        path = tmp_path / "s.stream"
        write_stream(events, path)
        assert list(read_stream(path)) == events

    def test_blank_and_comment_lines_skipped(self, tmp_path):
        path = self.write_lines(
            tmp_path, "# header\n\n+ 0 1\n   \n- 0 1\n"
        )
        assert list(read_stream(path)) == [("+", 0, 1), ("-", 0, 1)]

    def test_bad_op_reports_line(self, tmp_path):
        path = self.write_lines(tmp_path, "+ 0 1\n* 2 3\n")
        with pytest.raises(ValueError, match=r":2: expected"):
            list(read_stream(path))

    def test_wrong_field_count_reports_line(self, tmp_path):
        path = self.write_lines(tmp_path, "+ 0 1\n+ 2\n")
        with pytest.raises(ValueError, match=r":2: expected"):
            list(read_stream(path))

    def test_non_integer_reports_line(self, tmp_path):
        path = self.write_lines(tmp_path, "+ 0 1\n+ a 3\n")
        with pytest.raises(ValueError, match=r":2: non-integer"):
            list(read_stream(path))

    def test_negative_id_reports_line(self, tmp_path):
        path = self.write_lines(tmp_path, "+ 0 1\n+ -2 3\n")
        with pytest.raises(ValueError, match=r":2: negative"):
            list(read_stream(path))

    def test_write_stream_rejects_bad_op(self, tmp_path):
        with pytest.raises(ValueError, match="unknown stream op"):
            write_stream([("x", 0, 1)], tmp_path / "bad.stream")

    def test_failed_write_leaves_no_torn_file(self, tmp_path):
        path = tmp_path / "s.stream"
        write_stream([("+", 0, 1)], path)
        with pytest.raises(ValueError):
            write_stream([("+", 0, 1), ("x", 2, 3)], path)
        # Previous complete recording survives the failed overwrite.
        assert list(read_stream(path)) == [("+", 0, 1)]

    def test_failed_write_leaves_no_temp_debris(self, tmp_path):
        path = tmp_path / "s.stream"
        with pytest.raises(ValueError):
            write_stream([("x", 0, 1)], path)
        assert os.listdir(tmp_path) == []

    def test_crash_at_rename_preserves_old_stream(self, tmp_path,
                                                  monkeypatch):
        path = tmp_path / "s.stream"
        write_stream([("+", 0, 1)], path)

        def crash(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            write_stream([("+", 5, 6), ("-", 5, 6)], path)
        monkeypatch.undo()
        assert list(read_stream(path)) == [("+", 0, 1)]
        assert os.listdir(tmp_path) == ["s.stream"]

    def test_temp_file_complete_before_rename(self, tmp_path,
                                              monkeypatch):
        # The explicit flush inside write_stream means every line is on
        # disk in the temp file by the time os.replace publishes it.
        events = sample_events()
        path = tmp_path / "s.stream"
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            with open(src) as fh:
                seen["lines"] = fh.read().splitlines()
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        write_stream(events, path)
        assert len(seen["lines"]) == len(events)
        assert seen["lines"][-1].split() == \
            [events[-1][0], str(events[-1][1]), str(events[-1][2])]


class TestDynamicStateDict:
    def build(self, events):
        ds = DynamicSummarizer(num_nodes=24, seed=5)
        ds.apply(events)
        return ds

    def test_roundtrip_preserves_snapshot(self):
        ds = self.build(sample_events())
        restored = DynamicSummarizer.from_state(ds.state_dict())
        assert restored.num_nodes == ds.num_nodes
        assert restored.num_edges == ds.num_edges
        assert restored.events_processed == ds.events_processed
        a, b = ds.snapshot(), restored.snapshot()
        assert a.partition.members_map() == b.partition.members_map()
        assert a.superedges == b.superedges

    def test_restored_counts_match_oracle(self):
        ds = self.build(sample_events())
        restored = DynamicSummarizer.from_state(ds.state_dict())
        state = restored._state
        for sid in state.partition.supernode_ids():
            assert state.counts[sid] == state.recompute_counts(sid)

    def test_continue_after_restore_stays_lossless(self):
        events = sample_events(count=300)
        prefix, suffix = events[:150], events[150:]
        ds = self.build(prefix)
        restored = DynamicSummarizer.from_state(ds.state_dict())
        restored.apply(suffix)
        summary = restored.snapshot()
        verify_lossless(restored.current_graph(), summary)
        assert restored.events_processed == len(prefix) + len(suffix)

    def test_restore_determinism(self):
        # Restoring the same checkpoint twice and replaying the same
        # suffix gives identical results (resume is reproducible).
        events = sample_events(count=300)
        ds = self.build(events[:150])
        payload = ds.state_dict()
        results = []
        for _ in range(2):
            restored = DynamicSummarizer.from_state(payload)
            restored.apply(events[150:])
            results.append(restored.snapshot())
        assert results[0].partition.members_map() == \
            results[1].partition.members_map()
        assert results[0].superedges == results[1].superedges

    def test_payload_is_json_safe_via_checkpoint_manager(self, tmp_path):
        ds = self.build(sample_events())
        manager = CheckpointManager(tmp_path / "c")
        manager.save(ds.events_processed, ds.state_dict())
        loaded = manager.load_latest()
        assert loaded.payload["kind"] == STREAM_PAYLOAD_KIND
        restored = DynamicSummarizer.from_state(loaded.payload)
        assert restored.num_edges == ds.num_edges

    def test_wrong_kind_rejected(self):
        with pytest.raises(CheckpointError, match=STREAM_PAYLOAD_KIND):
            DynamicSummarizer.from_state({"kind": "ldme-run"})

    def test_malformed_payload_rejected(self):
        payload = self.build(sample_events()[:20]).state_dict()
        del payload["partition"]
        with pytest.raises(CheckpointError, match="malformed"):
            DynamicSummarizer.from_state(payload)
