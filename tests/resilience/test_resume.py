"""Kill-and-resume: interrupted runs finish bit-identical to uninterrupted.

The acceptance property for the checkpoint subsystem: for any interrupt
point, a resumed run must produce the *same* |P|, |C+|, |C-| — in fact
the same partition, superedges and corrections verbatim — as a run that
was never interrupted. Covered three ways: in-process interrupts at every
boundary, a real SIGKILL of a child process, and a Hypothesis sweep over
seeds × interrupt points × checkpoint cadence.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ldme import LDME
from repro.core.reconstruct import verify_lossless
from repro.errors import CheckpointError
from repro.graph.generators import web_host_graph
from repro.resilience import CheckpointManager, flip_bit, run_resumable

ITERATIONS = 4


class Interrupt(Exception):
    """Simulated crash raised from the iteration hook."""


def small_graph(seed=1):
    return web_host_graph(num_hosts=4, host_size=8, seed=seed)


def make_algo(seed=3, **kwargs):
    kwargs.setdefault("k", 4)
    kwargs.setdefault("iterations", ITERATIONS)
    return LDME(seed=seed, **kwargs)


def crash_then_resume(graph, ckpt_dir, crash_at, checkpoint_every=1,
                      algo_factory=make_algo):
    """Run until ``crash_at`` iterations complete, die, resume, finish."""

    def boom(state):
        if state.iteration == crash_at:
            raise Interrupt()

    with pytest.raises(Interrupt):
        run_resumable(
            algo_factory(), graph, ckpt_dir,
            checkpoint_every=checkpoint_every, iteration_hook=boom,
        )
    return run_resumable(
        algo_factory(), graph, ckpt_dir, checkpoint_every=checkpoint_every
    )


def assert_identical(a, b):
    assert a.partition.members_map() == b.partition.members_map()
    assert a.superedges == b.superedges
    assert a.corrections.additions == b.corrections.additions
    assert a.corrections.deletions == b.corrections.deletions


class TestInProcessResume:
    @pytest.mark.parametrize("crash_at", [1, 2, 3, ITERATIONS])
    def test_resume_bit_identical(self, tmp_path, crash_at):
        graph = small_graph()
        baseline = make_algo().summarize(graph)
        resumed = crash_then_resume(graph, tmp_path / "c", crash_at)
        assert_identical(resumed, baseline)
        verify_lossless(graph, resumed)

    def test_sparse_checkpoints_resume(self, tmp_path):
        # checkpoint_every=2 → crash at iter 3 resumes from iter 2.
        graph = small_graph()
        baseline = make_algo().summarize(graph)
        resumed = crash_then_resume(
            graph, tmp_path / "c", crash_at=3, checkpoint_every=2
        )
        assert_identical(resumed, baseline)

    def test_corrupt_newest_checkpoint_still_identical(self, tmp_path):
        graph = small_graph()
        baseline = make_algo().summarize(graph)
        manager = CheckpointManager(tmp_path / "c")

        def boom(state):
            if state.iteration == 3:
                raise Interrupt()

        with pytest.raises(Interrupt):
            run_resumable(make_algo(), graph, manager, iteration_hook=boom)
        # Damage the newest checkpoint: resume falls back to iteration 2
        # and must still converge to the identical result.
        newest = manager.entries()[-1]
        flip_bit(os.path.join(manager.directory, newest.file))
        resumed = run_resumable(make_algo(), graph, manager)
        assert_identical(resumed, baseline)

    def test_resume_false_ignores_checkpoints(self, tmp_path):
        graph = small_graph()
        with pytest.raises(Interrupt):
            run_resumable(
                make_algo(), graph, tmp_path / "c",
                iteration_hook=lambda s: (_ for _ in ()).throw(Interrupt()),
            )
        result = run_resumable(
            make_algo(), graph, tmp_path / "c", resume=False
        )
        assert_identical(result, make_algo().summarize(graph))

    def test_completed_run_resumes_to_same_result(self, tmp_path):
        # Re-running over a finished checkpoint dir skips straight to
        # encode and reproduces the result (idempotent restarts).
        graph = small_graph()
        first = run_resumable(make_algo(), graph, tmp_path / "c")
        second = run_resumable(make_algo(), graph, tmp_path / "c")
        assert_identical(first, second)

    def test_early_stop_resume(self, tmp_path):
        graph = small_graph()

        def factory():
            return make_algo(iterations=8, early_stop_rounds=2)

        baseline = factory().summarize(graph)
        stopped_at = baseline.stats.iterations[-1].iteration
        resumed = crash_then_resume(
            graph, tmp_path / "c", crash_at=max(1, stopped_at - 1),
            algo_factory=factory,
        )
        assert_identical(resumed, baseline)


class TestFingerprintGuard:
    def test_different_seed_rejected(self, tmp_path):
        graph = small_graph()
        run_resumable(make_algo(seed=3), graph, tmp_path / "c")
        with pytest.raises(CheckpointError, match="different"):
            run_resumable(make_algo(seed=4), graph, tmp_path / "c")

    def test_different_graph_rejected(self, tmp_path):
        run_resumable(make_algo(), small_graph(seed=1), tmp_path / "c")
        with pytest.raises(CheckpointError, match="different"):
            run_resumable(make_algo(), small_graph(seed=2), tmp_path / "c")

    def test_mismatch_escape_hatch(self, tmp_path):
        graph = small_graph()
        run_resumable(make_algo(seed=3), graph, tmp_path / "c")
        result = run_resumable(
            make_algo(seed=4), graph, tmp_path / "c", resume=False
        )
        assert_identical(result, make_algo(seed=4).summarize(graph))


class TestSigkillResume:
    def test_killed_process_resumes_bit_identical(self, tmp_path):
        """A child hard-killed mid-run (SIGKILL, no cleanup) leaves a
        checkpoint directory the parent resumes to the exact result."""
        ckpt_dir = tmp_path / "c"
        child = textwrap.dedent(
            f"""
            import os, signal
            from repro.core.ldme import LDME
            from repro.graph.generators import web_host_graph
            from repro.resilience import run_resumable

            graph = web_host_graph(num_hosts=4, host_size=8, seed=1)

            def die(state):
                if state.iteration == 2:
                    os.kill(os.getpid(), signal.SIGKILL)

            run_resumable(
                LDME(k=4, iterations={ITERATIONS}, seed=3), graph,
                {str(ckpt_dir)!r}, iteration_hook=die,
            )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, timeout=120,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        manager = CheckpointManager(ckpt_dir)
        assert manager.load_latest() is not None

        graph = small_graph()
        resumed = run_resumable(make_algo(), graph, ckpt_dir)
        baseline = make_algo().summarize(graph)
        assert_identical(resumed, baseline)
        verify_lossless(graph, resumed)


class TestResumeProperty:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(0, 50),
        crash_at=st.integers(1, ITERATIONS),
        checkpoint_every=st.integers(1, 3),
    )
    def test_any_interrupt_point_is_bit_identical(
        self, tmp_path, seed, crash_at, checkpoint_every
    ):
        graph = small_graph()
        unique = tmp_path / f"c_{seed}_{crash_at}_{checkpoint_every}"
        baseline = make_algo(seed=seed).summarize(graph)
        resumed = crash_then_resume(
            graph, unique, crash_at, checkpoint_every=checkpoint_every,
            algo_factory=lambda: make_algo(seed=seed),
        )
        assert_identical(resumed, baseline)
