"""CheckpointManager: atomicity, integrity, recovery, retention."""

import json
import os

import pytest

from repro.errors import CheckpointError, CorruptCheckpointError
from repro.resilience import CheckpointManager, flip_bit, truncate_file
from repro.resilience.checkpoint import MANIFEST_NAME


@pytest.fixture
def manager(tmp_path):
    return CheckpointManager(tmp_path / "ckpts", keep=3)


def payload(i):
    return {"kind": "test", "value": i, "blob": list(range(i * 3))}


class TestSaveLoad:
    def test_roundtrip(self, manager):
        manager.save(1, payload(1))
        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.iteration == 1
        assert loaded.payload == payload(1)
        assert loaded.skipped == []

    def test_latest_wins(self, manager):
        for i in range(1, 4):
            manager.save(i, payload(i))
        loaded = manager.load_latest()
        assert loaded.iteration == 3
        assert loaded.payload == payload(3)

    def test_load_by_entry(self, manager):
        manager.save(1, payload(1))
        manager.save(2, payload(2))
        entries = manager.entries()
        assert [e.iteration for e in entries] == [1, 2]
        assert manager.load(entries[0]) == payload(1)

    def test_empty_directory(self, manager):
        assert manager.load_latest() is None
        assert manager.entries() == []

    def test_same_iteration_overwrites(self, manager):
        manager.save(1, payload(1))
        manager.save(1, {"kind": "test", "value": 99})
        assert manager.load_latest().payload["value"] == 99
        assert len(manager.entries()) == 1

    def test_missing_file_raises(self, manager):
        with pytest.raises(CheckpointError, match="missing"):
            manager.load("ckpt_00000042.json")

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_negative_iteration_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.save(-1, payload(0))


class TestRetention:
    def test_pruned_to_keep(self, manager):
        for i in range(1, 8):
            manager.save(i, payload(i))
        entries = manager.entries()
        assert [e.iteration for e in entries] == [5, 6, 7]
        names = set(os.listdir(manager.directory))
        assert names == {MANIFEST_NAME} | {e.file for e in entries}


class TestCorruptionRecovery:
    def test_bitflip_newest_falls_back(self, manager):
        manager.save(1, payload(1))
        manager.save(2, payload(2))
        flip_bit(os.path.join(manager.directory, "ckpt_00000002.json"))
        loaded = manager.load_latest()
        assert loaded.iteration == 1
        assert loaded.payload == payload(1)
        assert loaded.skipped == ["ckpt_00000002.json"]

    def test_truncated_newest_falls_back(self, manager):
        manager.save(1, payload(1))
        manager.save(2, payload(2))
        truncate_file(os.path.join(manager.directory, "ckpt_00000002.json"))
        assert manager.load_latest().iteration == 1

    def test_all_corrupt_returns_none(self, manager):
        manager.save(1, payload(1))
        flip_bit(os.path.join(manager.directory, "ckpt_00000001.json"))
        assert manager.load_latest() is None

    def test_corrupt_file_typed_error(self, manager):
        manager.save(1, payload(1))
        path = os.path.join(manager.directory, "ckpt_00000001.json")
        flip_bit(path)
        with pytest.raises(CorruptCheckpointError) as excinfo:
            manager.load("ckpt_00000001.json")
        assert excinfo.value.path == path

    def test_manifest_deleted_rebuilt(self, manager):
        manager.save(1, payload(1))
        manager.save(2, payload(2))
        os.unlink(os.path.join(manager.directory, MANIFEST_NAME))
        assert [e.iteration for e in manager.entries()] == [1, 2]
        assert manager.load_latest().iteration == 2

    def test_manifest_corrupt_rebuilt(self, manager):
        manager.save(1, payload(1))
        with open(os.path.join(manager.directory, MANIFEST_NAME), "w") as fh:
            fh.write("{ not json")
        assert manager.load_latest().iteration == 1

    def test_rebuild_skips_damaged_files(self, manager):
        manager.save(1, payload(1))
        manager.save(2, payload(2))
        flip_bit(os.path.join(manager.directory, "ckpt_00000002.json"))
        os.unlink(os.path.join(manager.directory, MANIFEST_NAME))
        assert [e.iteration for e in manager.entries()] == [1]

    def test_deleted_checkpoint_skipped(self, manager):
        manager.save(1, payload(1))
        manager.save(2, payload(2))
        os.unlink(os.path.join(manager.directory, "ckpt_00000002.json"))
        loaded = manager.load_latest()
        assert loaded.iteration == 1

    def test_header_is_json_line(self, manager):
        # The self-verifying layout: header line then body.
        manager.save(1, payload(1))
        raw = open(
            os.path.join(manager.directory, "ckpt_00000001.json"), "rb"
        ).read()
        header, body = raw.split(b"\n", 1)
        doc = json.loads(header)
        assert doc["bytes"] == len(body)


class TestClear:
    def test_clear_removes_everything(self, manager):
        manager.save(1, payload(1))
        manager.clear()
        assert manager.load_latest() is None
        assert os.listdir(manager.directory) == []
