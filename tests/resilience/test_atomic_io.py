"""Atomic write primitives and the writers that use them.

The invariant under test: after any failed or interrupted write, the
destination path either holds the complete previous artifact or does not
exist — never a torn half-file — and no temp litter is left behind.
"""

import gzip
import os
import zlib

import pytest

from repro.core.ldme import LDME
from repro.graph.generators import web_host_graph
from repro.graph.io import (
    load_graph,
    read_summary,
    save_graph,
    write_summary,
)
from repro.ioutil import atomic_write, file_crc32


class Boom(Exception):
    pass


class TestAtomicWrite:
    def test_success_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path, "w", encoding="utf-8") as fh:
            fh.write("hello")
        assert path.read_text() == "hello"

    def test_failure_preserves_previous(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("previous")
        with pytest.raises(Boom):
            with atomic_write(path, "w", encoding="utf-8") as fh:
                fh.write("partial new conten")
                raise Boom()
        assert path.read_text() == "previous"

    def test_failure_with_no_previous_leaves_nothing(self, tmp_path):
        path = tmp_path / "fresh.txt"
        with pytest.raises(Boom):
            with atomic_write(path, "w", encoding="utf-8") as fh:
                fh.write("x")
                raise Boom()
        assert not path.exists()

    def test_no_temp_litter(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_write(path, "wb") as fh:
            fh.write(b"data")
        with pytest.raises(Boom):
            with atomic_write(path, "wb") as fh:
                raise Boom()
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_write(path, "wb") as fh:
            fh.write(b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_open_fn_gzip(self, tmp_path):
        path = tmp_path / "out.gz"
        with atomic_write(
            path, open_fn=lambda tmp: gzip.open(tmp, "wt")
        ) as fh:
            fh.write("zipped")
        with gzip.open(path, "rt") as fh:
            assert fh.read() == "zipped"

    def test_file_crc32(self, tmp_path):
        path = tmp_path / "f.bin"
        data = bytes(range(256)) * 10
        path.write_bytes(data)
        assert file_crc32(path) == zlib.crc32(data)


class TestAtomicGraphWriters:
    @pytest.fixture
    def graph(self):
        return web_host_graph(num_hosts=3, host_size=6, seed=1)

    def test_edge_list_roundtrip(self, tmp_path, graph):
        path = tmp_path / "g.txt"
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_gzip_edge_list_roundtrip(self, tmp_path, graph):
        path = tmp_path / "g.txt.gz"
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_summary_roundtrip(self, tmp_path, graph):
        summary = LDME(k=4, iterations=3, seed=0).summarize(graph)
        path = tmp_path / "s.summary"
        write_summary(summary, path)
        loaded = read_summary(path)
        assert loaded.superedges == summary.superedges

    def test_summary_gzip_roundtrip(self, tmp_path, graph):
        summary = LDME(k=4, iterations=3, seed=0).summarize(graph)
        path = tmp_path / "s.summary.gz"
        write_summary(summary, path)
        loaded = read_summary(path)
        assert loaded.superedges == summary.superedges

    def test_no_temp_litter_after_writes(self, tmp_path, graph):
        save_graph(graph, tmp_path / "g.txt")
        save_graph(graph, tmp_path / "g.txt.gz")
        summary = LDME(k=4, iterations=3, seed=0).summarize(graph)
        write_summary(summary, tmp_path / "s.summary")
        names = sorted(os.listdir(tmp_path))
        assert names == ["g.txt", "g.txt.gz", "s.summary"]
