"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import web_host_graph
from repro.graph.io import read_summary, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = web_host_graph(num_hosts=5, host_size=10, seed=1)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summarize_defaults(self):
        args = build_parser().parse_args(["summarize", "g.txt"])
        assert args.k == 5
        assert args.iterations == 20
        assert args.algorithm == "ldme"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSummarize:
    def test_prints_metrics(self, graph_file, capsys):
        path, _ = graph_file
        code = main(["summarize", str(path), "-T", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compression" in out

    def test_writes_summary_file(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        out_path = tmp_path / "out.summary"
        code = main(["summarize", str(path), "-T", "3", "-o", str(out_path)])
        assert code == 0
        loaded = read_summary(out_path)
        assert loaded.num_nodes == graph.num_nodes

    def test_sweg_algorithm_option(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["summarize", str(path), "--algorithm", "sweg",
                     "-T", "2"]) == 0

    def test_missing_file_error_code(self, capsys):
        assert main(["summarize", "/nonexistent/file.txt"]) == 1
        assert "error" in capsys.readouterr().err


class TestReconstruct:
    def test_roundtrip(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        summary_path = tmp_path / "out.summary"
        rebuilt_path = tmp_path / "rebuilt.txt"
        main(["summarize", str(path), "-T", "3", "-o", str(summary_path)])
        code = main(["reconstruct", str(summary_path), "-o", str(rebuilt_path)])
        assert code == 0
        from repro.graph.io import read_edge_list

        assert read_edge_list(rebuilt_path,
                              num_nodes=graph.num_nodes) == graph


class TestStats:
    def test_prints_stats(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert str(graph.num_edges) in out.replace(",", "")


class TestDatasets:
    def test_lists_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cnr-2000" in out
        assert "arabic-2005" in out


class TestExperiment:
    def test_runs_named_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_unknown_experiment_error(self, capsys):
        assert main(["experiment", "bogus"]) == 1
        assert "error" in capsys.readouterr().err


class TestCompare:
    def test_compares_algorithms(self, graph_file, capsys):
        path, _ = graph_file
        code = main(["compare", str(path), "--algorithms", "ldme5", "sweg",
                     "-T", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LDME5" in out
        assert "SWeG" in out
        assert "bit_ratio" in out

    def test_rejects_unknown_algorithm(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main(["compare", str(path), "--algorithms", "bogus"])


class TestAnalyze:
    def test_analyzes_text_summary(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        summary_path = tmp_path / "s.summary"
        main(["summarize", str(path), "-T", "3", "-o", str(summary_path)])
        capsys.readouterr()
        assert main(["analyze", str(summary_path)]) == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "pagerank_winner" in out

    def test_analyzes_binary_summary(self, graph_file, tmp_path, capsys):
        from repro.binaryio import write_summary_binary
        from repro.core.ldme import LDME
        from repro.graph.io import load_graph

        path, _ = graph_file
        summary = LDME(k=5, iterations=3, seed=0).summarize(load_graph(path))
        binary_path = tmp_path / "s.ldmeb"
        write_summary_binary(summary, binary_path)
        assert main(["analyze", str(binary_path)]) == 0
        assert "objective" in capsys.readouterr().out


class TestStream:
    def test_replays_stream(self, tmp_path, capsys):
        from repro.streaming import write_stream

        events = [("+", 0, 1), ("+", 1, 2), ("+", 2, 3), ("-", 0, 1)]
        stream_path = tmp_path / "events.stream"
        write_stream(events, stream_path)
        out_path = tmp_path / "snap.summary"
        code = main(["stream", str(stream_path), "--num-nodes", "4",
                     "-o", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "compression" in out
        from repro.graph.io import read_summary

        snapshot = read_summary(out_path)
        assert snapshot.num_nodes == 4

    def test_requires_num_nodes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stream", "whatever.stream"])


class TestIngest:
    def write_events(self, tmp_path, count=40):
        from repro.streaming import write_stream

        events = [("+", i % 7, (i + 1) % 7) for i in range(count)]
        path = tmp_path / "events.stream"
        write_stream(events, path)
        return path, events

    def ingest_args(self, tmp_path, stream, *extra):
        return ["ingest", str(stream), "--wal-dir", str(tmp_path / "wal"),
                "--num-nodes", "7", "--no-fsync", *extra]

    def test_ingests_stream_and_writes_summary(self, tmp_path, capsys):
        stream, events = self.write_events(tmp_path)
        out_path = tmp_path / "final.summary"
        code = main(self.ingest_args(tmp_path, stream, "-o", str(out_path)))
        assert code == 0
        out = capsys.readouterr().out
        assert f"submitted {len(events)} event(s)" in out
        assert f"seq {len(events)}" in out
        from repro.graph.io import read_summary

        assert read_summary(out_path).num_nodes == 7

    def test_rerun_is_idempotent(self, tmp_path, capsys):
        stream, events = self.write_events(tmp_path)
        assert main(self.ingest_args(tmp_path, stream)) == 0
        capsys.readouterr()
        assert main(self.ingest_args(tmp_path, stream)) == 0
        out = capsys.readouterr().out
        assert "submitted 0 event(s)" in out
        assert f"skipped {len(events)} already durable" in out

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        stream, _ = self.write_events(tmp_path)
        assert main(self.ingest_args(tmp_path, stream, "--listen", "0")) == 2
        assert main(["ingest", "--wal-dir", str(tmp_path / "wal"),
                     "--num-nodes", "7"]) == 2

    def test_missing_stream_file_error_code(self, tmp_path, capsys):
        code = main(self.ingest_args(tmp_path, tmp_path / "absent.stream"))
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExperimentFormats:
    def test_csv_output(self, capsys):
        assert main(["experiment", "table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("Graph,")

    def test_json_output(self, capsys):
        import json

        assert main(["experiment", "table1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert len(payload["rows"]) == 8


class TestCheckpointFlags:
    def test_checkpoint_then_resume(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        ckpt = tmp_path / "part.ckpt"
        assert main(["summarize", str(path), "-T", "3",
                     "--checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()
        assert main(["summarize", str(path), "-T", "2",
                     "--resume-from", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "compression" in out

    def test_chunked_ingestion(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["summarize", str(path), "-T", "2", "--chunked"]) == 0
        out = capsys.readouterr().out
        assert str(graph.num_edges) in out.replace(",", "")


class TestEvaluate:
    def test_scores_against_labels(self, graph_file, tmp_path, capsys):
        path, graph = graph_file
        summary_path = tmp_path / "s.summary"
        main(["summarize", str(path), "-T", "3", "-o", str(summary_path)])
        labels_path = tmp_path / "labels.txt"
        labels_path.write_text(
            "\n".join(f"{v} {v % 3}" for v in range(graph.num_nodes))
        )
        capsys.readouterr()
        assert main(["evaluate", str(summary_path), str(labels_path)]) == 0
        out = capsys.readouterr().out
        assert "purity" in out
        assert "nmi" in out

    def test_size_mismatch_errors(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        summary_path = tmp_path / "s.summary"
        main(["summarize", str(path), "-T", "2", "-o", str(summary_path)])
        labels_path = tmp_path / "labels.txt"
        labels_path.write_text("0 0\n1 0\n")
        assert main(["evaluate", str(summary_path), str(labels_path)]) == 1


class TestExperimentOutputDir:
    def test_saves_results_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["experiment", "table1", "--output-dir",
                     str(out_dir)]) == 0
        assert (out_dir / "table1.csv").exists()
        assert "saved" in capsys.readouterr().out


class TestShardSummarize:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["shard-summarize", "g.txt"])
        assert args.shards == 4
        assert args.k == 5
        assert args.virtual_nodes == 64
        assert args.kernels == "numpy"

    def test_writes_manifest(self, graph_file, tmp_path, capsys):
        from repro.shard import load_manifest

        path, graph = graph_file
        out = tmp_path / "manifest"
        code = main(["shard-summarize", str(path), "--shards", "2",
                     "-T", "3", "-o", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "ldme-sharded-2" in stdout
        assert "serve-cluster --manifest" in stdout
        manifest = load_manifest(out)
        assert manifest.load_global().num_nodes == graph.num_nodes
        assert manifest.ring.num_shards == 2

    def test_missing_file_error_code(self, capsys):
        assert main(["shard-summarize", "/nonexistent/g.txt",
                     "-T", "2"]) == 1
        assert "error" in capsys.readouterr().err

    def test_query_manifest_requires_cluster(self, capsys):
        assert main(["query", "ping", "--manifest", "m/"]) == 2
        assert "--manifest requires --cluster" in capsys.readouterr().err

    def test_serve_cluster_requires_exactly_one_source(self, capsys):
        assert main(["serve-cluster"]) == 2
        assert main(["serve-cluster", "s.ldmeb",
                     "--manifest", "m/"]) == 2
        err = capsys.readouterr().err
        assert "either a summary file or --manifest" in err


class TestServeQueryParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "s.ldmeb"])
        assert args.host == "127.0.0.1"
        assert args.port == 7421
        assert args.batch_window == pytest.approx(0.002)
        assert args.cache_size == 4096
        assert args.allow_reload is False

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "neighbors", "5"])
        assert args.op == "neighbors"
        assert args.args == ["5"]
        assert args.port == 7421

    def test_query_rejects_unknown_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "frobnicate"])


class TestQueryCommand:
    @pytest.fixture
    def server(self, graph_file):
        from repro.core.ldme import LDME
        from repro.serve import ServerConfig, ServerThread

        _, graph = graph_file
        summary = LDME(k=5, iterations=3, seed=0).summarize(graph)
        with ServerThread(summary, ServerConfig(batch_window=0.001)) \
                as handle:
            yield handle, summary

    def test_query_neighbors_matches_index(self, server, capsys):
        from repro.queries import SummaryIndex

        handle, summary = server
        code = main(["query", "neighbors", "7", "--port",
                     str(handle.port)])
        assert code == 0
        out = capsys.readouterr().out.split()
        assert [int(x) for x in out] == SummaryIndex(summary).neighbors(7)

    def test_query_stats_is_json(self, server, capsys):
        import json

        handle, _ = server
        assert main(["query", "stats", "--port", str(handle.port)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_nodes"] > 0

    def test_query_ping(self, server, capsys):
        handle, _ = server
        assert main(["query", "ping", "--port", str(handle.port)]) == 0
        assert "pong" in capsys.readouterr().out

    def test_query_bfs_prints_distances(self, server, capsys):
        handle, _ = server
        assert main(["query", "bfs", "0", "--port",
                     str(handle.port)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].split() == ["0", "0"]

    def test_missing_argument_is_exit_2(self, server, capsys):
        handle, _ = server
        assert main(["query", "neighbors", "--port",
                     str(handle.port)]) == 2
        assert "missing" in capsys.readouterr().err

    def test_connection_refused_is_error(self, capsys):
        # port 1: nothing listening; retries exhausted -> exit 1
        assert main(["query", "ping", "--port", "1"]) == 1
        assert "error" in capsys.readouterr().err


class TestPythonDashM:
    def test_module_entry_point(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, env=env, timeout=120,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0
        assert "serve" in result.stdout
        assert "query" in result.stdout
