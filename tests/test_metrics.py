"""Tests for bit-level size metrics."""

import pytest

from repro.core.ldme import LDME
from repro.graph.graph import Graph
from repro.metrics import (
    delta_encoded_bits,
    graph_size_bits,
    size_report,
    summary_size_bits,
    varint_bits,
)


class TestVarint:
    def test_small_values_one_byte(self):
        assert varint_bits(0) == 8
        assert varint_bits(127) == 8

    def test_boundaries(self):
        assert varint_bits(128) == 16
        assert varint_bits(16_383) == 16
        assert varint_bits(16_384) == 24

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_bits(-1)


class TestDeltaEncoding:
    def test_gap_coding(self):
        # gaps 5, 2, 120 → all one byte each
        assert delta_encoded_bits([5, 7, 127]) == 24

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            delta_encoded_bits([5, 3])

    def test_empty(self):
        assert delta_encoded_bits([]) == 0

    def test_dense_list_cheaper_than_fixed(self):
        values = list(range(1000, 2000))
        fixed = len(values) * 16
        assert delta_encoded_bits(values) < fixed


class TestGraphSize:
    def test_fixed_width_formula(self, triangle):
        # 3 nodes → 2 bits per id, 3 edges × 2 ids.
        assert graph_size_bits(triangle, "fixed") == 3 * 2 * 2

    def test_delta_no_larger_for_clustered_rows(self, small_web):
        assert graph_size_bits(small_web, "delta") > 0

    def test_unknown_encoding(self, triangle):
        with pytest.raises(ValueError):
            graph_size_bits(triangle, "huffman")

    def test_empty_graph(self):
        assert graph_size_bits(Graph.from_edges(4, []), "fixed") == 0


class TestSummarySize:
    def test_components_accounted(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0).summarize(small_web)
        bits = summary_size_bits(summary, "fixed")
        assert bits > 0
        # Superloops cost one bit each.
        no_loops = bits - summary.num_superloops
        assert no_loops % 1 == 0

    def test_delta_encoding_runs(self, small_web):
        summary = LDME(k=5, iterations=8, seed=0).summarize(small_web)
        assert summary_size_bits(summary, "delta") > 0

    def test_unknown_encoding(self, small_web):
        summary = LDME(k=5, iterations=2, seed=0).summarize(small_web)
        with pytest.raises(ValueError):
            summary_size_bits(summary, "huffman")


class TestSizeReport:
    def test_good_summary_saves_bits(self, small_web):
        summary = LDME(k=5, iterations=15, seed=0).summarize(small_web)
        report = size_report(small_web, summary)
        assert report.compression == summary.compression
        assert 0 < report.bit_ratio < 1.5
        assert report.bit_savings == pytest.approx(1 - report.bit_ratio)

    def test_report_fields(self, small_web):
        summary = LDME(k=5, iterations=3, seed=0).summarize(small_web)
        report = size_report(small_web, summary, encoding="delta")
        assert report.graph_bits > 0
        assert report.summary_bits > 0
        assert report.objective == summary.objective
