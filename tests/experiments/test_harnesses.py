"""Integration tests for the per-figure experiment harnesses.

Each harness runs at toy scale here (tiny graphs, few iterations); the
shape assertions mirror what the corresponding paper figure shows.
"""

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5a import run_fig5a
from repro.experiments.fig5b import run_fig5b
from repro.experiments.fig5c import run_fig5c, sbm_graph_for_level
from repro.experiments.runner import EXPERIMENTS, run_all, write_report
from repro.experiments.table1 import run_table1
from repro.graph.generators import web_host_graph


@pytest.fixture(scope="module")
def toy_graphs():
    return {"toy": web_host_graph(num_hosts=8, host_size=15, seed=1)}


class TestTable1:
    def test_eight_rows(self):
        result = run_table1()
        assert len(result.rows) == 8
        assert result.rows[0]["Abbr"] == "CN"

    def test_reports_both_scales(self):
        row = run_table1().rows[0]
        assert row["Paper edges"] > row["Surrogate edges"]


class TestFig2:
    def test_rows_per_graph_algorithm_iteration(self, toy_graphs):
        result = run_fig2(
            graphs=toy_graphs, iterations_list=(1, 2), include_sweg=True
        )
        assert len(result.rows) == 6  # 1 graph × 3 algorithms × 2 T values

    def test_metrics_present(self, toy_graphs):
        result = run_fig2(graphs=toy_graphs, iterations_list=(2,))
        for row in result.rows:
            assert 0 <= row["compression"] <= 1
            assert row["total_s"] >= row["encode_s"]

    def test_sweg_optional(self, toy_graphs):
        result = run_fig2(
            graphs=toy_graphs, iterations_list=(1,), include_sweg=False
        )
        assert {row["algorithm"] for row in result.rows} == {"LDME5", "LDME20"}


class TestFig3:
    def test_ldme_rows_marked_feasible(self, toy_graphs):
        result = run_fig3(graphs=toy_graphs, iterations=2)
        assert all(row["feasible"] for row in result.rows)
        assert {row["algorithm"] for row in result.rows} == {"LDME5", "LDME20"}

    def test_sweg_budget_row(self, toy_graphs):
        result = run_fig3(
            graphs=toy_graphs, iterations=2, sweg_budget_seconds=1e9
        )
        sweg_rows = [r for r in result.rows if r["algorithm"] == "SWeG"]
        assert len(sweg_rows) == 1
        assert sweg_rows[0]["feasible"]


class TestFig4:
    def test_shape_matches_paper(self, toy_graphs):
        result = run_fig4(graphs=toy_graphs, k_values=(2, 10))
        groups = dict(result.series("k", "num_groups"))
        max_sizes = dict(result.series("k", "max_group_size"))
        assert groups[10] >= groups[2]
        assert max_sizes[10] <= max_sizes[2]


class TestFig5a:
    def test_algorithms_present(self, toy_graphs):
        result = run_fig5a(graphs=toy_graphs, iterations=2, sample_size=10)
        algos = {row["algorithm"] for row in result.rows}
        assert algos == {"LDME5", "LDME20", "MoSSo"}

    def test_vog_optional(self, toy_graphs):
        result = run_fig5a(
            graphs=toy_graphs, iterations=1, sample_size=5, include_vog=True
        )
        assert any(row["algorithm"] == "VoG" for row in result.rows)


class TestFig5b:
    def test_speedup_reported(self, toy_graphs):
        result = run_fig5b(graphs=toy_graphs, iterations=2, num_workers=4)
        for row in result.rows:
            assert row["parallel_speedup"] > 0
            assert row["simulated_s"] > 0

    def test_sweg_included_by_default(self, toy_graphs):
        result = run_fig5b(graphs=toy_graphs, iterations=1)
        assert any(row["algorithm"] == "SWeG" for row in result.rows)


class TestFig5c:
    def test_density_sweep_rows(self):
        result = run_fig5c(
            levels=(0.0, 0.4), community_size=40, iterations=2,
            include_vog=False, mosso_sample_size=10,
        )
        levels = {row["density_level"] for row in result.rows}
        assert levels == {0.0, 0.4}
        algos = {row["algorithm"] for row in result.rows}
        assert {"LDME5", "LDME20", "SWeG", "MoSSo"} <= algos

    def test_density_increases_edges(self):
        sparse = sbm_graph_for_level(0.0, community_size=50, seed=0)
        dense = sbm_graph_for_level(1.0, community_size=50, seed=0)
        assert dense.num_edges > sparse.num_edges

    def test_level_validated(self):
        with pytest.raises(ValueError):
            sbm_graph_for_level(-1.0)


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c",
            "tuning", "lossy", "scaling", "queries", "ablations",
            "robustness", "seeds",
        }

    def test_run_all_selection(self):
        results = run_all(["table1"])
        assert len(results) == 1
        assert results[0].experiment == "table1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_all(["bogus"])

    def test_write_report_markdown(self):
        results = run_all(["table1"])
        report = write_report(results)
        assert report.startswith("# LDME reproduction")
        assert "table1" in report


class TestTuningCurve:
    def test_curve_shape(self, toy_graphs):
        from repro.experiments.tuning import run_tuning_curve

        result = run_tuning_curve(
            graphs=toy_graphs, k_values=(2, 10), iterations=4
        )
        compression = dict(result.series("k", "compression"))
        max_group = dict(result.series("k", "max_group_size"))
        assert compression[2] >= compression[10]
        assert max_group[2] >= max_group[10]

    def test_rows_per_k(self, toy_graphs):
        from repro.experiments.tuning import run_tuning_curve

        result = run_tuning_curve(graphs=toy_graphs, k_values=(3, 6, 9),
                                  iterations=2)
        assert len(result.rows) == 3


class TestLossyCurve:
    def test_objective_non_increasing(self, toy_graphs):
        from repro.experiments.lossy import run_lossy_curve

        result = run_lossy_curve(graphs=toy_graphs,
                                 epsilons=(0.0, 0.3, 1.0), iterations=4)
        objectives = [v for _, v in result.series("epsilon", "objective")]
        assert objectives == sorted(objectives, reverse=True)

    def test_zero_epsilon_lossless(self, toy_graphs):
        from repro.experiments.lossy import run_lossy_curve

        result = run_lossy_curve(graphs=toy_graphs, epsilons=(0.0,),
                                 iterations=3)
        row = result.rows[0]
        assert row["missing_edges"] == 0
        assert row["spurious_edges"] == 0


class TestScalingCurve:
    def test_rows_and_growth(self):
        from repro.experiments.scaling import run_scaling_curve

        result = run_scaling_curve(host_counts=(5, 10), iterations=2)
        assert len(result.rows) == 2
        assert result.rows[1]["edges"] > result.rows[0]["edges"]
        assert all(row["total_s"] > 0 for row in result.rows)


class TestQueryLatency:
    def test_lossless_agreement_is_total(self, toy_graphs):
        from repro.experiments.queries_exp import run_query_latency

        result = run_query_latency(graphs=toy_graphs, num_queries=200,
                                   iterations=4)
        assert result.rows[0]["agreement"] == 1.0
        assert result.rows[0]["graph_s"] > 0
        assert result.rows[0]["summary_s"] > 0

    def test_workload_generator(self, toy_graphs):
        from repro.experiments.queries_exp import generate_query_workload

        graph = toy_graphs["toy"]
        workload = generate_query_workload(graph, 300, seed=1)
        assert len(workload) == 300
        kinds = {kind for kind, _, _ in workload}
        assert kinds <= {"nbr", "edge", "2hop"}
        assert len(kinds) >= 2

    def test_workload_validation(self, toy_graphs):
        import pytest as _pytest

        from repro.experiments.queries_exp import generate_query_workload

        graph = toy_graphs["toy"]
        with _pytest.raises(ValueError):
            generate_query_workload(graph, -1)
        with _pytest.raises(ValueError):
            generate_query_workload(graph, 10, mix={"nbr": 0.0})


class TestFig3BudgetPath:
    def test_sweg_marked_infeasible_with_tiny_budget(self, toy_graphs):
        result = run_fig3(
            graphs=toy_graphs, iterations=2, sweg_budget_seconds=1e-9
        )
        sweg_rows = [r for r in result.rows if r["algorithm"] == "SWeG"]
        assert len(sweg_rows) == 1
        assert not sweg_rows[0]["feasible"]


class TestAblations:
    def test_variants_present(self, toy_graphs):
        from repro.experiments.ablations import run_ablations

        result = run_ablations(graphs=toy_graphs, iterations=3)
        variants = [row["variant"] for row in result.rows]
        assert "LDME5 (reference)" in variants
        assert any("shingle" in v for v in variants)
        assert len(result.rows) == 6

    def test_metrics_sane(self, toy_graphs):
        from repro.experiments.ablations import run_ablations

        result = run_ablations(graphs=toy_graphs, iterations=2)
        for row in result.rows:
            assert 0 <= row["compression"] <= 1
            assert row["total_s"] > 0


class TestRobustness:
    def test_noise_destroys_compression(self, toy_graphs):
        from repro.experiments.robustness import run_noise_robustness

        result = run_noise_robustness(
            fractions=(0.0, 1.0), iterations=5, graph=toy_graphs["toy"]
        )
        clean = result.rows[0]["compression"]
        noisy = result.rows[1]["compression"]
        assert clean > noisy

    def test_rewire_preserves_edge_scale(self, toy_graphs):
        from repro.experiments.robustness import rewire

        graph = toy_graphs["toy"]
        noisy = rewire(graph, 0.5, seed=1)
        assert abs(noisy.num_edges - graph.num_edges) < graph.num_edges * 0.2

    def test_rewire_zero_is_identity(self, toy_graphs):
        from repro.experiments.robustness import rewire

        graph = toy_graphs["toy"]
        assert rewire(graph, 0.0) == graph

    def test_rewire_validated(self, toy_graphs):
        import pytest as _pytest

        from repro.experiments.robustness import rewire

        with _pytest.raises(ValueError):
            rewire(toy_graphs["toy"], 1.5)


class TestSeedSensitivity:
    def test_reports_spread(self, toy_graphs):
        from repro.experiments.robustness import run_seed_sensitivity

        result = run_seed_sensitivity(seeds=(0, 1, 2), iterations=4,
                                      graph=toy_graphs["toy"])
        assert len(result.rows) == 3
        assert any("std" in note for note in result.notes)
        values = [row["compression"] for row in result.rows]
        assert max(values) - min(values) < 0.3  # randomized but stable

    def test_empty_seeds_rejected(self, toy_graphs):
        import pytest as _pytest

        from repro.experiments.robustness import run_seed_sensitivity

        with _pytest.raises(ValueError):
            run_seed_sensitivity(seeds=(), graph=toy_graphs["toy"])


class TestSaveResults:
    def test_writes_csv_files(self, tmp_path):
        from repro.experiments.runner import run_all, save_results

        results = run_all(["table1"])
        paths = save_results(results, tmp_path / "out", "csv")
        assert len(paths) == 1
        text = (tmp_path / "out" / "table1.csv").read_text()
        assert text.splitlines()[0].startswith("Graph,")

    def test_writes_json_files(self, tmp_path):
        import json

        from repro.experiments.runner import run_all, save_results

        results = run_all(["table1"])
        save_results(results, tmp_path, "json")
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment"] == "table1"

    def test_format_validated(self, tmp_path):
        from repro.experiments.runner import save_results

        with pytest.raises(ValueError):
            save_results([], tmp_path, "xml")
