"""Tests for experiment result reporting."""

from repro.experiments.reporting import (
    ExperimentResult,
    format_result,
    format_table,
)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.12345}])
        assert "0.1235" in text  # four decimals for sub-unit values
        text = format_table([{"v": 1234.5}])
        assert "1,234" in text or "1234" in text

    def test_int_thousands_separator(self):
        assert "1,000,000" in format_table([{"v": 1_000_000}])

    def test_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestExperimentResult:
    def test_column_names_order(self):
        result = ExperimentResult("x", "t")
        result.rows.append({"one": 1, "two": 2})
        result.rows.append({"three": 3})
        assert result.column_names() == ["one", "two", "three"]

    def test_series_extraction(self):
        result = ExperimentResult("x", "t")
        result.rows = [
            {"k": 5, "time": 1.0, "algo": "a"},
            {"k": 10, "time": 0.5, "algo": "a"},
            {"k": 5, "time": 9.0, "algo": "b"},
        ]
        series = result.series("k", "time", where={"algo": "a"})
        assert series == [(5, 1.0), (10, 0.5)]

    def test_series_no_filter(self):
        result = ExperimentResult("x", "t")
        result.rows = [{"k": 1, "v": 2}]
        assert result.series("k", "v") == [(1, 2)]

    def test_format_result_includes_notes(self):
        result = ExperimentResult("exp", "title", rows=[{"a": 1}],
                                  notes=["important"])
        text = format_result(result)
        assert "exp" in text
        assert "note: important" in text


class TestExports:
    def test_csv_roundtrip_columns(self):
        from repro.experiments.reporting import to_csv

        result = ExperimentResult("x", "t")
        result.rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}]
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,0.5"
        assert len(lines) == 3

    def test_csv_missing_cells(self):
        from repro.experiments.reporting import to_csv

        result = ExperimentResult("x", "t")
        result.rows = [{"a": 1}, {"b": 2}]
        text = to_csv(result)
        assert "a,b" in text.splitlines()[0]

    def test_json_contains_metadata(self):
        import json

        from repro.experiments.reporting import to_json

        result = ExperimentResult("exp", "title", rows=[{"a": 1}],
                                  notes=["n"])
        payload = json.loads(to_json(result))
        assert payload["experiment"] == "exp"
        assert payload["rows"] == [{"a": 1}]
        assert payload["notes"] == ["n"]
