"""Targeted tests for remaining less-travelled paths across subsystems."""

import numpy as np
import pytest

import repro
from repro.core.ldme import LDME


class TestGraphCornerPaths:
    def test_subgraph_of_nothing(self, triangle):
        sub = triangle.subgraph([])
        assert sub.num_nodes == 0
        assert sub.num_edges == 0

    def test_edge_arrays_on_empty(self):
        g = repro.Graph.from_edges(3, [])
        src, dst = g.edge_arrays()
        assert src.size == 0 and dst.size == 0

    def test_builder_repeated_node_registration(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        assert b.add_node("x") == b.add_node("x")


class TestCLIMorePaths:
    def test_stats_on_npz(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_graph_binary

        g = repro.web_host_graph(num_hosts=4, host_size=10, seed=1)
        path = tmp_path / "g.npz"
        write_graph_binary(g, path)
        assert main(["stats", str(path)]) == 0
        assert str(g.num_nodes) in capsys.readouterr().out.replace(",", "")

    def test_compare_includes_mosso(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        g = repro.web_host_graph(num_hosts=3, host_size=8, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert main(["compare", str(path), "--algorithms", "mosso",
                     "-T", "2"]) == 0
        assert "MoSSo" in capsys.readouterr().out

    def test_summarize_epsilon_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        g = repro.web_host_graph(num_hosts=4, host_size=10, seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert main(["summarize", str(path), "-T", "3",
                     "--epsilon", "0.3"]) == 0


class TestDistributedMorePaths:
    def test_distributed_with_per_supernode_encoder(self, small_web):
        from repro.baselines.sweg import SWeG
        from repro.core.reconstruct import verify_lossless
        from repro.distributed import ClusterSpec, run_distributed

        run = run_distributed(
            SWeG(iterations=2, seed=0, encoder="per-supernode"),
            small_web, ClusterSpec(num_workers=2),
        )
        verify_lossless(small_web, run.summarization)

    def test_distributed_on_empty_graph(self):
        from repro.distributed import ClusterSpec, run_distributed

        g = repro.Graph.from_edges(4, [])
        run = run_distributed(LDME(k=3, iterations=2, seed=0), g,
                              ClusterSpec(num_workers=2))
        assert run.summarization.objective == 0


class TestVoGStructureFields:
    def test_structure_records_cover_and_costs(self):
        from repro.baselines.vog import VoG

        g = repro.web_host_graph(num_hosts=4, host_size=10, seed=3)
        summary = VoG(seed=0).summarize(g)
        for structure in summary.structures:
            assert structure.kind in ("fc", "nc", "st", "bc", "ch")
            assert structure.nodes
            assert structure.cost >= 0
            assert structure.error_cost >= 0
        assert summary.algorithm == "VoG"


class TestMetricsDeltaPaths:
    def test_delta_summary_with_superloops(self, triangle):
        from repro.core.encode import encode_sorted
        from repro.core.partition import SupernodePartition
        from repro.core.summary import Summarization
        from repro.metrics import summary_size_bits

        part = SupernodePartition.from_members(3, {0: [0, 1, 2]})
        encoded = encode_sorted(triangle, part)
        summary = Summarization(
            num_nodes=3, num_edges=3, partition=part,
            superedges=encoded.superedges, corrections=encoded.corrections,
        )
        assert summary.num_superloops == 1
        # Superloops cost one bit in both encodings.
        assert summary_size_bits(summary, "delta") > 0
        assert summary_size_bits(summary, "fixed") > 0


class TestExperimentHarnessOptions:
    def test_fig5c_without_mosso(self):
        from repro.experiments.fig5c import run_fig5c

        result = run_fig5c(levels=(0.2,), community_size=30, iterations=2,
                           include_vog=False, include_mosso=False)
        algos = {row["algorithm"] for row in result.rows}
        assert "MoSSo" not in algos
        assert {"LDME5", "LDME20", "SWeG"} <= algos

    def test_fig2_rejects_bad_iterations(self, small_web):
        from repro.experiments.fig2 import run_fig2

        with pytest.raises(ValueError):
            run_fig2(graphs={"g": small_web}, iterations_list=())
        with pytest.raises(ValueError):
            run_fig2(graphs={"g": small_web}, iterations_list=(0,))


class TestSeededDeterminismAcrossSubsystems:
    def test_same_seed_same_everything(self, small_web):
        a = LDME(k=5, iterations=5, seed=77).summarize(small_web)
        b = LDME(k=5, iterations=5, seed=77).summarize(small_web)
        assert sorted(a.superedges) == sorted(b.superedges)
        assert sorted(a.corrections.additions) == sorted(b.corrections.additions)
        assert sorted(a.corrections.deletions) == sorted(b.corrections.deletions)
        assert a.partition.members_map() == b.partition.members_map()

    def test_different_seed_usually_differs(self, small_web):
        a = LDME(k=5, iterations=5, seed=1).summarize(small_web)
        b = LDME(k=5, iterations=5, seed=2).summarize(small_web)
        # Not a hard guarantee, but on this graph the merge orders differ.
        assert (sorted(a.superedges) != sorted(b.superedges)
                or a.objective != b.objective
                or a.partition.members_map() != b.partition.members_map())
