"""Tests for the top-level public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_entry_points(self):
        assert callable(repro.summarize)
        assert callable(repro.reconstruct)
        assert callable(repro.verify_lossless)

    def test_baselines_exported(self):
        for name in ("SWeG", "MoSSo", "VoG", "Randomized", "SAGS"):
            assert hasattr(repro, name)

    def test_generators_exported(self):
        for name in ("erdos_renyi", "rmat", "stochastic_block_model",
                     "web_host_graph", "barabasi_albert", "powerlaw_cluster"):
            assert hasattr(repro, name)


class TestDocstrings:
    def test_module_documented(self):
        assert "LDME" in repro.__doc__

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestQuickstartContract:
    def test_readme_flow(self):
        graph = repro.web_host_graph(num_hosts=4, host_size=10, seed=1)
        result = repro.summarize(graph, k=5, iterations=5)
        assert repro.reconstruct(result) == graph
        assert 0.0 <= result.compression <= 1.0


class TestDocstringCoverage:
    def test_every_public_module_member_documented(self):
        """Every public function/class in every repro submodule must carry
        a docstring (deliverable (e): doc comments on every public item)."""
        import importlib
        import inspect
        import pkgutil

        import repro

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            public = getattr(module, "__all__", None)
            if public is None:
                continue
            for name in public:
                obj = getattr(module, name, None)
                if obj is None or not (inspect.isclass(obj)
                                       or inspect.isfunction(obj)):
                    continue
                if not inspect.getdoc(obj):
                    undocumented.append(f"{info.name}.{name}")
                if inspect.isclass(obj):
                    for mname, method in vars(obj).items():
                        if mname.startswith("_") or not inspect.isfunction(method):
                            continue
                        if not inspect.getdoc(method):
                            undocumented.append(
                                f"{info.name}.{name}.{mname}"
                            )
        assert not undocumented, undocumented
