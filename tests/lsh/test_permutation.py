"""Tests for random bijections."""

import numpy as np
import pytest

from repro.lsh.permutation import ArithmeticBijection, random_permutation


class TestRandomPermutation:
    def test_is_permutation(self):
        perm = random_permutation(50, seed=0)
        assert sorted(perm.tolist()) == list(range(50))

    def test_deterministic(self):
        assert np.array_equal(
            random_permutation(20, seed=5), random_permutation(20, seed=5)
        )

    def test_zero_length(self):
        assert random_permutation(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_permutation(-1)


class TestArithmeticBijection:
    def test_is_bijection(self):
        bij = ArithmeticBijection(37, seed=1)
        values = bij.apply(np.arange(37))
        assert sorted(values.tolist()) == list(range(37))

    def test_bijection_on_non_prime_domain(self):
        # 100 is not prime; cycle walking must keep values in range.
        bij = ArithmeticBijection(100, seed=2)
        values = bij.apply(np.arange(100))
        assert sorted(values.tolist()) == list(range(100))

    def test_callable(self):
        bij = ArithmeticBijection(10, seed=0)
        assert np.array_equal(bij(np.arange(10)), bij.apply(np.arange(10)))

    def test_deterministic_given_seed(self):
        a = ArithmeticBijection(64, seed=9).apply(np.arange(64))
        b = ArithmeticBijection(64, seed=9).apply(np.arange(64))
        assert np.array_equal(a, b)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ArithmeticBijection(0)

    def test_tiny_domain(self):
        bij = ArithmeticBijection(1, seed=0)
        assert bij.apply(np.array([0])).tolist() == [0]
