"""Tests for classic MinHash: the collision-probability law and banding."""

import numpy as np
import pytest

from repro.lsh.minhash import MinHasher, jaccard


class TestJaccard:
    def test_identical(self):
        assert jaccard([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_one_empty(self):
        assert jaccard([1], []) == 0.0


class TestMinHasher:
    def test_signature_length(self):
        h = MinHasher(100, num_hashes=16, seed=0)
        assert h.signature([1, 5, 7]).shape == (16,)

    def test_identical_sets_identical_signatures(self):
        h = MinHasher(100, num_hashes=8, seed=0)
        assert np.array_equal(h.signature([3, 4, 5]), h.signature([5, 4, 3]))

    def test_empty_set_sentinel(self):
        h = MinHasher(10, num_hashes=4, seed=0)
        assert np.all(h.signature([]) == -1)

    def test_out_of_universe_rejected(self):
        h = MinHasher(10, num_hashes=4, seed=0)
        with pytest.raises(ValueError):
            h.signature([10])

    def test_collision_probability_tracks_jaccard(self):
        # Statistical law: E[agreement fraction] = Jaccard similarity.
        h = MinHasher(500, num_hashes=256, seed=7)
        a = list(range(0, 60))
        b = list(range(30, 90))  # Jaccard = 30/90 = 1/3
        est = MinHasher.estimate_similarity(h.signature(a), h.signature(b))
        assert est == pytest.approx(1 / 3, abs=0.1)

    def test_estimate_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            MinHasher.estimate_similarity(np.zeros(3), np.zeros(4))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MinHasher(0, 4)
        with pytest.raises(ValueError):
            MinHasher(10, 0)


class TestBanding:
    def test_band_count_and_width(self):
        h = MinHasher(50, num_hashes=12, seed=0)
        keys = h.band_keys(h.signature([1, 2, 3]), bands=4)
        assert len(keys) == 4
        assert all(len(key[1]) == 3 for key in keys)

    def test_band_keys_distinguish_band_index(self):
        h = MinHasher(50, num_hashes=4, seed=0)
        sig = h.signature([1])
        keys = h.band_keys(sig, bands=4)
        assert len({key[0] for key in keys}) == 4

    def test_bands_must_divide(self):
        h = MinHasher(50, num_hashes=10, seed=0)
        with pytest.raises(ValueError):
            h.band_keys(h.signature([1]), bands=3)

    def test_similar_sets_share_some_band(self):
        h = MinHasher(200, num_hashes=16, seed=3)
        a = h.band_keys(h.signature(list(range(40))), bands=8)
        b = h.band_keys(h.signature(list(range(2, 42))), bands=8)
        assert set(a) & set(b)
