"""Tests for shingle functions (SWeG's divide metric)."""

import numpy as np

from repro.graph.graph import Graph
from repro.lsh.permutation import random_permutation
from repro.lsh.shingle import node_shingles, shingle_groups, supernode_shingle


class TestNodeShingles:
    def test_closed_neighborhood_minimum(self, star):
        perm = np.array([3, 0, 5, 1, 4, 2])
        shingles = node_shingles(star, perm)
        # Hub 0 sees everyone: min over all h values = 0.
        assert shingles[0] == 0
        # Leaf 1: min(h(1)=0, h(0)=3) = 0.
        assert shingles[1] == 0
        # Leaf 3: min(h(3)=1, h(0)=3) = 1.
        assert shingles[3] == 1

    def test_isolated_node_keeps_own_hash(self):
        g = Graph.from_edges(3, [(0, 1)])
        perm = np.array([2, 1, 0])
        assert node_shingles(g, perm)[2] == 0

    def test_identity_permutation_propagates_minima(self, path4):
        perm = np.arange(4)
        shingles = node_shingles(path4, perm)
        assert shingles.tolist() == [0, 0, 1, 2]

    def test_wrong_perm_length_rejected(self, path4):
        import pytest

        with pytest.raises(ValueError):
            node_shingles(path4, np.arange(3))

    def test_shared_neighborhoods_share_shingles(self, star, rng):
        perm = random_permutation(star.num_nodes, rng)
        shingles = node_shingles(star, perm)
        # Every leaf's closed neighbourhood contains the hub, so any two
        # leaves differ only by their own hash; all values are <= h(hub).
        assert np.all(shingles <= perm[0])


class TestSupernodeShingle:
    def test_min_over_members(self):
        shingles = np.array([5, 1, 7])
        assert supernode_shingle([0, 2], shingles) == 5
        assert supernode_shingle([0, 1, 2], shingles) == 1


class TestShingleGroups:
    def test_groups_partition_supernodes(self, star, rng):
        perm = random_permutation(star.num_nodes, rng)
        shingles = node_shingles(star, perm)
        members = {v: [v] for v in range(star.num_nodes)}
        groups = shingle_groups(members, shingles)
        collected = sorted(sid for group in groups.values() for sid in group)
        assert collected == list(range(star.num_nodes))

    def test_equal_shingles_grouped_together(self):
        shingles = np.array([0, 0, 1])
        groups = shingle_groups({0: [0], 1: [1], 2: [2]}, shingles)
        assert sorted(groups[0]) == [0, 1]
        assert groups[1] == [2]
