"""Tests for weighted Jaccard and ICWS weighted minhash."""

import pytest

from repro.lsh.weighted import ICWSHasher, weighted_jaccard


class TestWeightedJaccard:
    def test_identical_vectors(self):
        assert weighted_jaccard({1: 2, 2: 5}, {1: 2, 2: 5}) == 1.0

    def test_disjoint_support(self):
        assert weighted_jaccard({1: 3}, {2: 4}) == 0.0

    def test_known_value(self):
        # min: 1+2 = 3; max: 3+4 = 7
        assert weighted_jaccard({1: 1, 2: 4}, {1: 3, 2: 2}) == pytest.approx(3 / 7)

    def test_boolean_vectors_reduce_to_jaccard(self):
        a = {i: 1 for i in range(4)}
        b = {i: 1 for i in range(2, 6)}
        assert weighted_jaccard(a, b) == pytest.approx(2 / 6)

    def test_zero_weights_ignored(self):
        assert weighted_jaccard({1: 0, 2: 3}, {2: 3}) == 1.0

    def test_both_empty(self):
        assert weighted_jaccard({}, {}) == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_jaccard({1: -1}, {1: 2})

    def test_symmetry(self):
        a = {1: 2, 3: 7, 9: 1}
        b = {1: 5, 2: 2}
        assert weighted_jaccard(a, b) == weighted_jaccard(b, a)


class TestICWS:
    def test_identical_vectors_identical_signatures(self):
        h = ICWSHasher(num_hashes=16, seed=0)
        x = {1: 2.0, 5: 3.5}
        assert h.signature(x) == h.signature(dict(reversed(list(x.items()))))

    def test_collision_rate_equals_weighted_jaccard(self):
        h = ICWSHasher(num_hashes=300, seed=1)
        x = {1: 4.0, 2: 1.0, 3: 2.0}
        y = {1: 2.0, 2: 3.0, 4: 1.0}
        est = ICWSHasher.estimate_similarity(h.signature(x), h.signature(y))
        truth = weighted_jaccard(x, y)
        assert est == pytest.approx(truth, abs=0.08)

    def test_scaling_invariance_of_similarity_estimate(self):
        # J_w(2x, 2y) == J_w(x, y); ICWS estimates should agree closely.
        h = ICWSHasher(num_hashes=200, seed=3)
        x = {1: 1.0, 2: 2.0}
        y = {1: 2.0, 3: 1.0}
        base = ICWSHasher.estimate_similarity(h.signature(x), h.signature(y))
        scaled = ICWSHasher.estimate_similarity(
            h.signature({k: 2 * v for k, v in x.items()}),
            h.signature({k: 2 * v for k, v in y.items()}),
        )
        assert scaled == pytest.approx(base, abs=0.1)

    def test_negative_weight_rejected(self):
        h = ICWSHasher(num_hashes=4, seed=0)
        with pytest.raises(ValueError):
            h.signature({1: -2.0})

    def test_deterministic_given_seed(self):
        a = ICWSHasher(num_hashes=8, seed=5).signature({1: 1.0, 2: 2.0})
        b = ICWSHasher(num_hashes=8, seed=5).signature({1: 1.0, 2: 2.0})
        assert a == b

    def test_mismatched_signature_lengths_rejected(self):
        with pytest.raises(ValueError):
            ICWSHasher.estimate_similarity([(1, 0)], [(1, 0), (2, 0)])

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            ICWSHasher(num_hashes=0)
