"""Tests for Densified One Permutation Hashing (Algorithm 2)."""

import numpy as np
import pytest

from repro.lsh.doph import (
    EMPTY,
    DOPHHasher,
    doph_signature,
    doph_signatures_bulk,
)
from repro.lsh.permutation import random_permutation
from repro.lsh.weighted import weighted_jaccard


def _identity_perm(n):
    return np.arange(n, dtype=np.int64)


class TestDophSignatureSemantics:
    def test_first_nonzero_per_bin(self):
        # n=12, k=3 → bins of 4. Items 1 and 6 land in bins 0 and 1 with
        # offsets 1 and 2 under the identity permutation.
        perm = _identity_perm(12)
        directions = np.array([1, 1, 1])
        sig = doph_signature(np.array([1, 6]), perm, 3, directions)
        assert sig[0] == 1
        assert sig[1] == 2

    def test_min_offset_wins_within_bin(self):
        perm = _identity_perm(12)
        sig = doph_signature(np.array([3, 1, 2]), perm, 3, np.ones(3, dtype=int))
        assert sig[0] == 1

    def test_densify_right_with_wraparound(self):
        perm = _identity_perm(12)
        directions = np.array([1, 1, 1])  # borrow from the right
        sig = doph_signature(np.array([5]), perm, 3, directions)
        # Bin 1 populated (offset 1); bins 0 and 2 borrow from the right:
        # bin 0 → bin 1; bin 2 wraps → bin 1.
        assert sig.tolist() == [1, 1, 1]

    def test_densify_left_with_wraparound(self):
        perm = _identity_perm(12)
        directions = np.array([0, 0, 0])  # borrow from the left
        sig = doph_signature(np.array([5]), perm, 3, directions)
        assert sig.tolist() == [1, 1, 1]

    def test_densify_direction_matters(self):
        perm = _identity_perm(16)
        # Bins of 4: items 0 (bin 0, offset 0) and 13 (bin 3, offset 1).
        left = doph_signature(np.array([0, 13]), perm, 4, np.zeros(4, dtype=int))
        right = doph_signature(np.array([0, 13]), perm, 4, np.ones(4, dtype=int))
        assert left.tolist() == [0, 0, 0, 1]   # bins 1,2 borrow bin 0
        assert right.tolist() == [0, 1, 1, 1]  # bins 1,2 borrow bin 3

    def test_empty_vector_all_empty(self):
        perm = _identity_perm(10)
        sig = doph_signature(np.array([], dtype=np.int64), perm, 5,
                             np.ones(5, dtype=int))
        assert np.all(sig == EMPTY)

    def test_uneven_bins_right_padding(self):
        # n=10, k=3 → bin size ceil(10/3)=4; item 9 → bin 2, offset 1.
        perm = _identity_perm(10)
        sig = doph_signature(np.array([9]), perm, 3, np.ones(3, dtype=int))
        assert sig[2] == 1

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            doph_signature(np.array([10]), _identity_perm(10), 2,
                           np.ones(2, dtype=int))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            doph_signature(np.array([0]), _identity_perm(4), 0,
                           np.ones(0, dtype=int))

    def test_directions_length_checked(self):
        with pytest.raises(ValueError):
            doph_signature(np.array([0]), _identity_perm(4), 2,
                           np.ones(3, dtype=int))


class TestBulkEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 7, 20])
    def test_bulk_matches_scalar(self, k, rng):
        n = 53
        perm = random_permutation(n, rng)
        directions = rng.integers(0, 2, size=k).astype(np.int64)
        sets, rows, items = [], [], []
        for r in range(40):
            size = int(rng.integers(0, 10))
            s = rng.choice(n, size=size, replace=False)
            sets.append(s)
            rows.extend([r] * size)
            items.extend(s.tolist())
        bulk = doph_signatures_bulk(
            np.asarray(rows), np.asarray(items), 40, perm, k, directions
        )
        for r, s in enumerate(sets):
            expected = doph_signature(s, perm, k, directions)
            assert np.array_equal(bulk[r], expected), f"row {r}"

    def test_bulk_tolerates_duplicates(self, rng):
        n, k = 20, 4
        perm = random_permutation(n, rng)
        directions = rng.integers(0, 2, size=k).astype(np.int64)
        once = doph_signatures_bulk(
            np.array([0, 0]), np.array([3, 7]), 1, perm, k, directions
        )
        doubled = doph_signatures_bulk(
            np.array([0, 0, 0, 0]), np.array([3, 7, 3, 7]), 1, perm, k, directions
        )
        assert np.array_equal(once, doubled)

    def test_bulk_empty_input(self):
        perm = _identity_perm(10)
        sig = doph_signatures_bulk(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            3, perm, 2, np.ones(2, dtype=np.int64)
        )
        assert sig.shape == (3, 2)
        assert np.all(sig == EMPTY)

    def test_bulk_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            doph_signatures_bulk(
                np.array([0]), np.array([1, 2]), 1, _identity_perm(5), 2,
                np.ones(2, dtype=np.int64)
            )


class TestCollisionProbability:
    def test_identical_sets_collide(self):
        hasher = DOPHHasher(100, k=8, seed=0)
        s = np.array([4, 9, 33, 70])
        assert np.array_equal(hasher.signature(s), hasher.signature(s[::-1]))

    def test_collision_rate_tracks_weighted_jaccard(self):
        # Binary sets: DOPH bin agreement rate ≈ Jaccard (Shrivastava-Li).
        a = np.arange(0, 40)
        b = np.arange(20, 60)  # Jaccard 1/3
        agreements = total = 0
        for seed in range(60):
            hasher = DOPHHasher(200, k=4, seed=seed)
            sa, sb = hasher.signature(a), hasher.signature(b)
            agreements += int(np.sum(sa == sb))
            total += 4
        rate = agreements / total
        j = weighted_jaccard({i: 1 for i in a}, {i: 1 for i in b})
        assert rate == pytest.approx(j, abs=0.12)

    def test_disjoint_dense_sets_rarely_collide(self):
        a = np.arange(0, 50)
        b = np.arange(50, 100)
        hasher = DOPHHasher(100, k=10, seed=1)
        sa, sb = hasher.signature(a), hasher.signature(b)
        assert not np.array_equal(sa, sb)

    def test_signature_key_hashable(self):
        hasher = DOPHHasher(50, k=5, seed=0)
        key = hasher.signature_key(np.array([1, 2, 3]))
        assert isinstance(key, tuple)
        assert len(key) == 5
        assert hash(key) is not None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DOPHHasher(0, 4)
        with pytest.raises(ValueError):
            DOPHHasher(10, 0)


class TestOptimalDensification:
    def test_fills_every_empty_bin(self):
        perm = _identity_perm(20)
        directions = np.ones(5, dtype=np.int64)
        sig = doph_signature(np.array([7]), perm, 5, directions,
                             densification="optimal")
        assert np.all(sig >= 0)

    def test_identical_inputs_identical_signatures(self):
        perm = _identity_perm(40)
        directions = np.array([1, 0, 1, 0])
        a = doph_signature(np.array([3, 9]), perm, 4, directions,
                           densification="optimal")
        b = doph_signature(np.array([9, 3]), perm, 4, directions,
                           densification="optimal")
        assert np.array_equal(a, b)

    def test_populated_bins_unchanged(self):
        perm = _identity_perm(12)
        directions = np.zeros(3, dtype=np.int64)
        rotation = doph_signature(np.array([1, 5]), perm, 3, directions)
        optimal = doph_signature(np.array([1, 5]), perm, 3, directions,
                                 densification="optimal")
        # Bins 0 and 1 are populated: both schemes must agree there.
        assert optimal[0] == rotation[0]
        assert optimal[1] == rotation[1]

    def test_all_empty_stays_empty(self):
        perm = _identity_perm(10)
        sig = doph_signature(np.array([], dtype=np.int64), perm, 4,
                             np.ones(4, dtype=np.int64),
                             densification="optimal")
        assert np.all(sig == EMPTY)

    def test_unknown_scheme_rejected(self):
        perm = _identity_perm(10)
        with pytest.raises(ValueError, match="densification"):
            doph_signature(np.array([1]), perm, 3, np.ones(3, dtype=np.int64),
                           densification="bogus")

    def test_collision_rate_still_tracks_jaccard(self):
        from repro.lsh.permutation import random_permutation

        a = np.arange(0, 40)
        b = np.arange(20, 60)  # Jaccard 1/3
        agreements = total = 0
        rng = np.random.default_rng(7)
        for _ in range(60):
            perm = random_permutation(200, rng)
            directions = rng.integers(0, 2, size=6).astype(np.int64)
            sa = doph_signature(a, perm, 6, directions, densification="optimal")
            sb = doph_signature(b, perm, 6, directions, densification="optimal")
            agreements += int(np.sum(sa == sb))
            total += 6
        assert agreements / total == pytest.approx(1 / 3, abs=0.12)
