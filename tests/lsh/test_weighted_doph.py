"""Tests for weighted DOPH via universe expansion."""

import numpy as np
import pytest

from repro.lsh.weighted import weighted_jaccard
from repro.lsh.weighted_doph import (
    WeightedDOPHHasher,
    expand_weighted,
    weighted_doph_signatures_bulk,
)


class TestExpansion:
    def test_explicit_expansion(self):
        out = expand_weighted(np.array([2, 5]), np.array([2, 1]), weight_cap=3)
        # index 2 → slots 6, 7; index 5 → slot 15.
        assert sorted(out.tolist()) == [6, 7, 15]

    def test_saturation_at_cap(self):
        out = expand_weighted(np.array([1]), np.array([10]), weight_cap=3)
        assert sorted(out.tolist()) == [3, 4, 5]

    def test_zero_weights_dropped(self):
        out = expand_weighted(np.array([1, 2]), np.array([0, 1]), weight_cap=2)
        assert out.tolist() == [4]

    def test_empty(self):
        out = expand_weighted(np.array([], dtype=np.int64),
                              np.array([], dtype=np.int64), weight_cap=2)
        assert out.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            expand_weighted(np.array([1]), np.array([1]), weight_cap=0)
        with pytest.raises(ValueError):
            expand_weighted(np.array([1]), np.array([-1]), weight_cap=2)
        with pytest.raises(ValueError):
            expand_weighted(np.array([1, 2]), np.array([1]), weight_cap=2)

    def test_expansion_jaccard_equals_weighted_jaccard(self):
        # The reduction's whole point: plain Jaccard of expansions equals
        # weighted Jaccard of the originals (below the cap).
        x = {1: 2, 3: 1, 7: 3}
        y = {1: 1, 3: 1, 9: 2}
        cap = 4
        ex = set(expand_weighted(
            np.array(list(x)), np.array(list(x.values())), cap).tolist())
        ey = set(expand_weighted(
            np.array(list(y)), np.array(list(y.values())), cap).tolist())
        plain = len(ex & ey) / len(ex | ey)
        assert plain == pytest.approx(weighted_jaccard(x, y))


class TestWeightedHasher:
    def test_identical_vectors_identical_signatures(self):
        hasher = WeightedDOPHHasher(50, k=6, weight_cap=3, seed=0)
        x = {4: 2, 9: 1}
        assert np.array_equal(hasher.signature(x), hasher.signature(dict(x)))

    def test_empty_vector_sentinel(self):
        from repro.lsh.doph import EMPTY

        hasher = WeightedDOPHHasher(10, k=4, seed=0)
        assert np.all(hasher.signature({}) == EMPTY)

    def test_out_of_universe_rejected(self):
        hasher = WeightedDOPHHasher(10, k=4, seed=0)
        with pytest.raises(ValueError):
            hasher.signature({10: 1})

    def test_collision_rate_tracks_weighted_jaccard(self):
        x = {i: 3 for i in range(0, 20)}
        y = {i: 1 for i in range(0, 20)}
        truth = weighted_jaccard(x, y)  # = 1/3 exactly
        agreements = total = 0
        for seed in range(50):
            hasher = WeightedDOPHHasher(100, k=4, weight_cap=4, seed=seed)
            sx, sy = hasher.signature(x), hasher.signature(y)
            agreements += int(np.sum(sx == sy))
            total += 4
        assert agreements / total == pytest.approx(truth, abs=0.12)

    def test_binary_hasher_would_not_distinguish(self):
        # Same support, different weights: the binarized view calls them
        # identical; the weighted view must not (statistically).
        from repro.lsh.doph import DOPHHasher

        x = {i: 3 for i in range(0, 20)}
        y = {i: 1 for i in range(0, 20)}
        support = np.array(list(x))
        binary = DOPHHasher(100, k=6, seed=1)
        assert np.array_equal(binary.signature(support),
                              binary.signature(support))
        disagreements = 0
        for seed in range(30):
            hasher = WeightedDOPHHasher(100, k=6, weight_cap=4, seed=seed)
            if not np.array_equal(hasher.signature(x), hasher.signature(y)):
                disagreements += 1
        assert disagreements > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedDOPHHasher(0, 4)
        with pytest.raises(ValueError):
            WeightedDOPHHasher(10, 0)
        with pytest.raises(ValueError):
            WeightedDOPHHasher(10, 4, weight_cap=0)


class TestBulkWeighted:
    def test_bulk_matches_scalar_hasher(self):
        rng = np.random.default_rng(3)
        n, k, cap = 30, 5, 3
        hasher = WeightedDOPHHasher(n, k=k, weight_cap=cap, seed=7)
        vectors = []
        rows, items, weights = [], [], []
        for r in range(15):
            size = int(rng.integers(0, 8))
            idx = rng.choice(n, size=size, replace=False)
            w = rng.integers(1, 5, size=size)
            vectors.append(dict(zip(idx.tolist(), w.tolist())))
            rows.extend([r] * size)
            items.extend(idx.tolist())
            weights.extend(w.tolist())
        bulk = weighted_doph_signatures_bulk(
            np.asarray(rows), np.asarray(items), np.asarray(weights),
            15, n, k, cap, hasher.perm, hasher.directions,
        )
        for r, vec in enumerate(vectors):
            assert np.array_equal(bulk[r], hasher.signature(vec)), r

    def test_bulk_validation(self):
        with pytest.raises(ValueError):
            weighted_doph_signatures_bulk(
                np.array([0]), np.array([1, 2]), np.array([1]),
                1, 5, 2, 2, np.arange(10), np.ones(2, dtype=np.int64),
            )


class TestLDMEIntegration:
    def test_expanded_divide_lossless(self, small_web):
        from repro.core.ldme import LDME
        from repro.core.reconstruct import verify_lossless

        result = LDME(k=5, iterations=5, seed=0,
                      divide_weights="expanded").summarize(small_web)
        verify_lossless(small_web, result)

    def test_unknown_weights_rejected(self, small_web):
        from repro.core.divide import lsh_divide
        from repro.core.partition import SupernodePartition

        with pytest.raises(ValueError):
            lsh_divide(small_web, SupernodePartition(small_web.num_nodes),
                       k=3, weights="bogus")

    def test_ldme_validates_option(self):
        from repro.core.ldme import LDME

        with pytest.raises(ValueError):
            LDME(divide_weights="bogus")
