"""Pipeline smoke across every Table 1 surrogate.

LDME must stay lossless and produce sane metrics on all eight dataset
surrogates, including the largest (the billion-edge stand-ins). Uses the
high-speed setting with few iterations to keep suite time bounded.
"""

import pytest

from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph import datasets


@pytest.mark.parametrize("name", datasets.names())
def test_ldme_lossless_on_surrogate(name):
    graph = datasets.load(name)
    result = LDME(k=20, iterations=2, seed=0).summarize(graph)
    assert reconstruct(result) == graph
    assert 0.0 <= result.compression <= 1.0
    assert result.num_supernodes <= graph.num_nodes


@pytest.mark.parametrize("name", ["CN", "EU"])
def test_compression_improves_with_effort_on_surrogates(name):
    graph = datasets.load(name)
    quick = LDME(k=20, iterations=2, seed=0).summarize(graph)
    thorough = LDME(k=5, iterations=10, seed=0).summarize(graph)
    assert thorough.compression >= quick.compression
