"""Tests for the dynamic-graph streaming module."""

import pytest

from repro.core.reconstruct import reconstruct
from repro.graph.generators import web_host_graph
from repro.streaming import DynamicSummarizer, read_stream, write_stream


class TestDynamicSummarizer:
    def test_insert_then_snapshot_lossless(self):
        graph = web_host_graph(num_hosts=4, host_size=10, seed=3)
        ds = DynamicSummarizer(graph.num_nodes, sample_size=10, seed=0)
        for u, v in graph.edges():
            ds.insert(u, v)
        assert ds.num_edges == graph.num_edges
        summary = ds.snapshot()
        assert reconstruct(summary) == graph

    def test_deletions_tracked(self):
        ds = DynamicSummarizer(4, seed=0)
        ds.insert(0, 1)
        ds.insert(1, 2)
        ds.delete(0, 1)
        assert ds.num_edges == 1
        assert ds.current_graph().has_edge(1, 2)
        assert not ds.current_graph().has_edge(0, 1)

    def test_snapshot_after_deletions_lossless(self):
        graph = web_host_graph(num_hosts=3, host_size=10, seed=5)
        ds = DynamicSummarizer(graph.num_nodes, sample_size=8, seed=1)
        edges = list(graph.edges())
        for u, v in edges:
            ds.insert(u, v)
        for u, v in edges[::2]:
            ds.delete(u, v)
        summary = ds.snapshot()
        assert reconstruct(summary) == ds.current_graph()

    def test_snapshot_is_isolated_copy(self):
        ds = DynamicSummarizer(4, seed=0)
        ds.insert(0, 1)
        summary = ds.snapshot()
        ds.insert(2, 3)  # must not affect the earlier snapshot
        assert summary.num_edges == 1

    def test_apply_batch(self):
        ds = DynamicSummarizer(5, seed=0)
        ds.apply([("+", 0, 1), ("+", 1, 2), ("-", 0, 1)])
        assert ds.num_edges == 1
        assert ds.events_processed == 3

    def test_unknown_op_rejected(self):
        ds = DynamicSummarizer(3, seed=0)
        with pytest.raises(ValueError):
            ds.apply([("x", 0, 1)])

    def test_supernode_count_shrinks_under_redundancy(self):
        graph = web_host_graph(num_hosts=5, host_size=15, seed=2)
        ds = DynamicSummarizer(graph.num_nodes, sample_size=20, seed=0)
        for u, v in graph.edges():
            ds.insert(u, v)
        assert ds.num_supernodes < graph.num_nodes

    def test_negative_universe_rejected(self):
        with pytest.raises(ValueError):
            DynamicSummarizer(-1)


class TestStreamFiles:
    def test_roundtrip(self, tmp_path):
        events = [("+", 0, 1), ("+", 1, 2), ("-", 0, 1)]
        path = tmp_path / "events.stream"
        write_stream(events, path)
        assert list(read_stream(path)) == events

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "events.stream"
        path.write_text("# header\n+ 0 1\n\n- 0 1\n")
        assert list(read_stream(path)) == [("+", 0, 1), ("-", 0, 1)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.stream"
        path.write_text("* 0 1\n")
        with pytest.raises(ValueError):
            list(read_stream(path))

    def test_write_validates_ops(self, tmp_path):
        with pytest.raises(ValueError):
            write_stream([("?", 0, 1)], tmp_path / "x.stream")

    def test_replay_reproduces_state(self, tmp_path):
        graph = web_host_graph(num_hosts=3, host_size=8, seed=7)
        events = [("+", u, v) for u, v in graph.edges()]
        path = tmp_path / "replay.stream"
        write_stream(events, path)
        ds = DynamicSummarizer(graph.num_nodes, sample_size=10, seed=0)
        ds.apply(read_stream(path))
        assert ds.current_graph() == graph
