"""Quickstart: summarize a graph, inspect the output, reconstruct it.

Run with::

    python examples/quickstart.py
"""

from repro import LDME, reconstruct, verify_lossless, web_host_graph


def main() -> None:
    # A synthetic web-like graph: 50 hosts of 40 pages stamped from a few
    # link templates each — the redundancy graph summarization exploits.
    graph = web_host_graph(num_hosts=50, host_size=40, seed=7)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # LDME with the paper's high-compression setting (k = 5).
    summarizer = LDME(k=5, iterations=20, seed=0)
    summary = summarizer.summarize(graph)

    print(f"supernodes:  {summary.num_supernodes}")
    print(f"superedges:  {summary.num_superedges} "
          f"(+{summary.num_superloops} superloops)")
    print(f"corrections: |C+|={len(summary.corrections.additions)} "
          f"|C-|={len(summary.corrections.deletions)}")
    print(f"objective:   {summary.objective}  (original edges: {graph.num_edges})")
    print(f"compression: {summary.compression:.3f}")
    print(f"time:        {summary.stats.total_seconds:.2f}s "
          f"(divide+merge {summary.stats.divide_merge_seconds:.2f}s, "
          f"encode {summary.stats.encode_seconds:.2f}s)")

    # The summarization is lossless: reconstruction gives back the graph.
    rebuilt = reconstruct(summary)
    assert rebuilt == graph
    verify_lossless(graph, summary)
    print("reconstruction: exact (lossless verified)")


if __name__ == "__main__":
    main()
