"""Serve summary queries over TCP: batching, caching, metrics, hot-swap.

End-to-end tour of the ``repro.serve`` subsystem: summarize a graph,
stand up the asyncio query server in-process, query it through the
blocking client (including a pipelined batch), push a load burst, then
hot-swap the live summary from a dynamic edge stream without dropping
the connection.

Run with::

    python examples/serve_and_query.py
"""

import numpy as np

from repro import LDME, DynamicSummarizer, SummaryIndex, web_host_graph
from repro.serve import ServerConfig, ServerThread, SummaryClient, run_load


def main() -> None:
    graph = web_host_graph(num_hosts=40, host_size=30, seed=5)
    summary = LDME(k=5, iterations=15, seed=1).summarize(graph)
    print(f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges, "
          f"compression {summary.compression:.3f}\n")

    config = ServerConfig(port=0, batch_window=0.002, cache_entries=4096,
                          log_interval=0)
    with ServerThread(summary, config) as handle:
        print(f"server listening on 127.0.0.1:{handle.port}")
        client = SummaryClient("127.0.0.1", handle.port)

        # Point queries — answers match the summary index exactly.
        truth = SummaryIndex(summary)
        for v in (0, 7, 123):
            assert client.neighbors(v) == truth.neighbors(v)
            print(f"neighbors({v}): degree {client.degree(v)} [OK]")
        print(f"has_edge(0, 1) = {client.has_edge(0, 1)}")
        print(f"bfs(0) reaches {len(client.bfs(0))} nodes")

        # Pipelined queries coalesce into one vectorized server batch.
        nodes = list(range(100))
        lists = client.neighbors_many(nodes)
        print(f"pipelined {len(nodes)} neighborhoods "
              f"(total {sum(map(len, lists))} edges reported)")

        # A concurrent load burst, then the server's own accounting.
        report = run_load("127.0.0.1", handle.port,
                          num_queries=1000, concurrency=4, seed=0)
        print(report.format())
        stats = client.stats()
        print(f"server: cache_hit_rate={stats['cache']['hit_rate']:.2f} "
              f"batches={stats['metrics']['counters']['batches_total']} "
              f"generation={stats['generation']}")

        # Hot-swap from a dynamic stream — the connection stays open.
        ds = DynamicSummarizer(num_nodes=200, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            u, v = rng.integers(200, size=2)
            if u != v:
                ds.insert(int(u), int(v))
        handle.server.swap(ds.snapshot())
        fresh = SummaryIndex(ds.snapshot())
        assert client.neighbors(5) == fresh.neighbors(5)
        print(f"\nhot-swapped to streamed graph "
              f"(generation {client.stats()['generation']}); "
              f"neighbors(5) now has degree {client.degree(5)} [OK]")
        client.close()
    print("server drained and stopped")


if __name__ == "__main__":
    main()
