"""Bounded-memory ingestion and long-run checkpointing.

The workflow for inputs too large to handle casually: stream the edge file
through the external-sort loader, summarize in stages with partition
checkpoints between them, and store the result in the compact binary
format.

Run with::

    python examples/out_of_core.py
"""

import os
import tempfile

from repro import LDME, verify_lossless, web_host_graph, write_summary_binary
from repro.graph.external import read_edge_list_chunked
from repro.graph.io import read_partition, write_edge_list, write_partition


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # Stand-in for a huge crawl file on disk.
        graph = web_host_graph(num_hosts=40, host_size=30, seed=23)
        edge_file = os.path.join(tmp, "crawl.txt")
        write_edge_list(graph, edge_file)
        size_kb = os.path.getsize(edge_file) / 1024
        print(f"edge file: {size_kb:.0f} KB, {graph.num_edges} edges")

        # Ingest with a deliberately tiny buffer: sorted runs spill to disk
        # and are k-way merged — memory stays bounded by chunk_edges.
        loaded = read_edge_list_chunked(edge_file, chunk_edges=2000)
        assert loaded == graph
        print(f"chunked load OK ({graph.num_edges // 2000 + 1} spill runs)")

        # Stage 1: a few iterations, then checkpoint the partition.
        ckpt = os.path.join(tmp, "stage1.ckpt")
        stage1 = LDME(k=5, iterations=5, seed=0).summarize(loaded)
        write_partition(stage1.partition, ckpt)
        print(f"stage 1: compression {stage1.compression:.3f} "
              f"(checkpoint {os.path.getsize(ckpt)/1024:.0f} KB)")

        # Stage 2 (could be another process): resume and keep merging.
        warm = read_partition(ckpt)
        stage2 = LDME(k=5, iterations=10, seed=1).summarize(
            loaded, initial_partition=warm
        )
        verify_lossless(loaded, stage2)
        print(f"stage 2: compression {stage2.compression:.3f} "
              f"(resumed from checkpoint)")
        assert stage2.objective <= stage1.objective

        # Ship the final result compactly.
        out = os.path.join(tmp, "final.ldmeb")
        bytes_written = write_summary_binary(stage2, out)
        print(f"binary summary: {bytes_written/1024:.0f} KB "
              f"vs raw edge file {size_kb:.0f} KB")


if __name__ == "__main__":
    main()
