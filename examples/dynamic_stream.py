"""Summarize a *growing* graph incrementally with MoSSo.

Static algorithms (LDME, SWeG) re-run from scratch per snapshot; MoSSo
maintains the summary across edge insertions. This example streams a graph
in three batches, keeps the partition warm throughout, and compares the
incremental result against a from-scratch LDME run on the final snapshot.

Run with::

    python examples/dynamic_stream.py
"""

import time

import numpy as np

from repro import LDME, web_host_graph
from repro.baselines.mosso import MoSSo, StreamState
from repro.core.encode import encode_sorted
from repro.core.summary import Summarization


def main() -> None:
    graph = web_host_graph(num_hosts=30, host_size=30, seed=9)
    src, dst = graph.edge_arrays()
    rng = np.random.default_rng(0)
    order = rng.permutation(src.size)
    src, dst = src[order], dst[order]
    print(f"final graph: {graph.num_nodes} nodes / {graph.num_edges} edges")

    mosso = MoSSo(escape_prob=0.3, sample_size=60, seed=0)
    state = StreamState(graph.num_nodes)
    batches = np.array_split(np.arange(src.size), 3)
    streamed = 0
    for i, batch in enumerate(batches, start=1):
        tic = time.perf_counter()
        for j in batch.tolist():
            mosso.process_insertion(state, int(src[j]), int(dst[j]), rng)
        streamed += batch.size
        elapsed = time.perf_counter() - tic
        # Encode the current snapshot to measure compression so far.
        snapshot = type(graph).from_edge_arrays(
            graph.num_nodes, src[:streamed], dst[:streamed]
        )
        encoded = encode_sorted(snapshot, state.partition)
        summary = Summarization(
            num_nodes=graph.num_nodes,
            num_edges=snapshot.num_edges,
            partition=state.partition,
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            algorithm="MoSSo",
        )
        print(
            f"batch {i}: +{batch.size} edges in {elapsed:.2f}s — "
            f"supernodes {state.partition.num_supernodes}, "
            f"compression {summary.compression:.3f}"
        )

    # Compare against a cold LDME run on the final graph.
    final = LDME(k=5, iterations=15, seed=0).summarize(graph)
    print(
        f"from-scratch LDME on final snapshot: "
        f"compression {final.compression:.3f} "
        f"in {final.stats.total_seconds:.2f}s"
    )


if __name__ == "__main__":
    main()
