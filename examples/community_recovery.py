"""Summarization as implicit community recovery.

Runs LDME on a stochastic block model with planted communities and checks
how well the resulting supernode partition aligns with the ground truth —
plus a convergence trace (compression per iteration) from a single tracked
run.

Run with::

    python examples/community_recovery.py
"""

import numpy as np

from repro import LDME, compare_partitions, stochastic_block_model
from repro.experiments.reporting import format_table


def main() -> None:
    sizes = [60, 60, 60]
    probs = [
        [0.40, 0.01, 0.01],
        [0.01, 0.40, 0.01],
        [0.01, 0.01, 0.40],
    ]
    graph = stochastic_block_model(sizes, probs, seed=11)
    truth = np.repeat(np.arange(3), 60)
    print(f"SBM: {graph.num_nodes} nodes / {graph.num_edges} edges, "
          f"3 planted communities\n")

    summary = LDME(k=2, iterations=20, seed=0,
                   track_compression=True).summarize(graph)

    # Convergence trace from one run (per-iteration encode).
    rows = [
        {
            "iteration": it.iteration,
            "supernodes": it.num_supernodes,
            "objective": it.objective,
            "compression": it.compression,
            "merges": it.merges,
        }
        for it in summary.stats.iterations
        if it.iteration % 4 == 0 or it.iteration == 1
    ]
    print(format_table(rows))

    # Community alignment of the final partition.
    agreement = compare_partitions(summary.partition, truth)
    print(f"\nalignment with planted communities: "
          f"purity {agreement.purity:.3f}, "
          f"ARI {agreement.adjusted_rand_index:.3f}, "
          f"NMI {agreement.normalized_mutual_information:.3f}")
    print("high purity = supernodes almost never straddle communities")


if __name__ == "__main__":
    main()
