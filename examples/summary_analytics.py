"""Run graph analytics on the summary and store it compactly.

Demonstrates the "analysis on the compact representation" application:
summarize once, then answer PageRank / triangles / similarity queries from
the summary, and persist it in the binary format at a fraction of the raw
edge list's size.

Run with::

    python examples/summary_analytics.py
"""

import os
import tempfile

from repro import (
    LDME,
    SummaryIndex,
    size_report,
    web_host_graph,
    write_summary_binary,
)
from repro.graph.io import write_edge_list
from repro.queries import (
    neighborhood_jaccard,
    pagerank,
    top_degree_nodes,
    triangle_count,
)


def main() -> None:
    graph = web_host_graph(num_hosts=40, host_size=30, seed=13)
    summary = LDME(k=5, iterations=15, seed=0).summarize(graph)
    index = SummaryIndex(summary)

    print(f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges")
    print(f"summary: {summary.num_supernodes} supernodes, "
          f"compression {summary.compression:.3f}\n")

    # Analytics directly on the summary.
    hubs = top_degree_nodes(index, 5)
    print(f"top-degree nodes: {hubs}")
    print(f"triangles: {triangle_count(index):,}")
    ranks = pagerank(index)
    best = int(ranks.argmax())
    print(f"PageRank winner: node {best} (score {ranks[best]:.5f})")
    u, v = hubs[0], hubs[1]
    print(f"neighbourhood Jaccard({u}, {v}) = "
          f"{neighborhood_jaccard(index, u, v):.3f}\n")

    # Size accounting: objective metric + bit-level model + real file sizes.
    report = size_report(graph, summary)
    print(f"bit model: graph {report.graph_bits:,} bits vs summary "
          f"{report.summary_bits:,} bits ({report.bit_savings:.1%} saved)")
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "graph.txt")
        bin_path = os.path.join(tmp, "summary.ldmeb")
        write_edge_list(graph, raw_path)
        binary_size = write_summary_binary(summary, bin_path)
        raw_size = os.path.getsize(raw_path)
        print(f"on disk: edge list {raw_size:,} B vs binary summary "
              f"{binary_size:,} B ({1 - binary_size / raw_size:.1%} saved)")


if __name__ == "__main__":
    main()
