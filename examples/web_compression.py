"""Compress a web-crawl-like graph with every algorithm and tune ``k``.

Demonstrates the paper's central trade-off: the DOPH signature length
``k`` dials between compression (small k) and speed (large k), and LDME
beats the baselines on running time at comparable compression.

Run with::

    python examples/web_compression.py
"""

import time

from repro import LDME, MoSSo, SWeG, web_host_graph
from repro.experiments.reporting import format_table


def run(name, summarizer, graph):
    tic = time.perf_counter()
    summary = summarizer.summarize(graph)
    elapsed = time.perf_counter() - tic
    return {
        "algorithm": name,
        "seconds": elapsed,
        "compression": summary.compression,
        "supernodes": summary.num_supernodes,
        "objective": summary.objective,
    }


def main() -> None:
    graph = web_host_graph(num_hosts=60, host_size=40, seed=11)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    rows = []
    # The k dial: more bins = faster divide+merge, less compression.
    for k in (2, 5, 10, 20):
        rows.append(run(f"LDME(k={k})", LDME(k=k, iterations=15, seed=0), graph))
    rows.append(run("SWeG", SWeG(iterations=15, seed=0), graph))
    rows.append(run("MoSSo", MoSSo(seed=0), graph))
    print(format_table(rows))
    print(
        "\nShape to notice: compression falls and (divide+merge) time "
        "drops as k grows; SWeG compresses well but pays in time."
    )


if __name__ == "__main__":
    main()
