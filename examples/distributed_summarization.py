"""Parallel and distributed LDME.

Shows the two parallel execution paths:

1. the *simulated cluster* (the Spark/EMR substitute of Figure 5b) — real
   per-group costs scheduled over simulated workers;
2. the *process pool* (`MultiprocessLDME`) — merges planned in parallel
   against a partition snapshot and replayed, the same staleness semantics
   the paper's Spark implementation has.

Run with::

    python examples/distributed_summarization.py
"""

import time

from repro import LDME, ClusterSpec, MultiprocessLDME, run_distributed, web_host_graph
from repro.core.reconstruct import verify_lossless


def main() -> None:
    graph = web_host_graph(num_hosts=60, host_size=40, seed=17)
    print(f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges\n")

    # Serial reference.
    serial = LDME(k=5, iterations=10, seed=0).summarize(graph)
    print(f"serial LDME5:      {serial.stats.total_seconds:.2f}s "
          f"compression {serial.compression:.3f}")

    # Simulated 8-worker cluster (identical results, modelled wall clock).
    run = run_distributed(
        LDME(k=5, iterations=10, seed=0), graph, ClusterSpec(num_workers=8)
    )
    assert run.summarization.objective == serial.objective
    print(f"simulated cluster: {run.simulated_seconds:.2f}s simulated "
          f"({run.serial_seconds:.2f}s of serial work, "
          f"{run.speedup:.1f}x modelled speedup)")

    # Real process pool (plans merges in parallel; results may differ
    # slightly from serial because groups see snapshot sizes).
    tic = time.perf_counter()
    parallel = MultiprocessLDME(
        k=5, iterations=10, seed=0, num_workers=4
    ).summarize(graph)
    elapsed = time.perf_counter() - tic
    verify_lossless(graph, parallel)
    print(f"process pool (4):  {elapsed:.2f}s wall "
          f"compression {parallel.compression:.3f} "
          f"[{parallel.algorithm}]")
    print("\nNote: at this scaled size, pool overhead usually exceeds the "
          "merge work — the pool pays off on much larger graphs.")


if __name__ == "__main__":
    main()
