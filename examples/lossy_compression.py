"""Lossy summarization: trade bounded per-node error for extra compactness.

The framework's ε knob (Eq. 2 of the paper) allows each node's reconstructed
neighbourhood to differ from the original by at most ``ε · |N_v|`` entries.
This example sweeps ε, showing the objective shrink while the error bound
is verified to hold at every setting.

Run with::

    python examples/lossy_compression.py
"""

from repro import LDME, verify_error_bound, web_host_graph
from repro.core.reconstruct import reconstruction_error
from repro.experiments.reporting import format_table


def main() -> None:
    graph = web_host_graph(num_hosts=30, host_size=30, seed=3)
    print(f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges\n")

    rows = []
    for epsilon in (0.0, 0.1, 0.25, 0.5, 1.0):
        summary = LDME(k=5, iterations=15, epsilon=epsilon, seed=0).summarize(graph)
        verify_error_bound(graph, summary, epsilon)
        missing, spurious = reconstruction_error(graph, summary)
        rows.append(
            {
                "epsilon": epsilon,
                "objective": summary.objective,
                "compression": summary.compression,
                "missing_edges": len(missing),
                "spurious_edges": len(spurious),
            }
        )
    print(format_table(rows))
    print("\nEvery row satisfies the per-node error bound (verified).")


if __name__ == "__main__":
    main()
