"""Answer graph queries directly on the summary — no reconstruction.

One of the motivating applications: once a graph is summarized, neighbor,
degree, edge and BFS queries can be served from the compact representation
(supernode adjacency + per-node corrections) with answers identical to the
original graph.

Run with::

    python examples/query_answering.py
"""

from repro import LDME, SummaryIndex, web_host_graph


def main() -> None:
    graph = web_host_graph(num_hosts=40, host_size=30, seed=5)
    summary = LDME(k=5, iterations=15, seed=1).summarize(graph)
    index = SummaryIndex(summary)

    print(f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges, "
          f"summary objective {summary.objective} "
          f"(compression {summary.compression:.3f})\n")

    # Point queries.
    for v in (0, 7, 123, 555):
        via_summary = index.neighbors(v)
        via_graph = graph.neighbors(v).tolist()
        status = "OK" if via_summary == via_graph else "MISMATCH"
        print(f"neighbors({v}): degree {len(via_summary)} [{status}]")

    # Edge queries.
    u, v = 0, graph.neighbors(0)[0] if graph.degree(0) else 1
    print(f"has_edge({u}, {int(v)}) = {index.has_edge(u, int(v))}")
    print(f"has_edge({u}, {u + 1}) = {index.has_edge(u, u + 1)} "
          f"(graph says {graph.has_edge(u, u + 1)})")

    # Traversal on the summary.
    distances = index.bfs_distances(0)
    reached = len(distances)
    eccentricity = max(distances.values())
    print(f"BFS from 0: reached {reached} nodes, eccentricity {eccentricity}")

    # Exhaustive check: every node's neighbourhood matches.
    mismatches = sum(
        1
        for node in range(graph.num_nodes)
        if index.neighbors(node) != graph.neighbors(node).tolist()
    )
    print(f"full sweep: {mismatches} mismatching neighbourhoods "
          f"out of {graph.num_nodes}")


if __name__ == "__main__":
    main()
