"""Dynamic-graph summarization over edge streams.

Wraps the MoSSo engine in a stateful :class:`DynamicSummarizer` that a
downstream system can feed insertions and deletions as they happen, and
snapshot into a full :class:`~repro.core.summary.Summarization` at any
point. Also provides a tiny line-oriented stream file format (``+ u v`` /
``- u v``) so recorded workloads are replayable.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Iterator, Tuple, Union

import numpy as np

from .baselines.mosso import MoSSo, StreamState
from .core.encode import encode_sorted
from .core.partition import SupernodePartition
from .core.summary import Summarization
from .errors import CheckpointError
from .graph.graph import Graph
from .ioutil import atomic_write

__all__ = [
    "DynamicSummarizer",
    "read_stream",
    "write_stream",
    "STREAM_PAYLOAD_KIND",
]

Event = Tuple[str, int, int]        # ("+"|"-", u, v)
PathLike = Union[str, "os.PathLike[str]"]

#: ``kind`` tag on DynamicSummarizer checkpoint payloads.
STREAM_PAYLOAD_KIND = "mosso-stream"


class DynamicSummarizer:
    """Maintains a graph summary across edge insertions and deletions.

    Parameters
    ----------
    num_nodes:
        Size of the (fixed) node universe.
    escape_prob / sample_size / seed:
        MoSSo parameters (see :class:`repro.baselines.mosso.MoSSo`).

    Example
    -------
    >>> ds = DynamicSummarizer(num_nodes=4, seed=0)
    >>> ds.insert(0, 1); ds.insert(1, 2); ds.delete(0, 1)
    >>> summary = ds.snapshot()
    >>> summary.num_edges
    1
    """

    def __init__(
        self,
        num_nodes: int,
        escape_prob: float = 0.3,
        sample_size: int = 120,
        seed: int = 0,
    ) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._engine = MoSSo(
            escape_prob=escape_prob, sample_size=sample_size, seed=seed
        )
        self._params = {
            "num_nodes": int(num_nodes),
            "escape_prob": float(escape_prob),
            "sample_size": int(sample_size),
            "seed": int(seed),
        }
        self._state = StreamState(num_nodes)
        self._rng = np.random.default_rng(seed)
        self._events = 0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node universe size."""
        return self._state.partition.num_nodes

    @property
    def num_edges(self) -> int:
        """Current number of live edges."""
        return sum(len(adj) for adj in self._state.adjacency) // 2

    @property
    def num_supernodes(self) -> int:
        """Current supernode count."""
        return self._state.partition.num_supernodes

    @property
    def events_processed(self) -> int:
        """Total insert/delete events applied (including no-ops)."""
        return self._events

    # ------------------------------------------------------------------
    def insert(self, u: int, v: int) -> None:
        """Apply one edge insertion."""
        self._events += 1
        self._engine.process_insertion(self._state, int(u), int(v), self._rng)

    def delete(self, u: int, v: int) -> None:
        """Apply one edge deletion."""
        self._events += 1
        self._engine.process_deletion(self._state, int(u), int(v), self._rng)

    def apply(self, events: Iterable[Event]) -> None:
        """Apply a batch of ``(op, u, v)`` events in order."""
        for op, u, v in events:
            if op == "+":
                self.insert(u, v)
            elif op == "-":
                self.delete(u, v)
            else:
                raise ValueError(f"unknown stream op {op!r}")

    # ------------------------------------------------------------------
    def current_graph(self) -> Graph:
        """Materialize the current graph snapshot."""
        edges = [
            (u, v)
            for u in range(self.num_nodes)
            for v in self._state.adjacency[u]
            if u < v
        ]
        return Graph.from_edges(self.num_nodes, edges)

    def snapshot(self) -> Summarization:
        """Encode the current partition into a full summarization.

        The result is lossless against :meth:`current_graph` (the partition
        is MoSSo's; the encoding is the exact Algorithm 5 pass).
        """
        graph = self.current_graph()
        encoded = encode_sorted(graph, self._state.partition)
        return Summarization(
            num_nodes=self.num_nodes,
            num_edges=graph.num_edges,
            partition=self._state.partition.copy(),
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            algorithm="DynamicSummarizer",
        )

    def snapshot_compiled(self):
        """Snapshot straight to a query-ready compiled index.

        Convenience for serving pipelines: the result can be handed to
        :meth:`repro.serve.SummaryServer.swap` to hot-swap the live index
        after a burst of stream updates.
        """
        from .queries.compiled import CompiledSummaryIndex

        return CompiledSummaryIndex(self.snapshot())

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable state for checkpointing.

        Captures the stream offset (:attr:`events_processed`), MoSSo
        parameters, RNG state, adjacency, partition (member order
        preserved), and the incremental count table (row order preserved —
        Saving evaluations sum rows in iteration order, so preserving it
        keeps restored decisions deterministic). Suitable as a
        :class:`~repro.resilience.CheckpointManager` payload; restore with
        :meth:`from_state` and replay the stream file from
        ``events_processed`` onward.
        """
        return {
            "kind": STREAM_PAYLOAD_KIND,
            "params": dict(self._params),
            "events_processed": self._events,
            "rng_state": self._rng.bit_generator.state,
            "adjacency": [
                [int(x) for x in adj] for adj in self._state.adjacency
            ],
            "partition": {
                str(sid): [int(x) for x in mem]
                for sid, mem in self._state.partition.members_map().items()
            },
            "counts": {
                str(sid): {str(c): int(n) for c, n in row.items()}
                for sid, row in self._state.counts.items()
            },
        }

    @classmethod
    def from_state(cls, payload: Dict[str, Any]) -> "DynamicSummarizer":
        """Rebuild a summarizer from a :meth:`state_dict` payload.

        Raises :class:`~repro.errors.CheckpointError` when the payload is
        not a ``mosso-stream`` checkpoint.
        """
        if not isinstance(payload, dict) \
                or payload.get("kind") != STREAM_PAYLOAD_KIND:
            raise CheckpointError(
                f"not a {STREAM_PAYLOAD_KIND!r} checkpoint payload "
                f"(found kind={payload.get('kind') if isinstance(payload, dict) else payload!r})"
            )
        try:
            params = payload["params"]
            ds = cls(
                num_nodes=int(params["num_nodes"]),
                escape_prob=float(params["escape_prob"]),
                sample_size=int(params["sample_size"]),
                seed=int(params["seed"]),
            )
            ds._events = int(payload["events_processed"])
            if payload.get("rng_state") is not None:
                ds._rng.bit_generator.state = payload["rng_state"]
            state = ds._state
            adjacency = payload["adjacency"]
            if len(adjacency) != ds.num_nodes:
                raise ValueError(
                    f"adjacency covers {len(adjacency)} nodes, "
                    f"expected {ds.num_nodes}"
                )
            for u, neighbors in enumerate(adjacency):
                state.adjacency[u] = set(int(x) for x in neighbors)
            members = {
                int(sid): [int(x) for x in mem]
                for sid, mem in payload["partition"].items()
            }
            state.partition = SupernodePartition.from_members(
                ds.num_nodes, members
            )
            state.counts = {
                int(sid): {int(c): int(n) for c, n in row.items()}
                for sid, row in payload["counts"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed {STREAM_PAYLOAD_KIND} payload: {exc}"
            ) from exc
        return ds


# ----------------------------------------------------------------------
# stream file format: one "+ u v" or "- u v" per line
# ----------------------------------------------------------------------
def write_stream(events: Iterable[Event], path: PathLike) -> None:
    """Write events to a replayable stream file (atomically).

    The file appears complete or not at all — a crash mid-write leaves
    any previous recording intact rather than a torn half-stream.
    """
    with atomic_write(os.fspath(path), "w", encoding="utf-8") as fh:
        for op, u, v in events:
            if op not in ("+", "-"):
                raise ValueError(f"unknown stream op {op!r}")
            fh.write(f"{op} {int(u)} {int(v)}\n")
        # Explicit flush before atomic_write's close/fsync/rename: the
        # temp file holds every line before it can possibly be renamed
        # into place, even if a buggy wrapper stream swallows close().
        fh.flush()


def read_stream(path: PathLike) -> Iterator[Event]:
    """Yield ``(op, u, v)`` events from a stream file.

    Blank lines and ``#`` comments are skipped. Any malformed line —
    wrong field count, unknown op, non-integer or negative endpoint —
    raises :class:`ValueError` naming the file and line number, instead
    of half-applying a corrupt stream.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                raise ValueError(
                    f"{path}:{lineno}: expected '+/- u v', got {line!r}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: non-integer endpoint in {line!r}"
                ) from None
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{lineno}: negative node id in {line!r}"
                )
            yield parts[0], u, v
