"""Dynamic-graph summarization over edge streams.

Wraps the MoSSo engine in a stateful :class:`DynamicSummarizer` that a
downstream system can feed insertions and deletions as they happen, and
snapshot into a full :class:`~repro.core.summary.Summarization` at any
point. Also provides a tiny line-oriented stream file format (``+ u v`` /
``- u v``) so recorded workloads are replayable.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Tuple, Union

import numpy as np

from .baselines.mosso import MoSSo, StreamState
from .core.encode import encode_sorted
from .core.summary import Summarization
from .graph.graph import Graph

__all__ = [
    "DynamicSummarizer",
    "read_stream",
    "write_stream",
]

Event = Tuple[str, int, int]        # ("+"|"-", u, v)
PathLike = Union[str, "os.PathLike[str]"]


class DynamicSummarizer:
    """Maintains a graph summary across edge insertions and deletions.

    Parameters
    ----------
    num_nodes:
        Size of the (fixed) node universe.
    escape_prob / sample_size / seed:
        MoSSo parameters (see :class:`repro.baselines.mosso.MoSSo`).

    Example
    -------
    >>> ds = DynamicSummarizer(num_nodes=4, seed=0)
    >>> ds.insert(0, 1); ds.insert(1, 2); ds.delete(0, 1)
    >>> summary = ds.snapshot()
    >>> summary.num_edges
    1
    """

    def __init__(
        self,
        num_nodes: int,
        escape_prob: float = 0.3,
        sample_size: int = 120,
        seed: int = 0,
    ) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._engine = MoSSo(
            escape_prob=escape_prob, sample_size=sample_size, seed=seed
        )
        self._state = StreamState(num_nodes)
        self._rng = np.random.default_rng(seed)
        self._events = 0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node universe size."""
        return self._state.partition.num_nodes

    @property
    def num_edges(self) -> int:
        """Current number of live edges."""
        return sum(len(adj) for adj in self._state.adjacency) // 2

    @property
    def num_supernodes(self) -> int:
        """Current supernode count."""
        return self._state.partition.num_supernodes

    @property
    def events_processed(self) -> int:
        """Total insert/delete events applied (including no-ops)."""
        return self._events

    # ------------------------------------------------------------------
    def insert(self, u: int, v: int) -> None:
        """Apply one edge insertion."""
        self._events += 1
        self._engine.process_insertion(self._state, int(u), int(v), self._rng)

    def delete(self, u: int, v: int) -> None:
        """Apply one edge deletion."""
        self._events += 1
        self._engine.process_deletion(self._state, int(u), int(v), self._rng)

    def apply(self, events: Iterable[Event]) -> None:
        """Apply a batch of ``(op, u, v)`` events in order."""
        for op, u, v in events:
            if op == "+":
                self.insert(u, v)
            elif op == "-":
                self.delete(u, v)
            else:
                raise ValueError(f"unknown stream op {op!r}")

    # ------------------------------------------------------------------
    def current_graph(self) -> Graph:
        """Materialize the current graph snapshot."""
        edges = [
            (u, v)
            for u in range(self.num_nodes)
            for v in self._state.adjacency[u]
            if u < v
        ]
        return Graph.from_edges(self.num_nodes, edges)

    def snapshot(self) -> Summarization:
        """Encode the current partition into a full summarization.

        The result is lossless against :meth:`current_graph` (the partition
        is MoSSo's; the encoding is the exact Algorithm 5 pass).
        """
        graph = self.current_graph()
        encoded = encode_sorted(graph, self._state.partition)
        return Summarization(
            num_nodes=self.num_nodes,
            num_edges=graph.num_edges,
            partition=self._state.partition.copy(),
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            algorithm="DynamicSummarizer",
        )

    def snapshot_compiled(self):
        """Snapshot straight to a query-ready compiled index.

        Convenience for serving pipelines: the result can be handed to
        :meth:`repro.serve.SummaryServer.swap` to hot-swap the live index
        after a burst of stream updates.
        """
        from .queries.compiled import CompiledSummaryIndex

        return CompiledSummaryIndex(self.snapshot())


# ----------------------------------------------------------------------
# stream file format: one "+ u v" or "- u v" per line
# ----------------------------------------------------------------------
def write_stream(events: Iterable[Event], path: PathLike) -> None:
    """Write events to a replayable stream file."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        for op, u, v in events:
            if op not in ("+", "-"):
                raise ValueError(f"unknown stream op {op!r}")
            fh.write(f"{op} {int(u)} {int(v)}\n")


def read_stream(path: PathLike) -> Iterator[Event]:
    """Yield ``(op, u, v)`` events from a stream file."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                raise ValueError(
                    f"{path}:{lineno}: expected '+/- u v', got {line!r}"
                )
            yield parts[0], int(parts[1]), int(parts[2])
