"""Graph partitioning for sharded summarization.

:func:`partition_graph` splits a CSR :class:`~repro.graph.graph.Graph`
into K shards using a :class:`~repro.shard.hashring.HashRing` over node
ids. Each shard gets the *induced subgraph* over its own nodes
(intra-shard edges, relabelled to a dense local id space so LDME runs
unchanged), and every cut edge — an edge whose endpoints hash to
different shards — is routed to exactly one deterministic **owner**
shard: the shard owning the edge's smaller endpoint. The owner rule is
pure routing bookkeeping (the stitcher re-examines every cut edge
globally); what matters is that it is deterministic and endpoint-only,
so two independent partitioning runs, or the partitioner and a serving
router, always agree without communicating.

Conservation invariant (checked in ``validate`` and pinned by tests):
every edge of the input appears exactly once, either inside exactly one
shard's local subgraph or in the cut-edge set — so stitching the
per-shard summaries plus the cut edges reproduces the input exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..graph.graph import Graph
from .hashring import HashRing

__all__ = ["GraphShard", "ShardedGraph", "partition_graph"]


@dataclass
class GraphShard:
    """One shard's slice of the input graph.

    ``global_ids[i]`` is the input-graph node id of local node ``i``;
    ``local_of`` inverts it for this shard's nodes only.
    """

    shard_id: int
    global_ids: np.ndarray            # sorted int64, local -> global
    local_graph: Graph                # induced subgraph in local id space

    @property
    def num_nodes(self) -> int:
        return int(self.global_ids.size)

    def local_of(self, global_id: int) -> int:
        """Local id of a global node id (raises if not in this shard)."""
        pos = int(np.searchsorted(self.global_ids, global_id))
        if pos >= self.global_ids.size or \
                int(self.global_ids[pos]) != int(global_id):
            raise KeyError(f"node {global_id} not in shard {self.shard_id}")
        return pos


@dataclass
class ShardedGraph:
    """A full partitioning: per-shard subgraphs plus owner-routed cuts."""

    ring: HashRing
    num_nodes: int
    num_edges: int
    assignment: np.ndarray            # node -> shard id (int64)
    shards: List[GraphShard]
    #: Cut edges grouped by owner shard; each array is (m, 2) global
    #: ``(u, v)`` pairs with ``u < v``, sorted lexicographically.
    cut_edges: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_cut_edges(self) -> int:
        return sum(int(arr.shape[0]) for arr in self.cut_edges.values())

    def shard(self, shard_id: int) -> GraphShard:
        """The shard with the given id (``KeyError`` if absent)."""
        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        raise KeyError(f"no shard {shard_id}")

    def all_cut_edges(self) -> np.ndarray:
        """Every cut edge as one (m, 2) array (owner order)."""
        arrays = [arr for _, arr in sorted(self.cut_edges.items())]
        if not arrays:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(arrays, axis=0)

    def validate(self) -> None:
        """Check partition coverage and edge conservation (tests/tools)."""
        if self.assignment.size != self.num_nodes:
            raise AssertionError("assignment does not cover the universe")
        covered = np.zeros(self.num_nodes, dtype=bool)
        for shard in self.shards:
            if np.any(self.assignment[shard.global_ids] != shard.shard_id):
                raise AssertionError(
                    f"shard {shard.shard_id} holds a foreign node"
                )
            if np.any(covered[shard.global_ids]):
                raise AssertionError("node covered by two shards")
            covered[shard.global_ids] = True
        if not covered.all():
            missing = int(np.flatnonzero(~covered)[0])
            raise AssertionError(f"node {missing} not in any shard")
        local = sum(s.local_graph.num_edges for s in self.shards)
        if local + self.num_cut_edges != self.num_edges:
            raise AssertionError(
                f"edge conservation broken: {local} local + "
                f"{self.num_cut_edges} cut != {self.num_edges} total"
            )


def _undirected_pairs(graph: Graph) -> np.ndarray:
    """All edges as (m, 2) ``u < v`` pairs, from the CSR upper triangle."""
    indptr, indices = graph.indptr, graph.indices
    degrees = np.diff(indptr)
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), degrees)
    mask = src < indices
    return np.stack([src[mask], indices[mask]], axis=1)


def partition_graph(graph: Graph, ring: HashRing) -> ShardedGraph:
    """Split ``graph`` into the ring's shards (vectorized).

    Intra-shard edges land in that shard's local subgraph; cut edges are
    routed to the shard owning the smaller endpoint. Isolated nodes are
    carried by their shard like any other node, so the shard node sets
    always cover the universe exactly.
    """
    assignment = ring.assign_range(graph.num_nodes)
    pairs = _undirected_pairs(graph)
    if pairs.size:
        shard_u = assignment[pairs[:, 0]]
        shard_v = assignment[pairs[:, 1]]
        intra = shard_u == shard_v
    else:
        shard_u = shard_v = np.empty(0, dtype=np.int64)
        intra = np.empty(0, dtype=bool)

    shards: List[GraphShard] = []
    for sid in ring.shards:
        global_ids = np.flatnonzero(assignment == sid).astype(np.int64)
        local_index = np.full(graph.num_nodes, -1, dtype=np.int64)
        local_index[global_ids] = np.arange(
            global_ids.size, dtype=np.int64
        )
        mine = intra & (shard_u == sid)
        local_src = local_index[pairs[mine, 0]]
        local_dst = local_index[pairs[mine, 1]]
        local_graph = Graph.from_edge_arrays(
            int(global_ids.size), local_src, local_dst
        )
        shards.append(GraphShard(
            shard_id=int(sid),
            global_ids=global_ids,
            local_graph=local_graph,
        ))

    cut_edges: Dict[int, np.ndarray] = {}
    cut_mask = ~intra
    if np.any(cut_mask):
        cut_pairs = pairs[cut_mask]
        owners = shard_u[cut_mask]        # shard of the smaller endpoint
        for sid in ring.shards:
            mine = cut_pairs[owners == sid]
            if mine.size:
                order = np.lexsort((mine[:, 1], mine[:, 0]))
                cut_edges[int(sid)] = mine[order]

    sharded = ShardedGraph(
        ring=ring,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        assignment=assignment,
        shards=shards,
        cut_edges=cut_edges,
    )
    return sharded
