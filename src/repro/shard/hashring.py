"""Consistent-hash ring with virtual nodes: the node → shard authority.

One :class:`HashRing` instance is shared by every layer that needs to
know which shard owns a node: the partitioner uses it to split the
graph, the stitcher to validate coverage, and
:class:`~repro.serve.cluster.ClusterClient` to route single-node queries
to the owning shard's replica set. Because all of them hash the same
way, a node summarized into shard ``s`` is always queried at shard
``s`` — there is no second mapping to drift out of sync.

The ring is the classic construction: each shard contributes
``virtual_nodes`` points on a 64-bit circle, a key is owned by the first
shard point at or clockwise-after its hash. Virtual nodes smooth the
load (the max/min shard-size ratio tightens as ``virtual_nodes`` grows
— property-tested in ``tests/shard/test_hashring.py``), and the ring
gives *minimal remapping*: adding or removing one shard only moves keys
into or out of that shard, never between two surviving shards. That is
what makes shard-count changes an incremental re-shard instead of a
full re-summarize.

Hashing is splitmix64 — deterministic across processes and platforms
(no ``PYTHONHASHSEED`` dependence), and vectorizable with numpy uint64
arithmetic so assigning millions of node ids is a few array ops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

__all__ = ["HashRing", "splitmix64"]

_U64 = np.uint64
# splitmix64 constants (Steele, Lea & Flood; also java.util.SplittableRandom).
_GAMMA = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)
# Ring points hash in a salted stream, keys in the plain one. The two
# domains must never share a stream: vnode key ``idx`` of shard 0 and
# node id ``idx`` would otherwise hash identically, parking every node
# id below ``virtual_nodes`` on shard 0's own ring points.
_VNODE_SALT = 0x1D872B41E2D0F3A7


def splitmix64(values: Union[int, np.ndarray],
               seed: int = 0) -> np.ndarray:
    """The splitmix64 finalizer over an int or uint64 array.

    Returns a uint64 array of the same shape (0-d for a scalar input).
    ``seed`` perturbs the stream so independent rings decorrelate.
    """
    with np.errstate(over="ignore"):
        x = np.asarray(values).astype(np.uint64) + _U64(seed) * _GAMMA
        x = x + _GAMMA
        x ^= x >> _U64(30)
        x *= _MIX1
        x ^= x >> _U64(27)
        x *= _MIX2
        x ^= x >> _U64(31)
    return x


class HashRing:
    """Consistent hashing of integer keys onto integer shard ids.

    Parameters
    ----------
    shards:
        Shard ids (distinct non-negative ints), or an int K meaning
        shards ``0 .. K-1``.
    virtual_nodes:
        Ring points per shard. More points = tighter balance; 64 keeps
        the max/min shard load within a small factor for the shard
        counts this repo serves (property-tested).
    seed:
        Perturbs every hash; rings with different seeds are independent.
    """

    def __init__(
        self,
        shards: Union[int, Iterable[int]],
        virtual_nodes: int = 64,
        seed: int = 0,
    ) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError("a ring needs at least one shard")
            shard_ids = list(range(shards))
        else:
            shard_ids = sorted(int(s) for s in shards)
            if not shard_ids:
                raise ValueError("a ring needs at least one shard")
            if len(set(shard_ids)) != len(shard_ids):
                raise ValueError("shard ids must be distinct")
            if shard_ids[0] < 0:
                raise ValueError("shard ids must be non-negative")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = int(virtual_nodes)
        self.seed = int(seed)
        self._shard_ids: List[int] = shard_ids
        self._rebuild()

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute the sorted ring points for the current shard set."""
        vnodes = []
        owners = []
        for sid in self._shard_ids:
            # One ring point per (shard, replica-index) pair; the key
            # packs both so points never collide across shards.
            idx = np.arange(self.virtual_nodes, dtype=np.uint64)
            keys = (_U64(sid) << _U64(20)) + idx
            vnodes.append(splitmix64(keys, seed=self.seed ^ _VNODE_SALT))
            owners.append(np.full(self.virtual_nodes, sid, dtype=np.int64))
        points = np.concatenate(vnodes)
        owner = np.concatenate(owners)
        order = np.argsort(points, kind="stable")
        self._points = points[order]
        self._owners = owner[order]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[int]:
        """Sorted shard ids currently on the ring."""
        return list(self._shard_ids)

    @property
    def num_shards(self) -> int:
        return len(self._shard_ids)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shard_ids

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashRing)
            and self._shard_ids == other._shard_ids
            and self.virtual_nodes == other.virtual_nodes
            and self.seed == other.seed
        )

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={self._shard_ids}, "
            f"virtual_nodes={self.virtual_nodes}, seed={self.seed})"
        )

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self, keys: Union[int, Sequence[int], np.ndarray]) -> np.ndarray:
        """Owning shard id for each key (vectorized).

        Accepts an int array/sequence of node ids or the scalar count
        shorthand via :meth:`assign_range`. Returns an int64 array.
        """
        hashes = splitmix64(
            np.atleast_1d(np.asarray(keys, dtype=np.int64)), seed=self.seed
        )
        # First ring point at or after the key hash, wrapping to 0.
        pos = np.searchsorted(self._points, hashes, side="left")
        pos[pos == self._points.size] = 0
        return self._owners[pos]

    def assign_range(self, num_keys: int) -> np.ndarray:
        """Shard ids for keys ``0 .. num_keys-1``."""
        if num_keys < 0:
            raise ValueError("num_keys must be non-negative")
        return self.assign(np.arange(num_keys, dtype=np.int64))

    def shard_of(self, key: int) -> int:
        """Owning shard of one key."""
        return int(self.assign(np.asarray([key], dtype=np.int64))[0])

    # ------------------------------------------------------------------
    # membership changes (minimal remapping)
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> None:
        """Add a shard; only keys moving *to* it change owner."""
        shard_id = int(shard_id)
        if shard_id < 0:
            raise ValueError("shard ids must be non-negative")
        if shard_id in self._shard_ids:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shard_ids = sorted(self._shard_ids + [shard_id])
        self._rebuild()

    def remove_shard(self, shard_id: int) -> None:
        """Remove a shard; only its keys change owner."""
        if shard_id not in self._shard_ids:
            raise ValueError(f"shard {shard_id} not on the ring")
        if len(self._shard_ids) == 1:
            raise ValueError("cannot remove the last shard")
        self._shard_ids = [s for s in self._shard_ids if s != shard_id]
        self._rebuild()

    # ------------------------------------------------------------------
    # persistence (manifest round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe description; ``from_dict`` rebuilds an equal ring."""
        return {
            "shards": list(self._shard_ids),
            "virtual_nodes": self.virtual_nodes,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HashRing":
        return cls(
            shards=[int(s) for s in data["shards"]],  # type: ignore[union-attr]
            virtual_nodes=int(data.get("virtual_nodes", 64)),
            seed=int(data.get("seed", 0)),
        )

    # ------------------------------------------------------------------
    def load_counts(self, num_keys: int) -> Dict[int, int]:
        """Keys per shard for the universe ``0 .. num_keys-1``."""
        assignment = self.assign_range(num_keys)
        counts = {sid: 0 for sid in self._shard_ids}
        ids, freq = np.unique(assignment, return_counts=True)
        for sid, count in zip(ids.tolist(), freq.tolist()):
            counts[int(sid)] = int(count)
        return counts
