"""The stitching coordinator: per-shard summaries → one global summary.

Per-shard LDME runs see only intra-shard edges, in a local id space.
:func:`stitch_shards` lifts each shard's partition, superedges, and
corrections back to global node ids, unions the partitions (shards are
disjoint by construction, so the union is a valid partition of the full
universe), and then encodes every **cut edge** with the paper's own
superedge cost rule: a cross-shard supernode pair ``(A, B)`` whose cut
edges cover more than half of ``|A|·|B|`` becomes a cross-shard
superedge plus ``C-`` deletions; sparser pairs put their edges in
``C+``. The decision is literally
:func:`repro.core.encode._encode_pair` — the same code the serial
encoder runs — so a stitched summary prices cross-shard structure
exactly like a whole-graph run would.

The result is **lossless by construction**: intra-shard edges are
reproduced by the shard summaries, cut edges by the cross-shard
encoding, and nothing else exists. ``validate=True`` re-checks this
with the shared partition-coverage helper
(:func:`repro.core.validate.partition_coverage_problems`) plus, when
the input graph is supplied, a full
:func:`~repro.core.validate.check_summary` reconstruction proof.

:func:`shard_serving_summary` derives the per-shard artifact a serving
replica loads: the shard's own supernodes, *ghost* copies of
cross-superedge peer supernodes, singletons for every other node, and
exactly the superedges/corrections incident to the shard — enough to
answer any single-node query about the shard's nodes with global
accuracy, at a fraction of the full index's superedge/correction state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.encode import _encode_pair
from ..core.summary import CorrectionSet, RunStats, Summarization
from ..core.partition import SupernodePartition
from ..core.validate import check_summary, partition_coverage_problems
from ..graph.graph import Graph
from ..obs import trace as obs_trace
from .partitioner import ShardedGraph

__all__ = ["StitchReport", "stitch_shards", "shard_serving_summary"]

Edge = Tuple[int, int]


@dataclass
class StitchReport:
    """Outcome of one stitch: the global summary plus accounting."""

    summary: Summarization
    num_shards: int
    num_cut_edges: int
    cross_superedges: int             # cut-edge pairs encoded as superedges
    cross_additions: int              # cut edges landing in C+
    cross_deletions: int              # C- emitted under cross superedges
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _lift_summaries(
    sharded: ShardedGraph,
    summaries: Mapping[int, Summarization],
) -> Tuple[Dict[int, List[int]], List[Edge], List[Edge], List[Edge]]:
    """Map every shard summary into global ids.

    Returns (members, superedges, additions, deletions), all global. A
    local supernode id is a local node id, so its global supernode id is
    that node's global id — the same "supernode id is a member's node
    id" invariant the serial pipeline keeps.
    """
    members: Dict[int, List[int]] = {}
    superedges: List[Edge] = []
    additions: List[Edge] = []
    deletions: List[Edge] = []
    for shard in sharded.shards:
        summary = summaries[shard.shard_id]
        if summary.num_nodes != shard.num_nodes:
            raise ValueError(
                f"shard {shard.shard_id} summary covers "
                f"{summary.num_nodes} nodes, expected {shard.num_nodes}"
            )
        gids = shard.global_ids
        for sid in summary.partition.supernode_ids():
            members[int(gids[sid])] = [
                int(gids[v]) for v in summary.partition.members(sid)
            ]
        superedges.extend(
            (int(gids[a]), int(gids[b])) for a, b in summary.superedges
        )
        additions.extend(
            (int(gids[u]), int(gids[v]))
            for u, v in summary.corrections.additions
        )
        deletions.extend(
            (int(gids[u]), int(gids[v]))
            for u, v in summary.corrections.deletions
        )
    return members, superedges, additions, deletions


def stitch_shards(
    sharded: ShardedGraph,
    summaries: Mapping[int, Summarization],
    *,
    graph: Optional[Graph] = None,
    validate: bool = True,
) -> StitchReport:
    """Merge per-shard summaries and cut edges into one global summary.

    ``summaries`` maps shard id → that shard's (local-space)
    :class:`~repro.core.summary.Summarization`. With ``graph`` supplied
    and ``validate=True`` the stitched output is proven lossless via
    full reconstruction; without it, structural checks still run.
    """
    missing = [s.shard_id for s in sharded.shards
               if s.shard_id not in summaries]
    if missing:
        raise ValueError(f"missing summaries for shards {missing}")

    with obs_trace.span(
        "stitch", key=sharded.num_shards,
        shards=sharded.num_shards, cut_edges=sharded.num_cut_edges,
    ) as span:
        members, superedges, additions, deletions = _lift_summaries(
            sharded, summaries
        )
        partition = SupernodePartition.from_members(
            sharded.num_nodes, members
        )

        # Cut edges, bundled per cross-shard supernode pair, then priced
        # with the serial encoder's own decision rule.
        node2super = partition.node2super
        bundles: Dict[Edge, List[Edge]] = {}
        for u, v in sharded.all_cut_edges().tolist():
            a, b = int(node2super[u]), int(node2super[v])
            key = (a, b) if a < b else (b, a)
            bundles.setdefault(key, []).append((int(u), int(v)))
        cross_superedges: List[Edge] = []
        cross_additions: List[Edge] = []
        cross_deletions: List[Edge] = []
        for (a, b), edges in sorted(bundles.items()):
            _encode_pair(
                a, b, edges, partition,
                cross_superedges, cross_additions, cross_deletions,
            )

        stats = RunStats()
        for summary in summaries.values():
            stats.divide_seconds += summary.stats.divide_seconds
            stats.merge_seconds += summary.stats.merge_seconds
            stats.encode_seconds += summary.stats.encode_seconds
            stats.drop_seconds += summary.stats.drop_seconds
        stitched = Summarization(
            num_nodes=sharded.num_nodes,
            num_edges=sharded.num_edges,
            partition=partition,
            superedges=superedges + cross_superedges,
            corrections=CorrectionSet(
                additions=additions + cross_additions,
                deletions=deletions + cross_deletions,
            ),
            stats=stats,
            algorithm=f"ldme-sharded-{sharded.num_shards}",
        )

        problems: List[str] = []
        if validate:
            problems = partition_coverage_problems(
                stitched.partition, stitched.num_nodes
            )
            if not problems:
                problems = check_summary(stitched, graph)
        span.set_attribute("cross_superedges", len(cross_superedges))
        span.set_attribute("problems", len(problems))

    return StitchReport(
        summary=stitched,
        num_shards=sharded.num_shards,
        num_cut_edges=sharded.num_cut_edges,
        cross_superedges=len(cross_superedges),
        cross_additions=len(cross_additions),
        cross_deletions=len(cross_deletions),
        problems=problems,
    )


def shard_serving_summary(
    stitched: Summarization,
    sharded: ShardedGraph,
    shard_id: int,
) -> Summarization:
    """The summary one shard's replicas serve (global node space).

    Contains the shard's own supernodes, ghost copies of supernodes
    reachable through a cross-shard superedge, singleton supernodes for
    every remaining node, and only the superedges / correction edges
    incident to the shard. Single-node queries (``neighbors`` /
    ``degree`` / ``has_edge``) about *this shard's nodes* answer
    identically to the full stitched index — pinned by
    ``tests/shard/test_stitch.py`` — which is why hash-ring routing must
    send each node's queries to its owning shard.
    """
    assignment = sharded.assignment
    partition = stitched.partition
    mine = np.flatnonzero(assignment == shard_id)
    if mine.size == 0 and shard_id not in sharded.ring.shards:
        raise KeyError(f"no shard {shard_id}")
    my_nodes = set(int(v) for v in mine)
    # Supernodes owned by this shard (every member lives here — shards
    # never split a supernode, by construction).
    own_sids = {int(partition.node2super[v]) for v in mine}

    # Superedges incident to an owned supernode; peers become ghosts.
    ghost_sids = set()
    superedges: List[Edge] = []
    for a, b in stitched.superedges:
        if a in own_sids or b in own_sids:
            superedges.append((a, b))
            for sid in (a, b):
                if sid not in own_sids:
                    ghost_sids.add(sid)

    members: Dict[int, List[int]] = {}
    covered = np.zeros(stitched.num_nodes, dtype=bool)
    for sid in sorted(own_sids | ghost_sids):
        mem = [int(v) for v in partition.members(sid)]
        members[sid] = mem
        covered[mem] = True
    for v in np.flatnonzero(~covered).tolist():
        members[int(v)] = [int(v)]

    additions = [
        (u, v) for u, v in stitched.corrections.additions
        if u in my_nodes or v in my_nodes
    ]
    deletions = [
        (u, v) for u, v in stitched.corrections.deletions
        if u in my_nodes or v in my_nodes
    ]
    return Summarization(
        num_nodes=stitched.num_nodes,
        num_edges=stitched.num_edges,
        partition=SupernodePartition.from_members(
            stitched.num_nodes, members
        ),
        superedges=superedges,
        corrections=CorrectionSet(additions=additions,
                                  deletions=deletions),
        algorithm=f"{stitched.algorithm}/shard-{shard_id}",
    )
