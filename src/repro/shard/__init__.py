"""Sharded summarization (``repro.shard``).

The billion-scale pitch of the paper made concrete: the graph is split
into K shards by consistent hashing on node id, each shard is summarized
independently (reusing the serial or supervised-parallel LDME drivers),
and a stitching coordinator merges the per-shard outputs into one
lossless global summary plus per-shard *serving* artifacts that a
shards × replicas :class:`~repro.serve.cluster.SummaryCluster` loads.

Modules
-------
* :mod:`~repro.shard.hashring` — consistent-hash ring with virtual
  nodes; the single source of node → shard truth, shared by the
  partitioner and by :class:`~repro.serve.cluster.ClusterClient`
  routing.
* :mod:`~repro.shard.partitioner` — splits a CSR graph into per-shard
  induced subgraphs (intra-shard edges stay local) and routes every cut
  edge to a deterministic owner shard.
* :mod:`~repro.shard.driver` — runs LDME per shard, honouring the
  ``kernels=`` backend knob, ``repro.distributed`` worker pools,
  checkpointing via :func:`repro.resilience.run_resumable`, and
  :mod:`repro.obs` spans.
* :mod:`~repro.shard.stitch` — merges per-shard summaries into a global
  :class:`~repro.core.summary.Summarization` (cross-shard superedges
  with corrections, encoded by the paper's own cost rule) and derives
  the per-shard serving summaries.
* :mod:`~repro.shard.manifest` — the CRC-checked shard manifest plus
  per-shard CRC-footer ``.ldmeb`` artifacts on disk.

See ``docs/sharding.md`` for the end-to-end topology and swap
semantics.
"""

from .driver import ShardSummaryResult, summarize_sharded
from .hashring import HashRing
from .manifest import (
    ShardEntry,
    ShardManifest,
    load_manifest,
    load_serving_summaries,
    save_sharded,
)
from .migrate import (
    CoordinatorKilledError,
    GenerationStore,
    MigrationCoordinator,
    MigrationJournal,
    MigrationPlan,
    MigrationReport,
    plan_migration,
)
from .partitioner import GraphShard, ShardedGraph, partition_graph
from .stitch import StitchReport, shard_serving_summary, stitch_shards

__all__ = [
    "HashRing",
    "GraphShard",
    "ShardedGraph",
    "partition_graph",
    "ShardSummaryResult",
    "summarize_sharded",
    "StitchReport",
    "stitch_shards",
    "shard_serving_summary",
    "ShardManifest",
    "ShardEntry",
    "save_sharded",
    "load_manifest",
    "load_serving_summaries",
    "plan_migration",
    "MigrationPlan",
    "MigrationJournal",
    "MigrationReport",
    "MigrationCoordinator",
    "GenerationStore",
    "CoordinatorKilledError",
]
