"""Shard manifest: the on-disk contract between stitcher and cluster.

A stitched run persists one directory::

    manifest.json        ring + universe + per-shard artifact table
    global.ldmeb         the stitched global summary (truth / validation)
    shard-<id>.ldmeb     per-shard serving summary, one per shard
    local-<id>.ldmeb     per-shard *local-space* summary (v2, optional)

The optional ``local-<id>.ldmeb`` artifacts (manifest version 2) are the
raw per-shard summaries in shard-local id space — exactly what
:func:`~repro.shard.stitch.stitch_shards` consumes. Persisting them
makes a manifest *re-stitchable*: an elastic re-shard
(:mod:`repro.shard.migrate`) reuses the unaffected shards' local
summaries verbatim and re-summarizes only the remapped shards. Version 1
manifests (no locals) still load; they just can't seed a targeted
rebuild.

Every ``.ldmeb`` is the CRC-footer binary format of :mod:`repro.binaryio`
(corruption inside a file raises
:class:`~repro.errors.CorruptSummaryError` at read time). The manifest
additionally records each artifact's whole-file CRC32 and byte size, so
a *swapped or stale* file — internally consistent but not the one the
manifest described — is rejected before a replica ever serves from it.
All writes are atomic (temp + fsync + rename), manifest last, so a crash
mid-save leaves either no manifest or a manifest whose files all exist.

The manifest embeds :meth:`HashRing.to_dict`, making the directory fully
self-describing: ``serve-cluster --manifest DIR`` rebuilds the exact
node → shard routing the partitioner used, with no side channel.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..binaryio import read_summary_binary, write_summary_binary
from ..core.summary import Summarization
from ..errors import CorruptSummaryError
from ..ioutil import atomic_write, file_crc32
from .hashring import HashRing
from .partitioner import ShardedGraph
from .stitch import shard_serving_summary

__all__ = [
    "MANIFEST_NAME",
    "ShardEntry",
    "ShardManifest",
    "save_sharded",
    "load_manifest",
    "load_serving_summaries",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 2
SUPPORTED_VERSIONS = frozenset({1, 2})

PathLike = Union[str, "os.PathLike[str]"]


@dataclass
class ShardEntry:
    """One shard's serving artifact as the manifest records it."""

    shard_id: int
    path: str                         # relative to the manifest directory
    crc32: int
    size_bytes: int
    num_supernodes: int

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready form of this entry (what ``manifest.json`` stores)."""
        return {
            "shard_id": self.shard_id,
            "path": self.path,
            "crc32": self.crc32,
            "size_bytes": self.size_bytes,
            "num_supernodes": self.num_supernodes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardEntry":
        return cls(
            shard_id=int(data["shard_id"]),        # type: ignore[arg-type]
            path=str(data["path"]),
            crc32=int(data["crc32"]),              # type: ignore[arg-type]
            size_bytes=int(data["size_bytes"]),    # type: ignore[arg-type]
            num_supernodes=int(data["num_supernodes"]),  # type: ignore[arg-type]
        )


@dataclass
class ShardManifest:
    """Parsed ``manifest.json`` plus the directory it lives in."""

    directory: str
    ring: HashRing
    num_nodes: int
    num_edges: int
    algorithm: str
    global_path: str                  # relative, the stitched summary
    global_crc32: int
    entries: List[ShardEntry] = field(default_factory=list)
    local_entries: List[ShardEntry] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        return len(self.entries)

    @property
    def shard_ids(self) -> List[int]:
        return sorted(e.shard_id for e in self.entries)

    def entry(self, shard_id: int) -> ShardEntry:
        """The entry for one shard id (``KeyError`` if absent)."""
        for entry in self.entries:
            if entry.shard_id == shard_id:
                return entry
        raise KeyError(f"no shard {shard_id} in manifest")

    def shard_file(self, shard_id: int) -> str:
        """Absolute path of one shard's serving artifact."""
        return os.path.join(self.directory, self.entry(shard_id).path)

    @property
    def has_locals(self) -> bool:
        """Whether this manifest carries local-space summaries (v2)."""
        return bool(self.local_entries)

    def local_entry(self, shard_id: int) -> ShardEntry:
        """The local-space entry for one shard (``KeyError`` if absent)."""
        for entry in self.local_entries:
            if entry.shard_id == shard_id:
                return entry
        raise KeyError(f"no local summary for shard {shard_id} in manifest")

    def local_file(self, shard_id: int) -> str:
        """Absolute path of one shard's local-space summary."""
        return os.path.join(self.directory, self.local_entry(shard_id).path)

    def load_local(self, shard_id: int) -> Summarization:
        """Read one shard's local-space summary (CRC-checked)."""
        return read_summary_binary(self.local_file(shard_id))

    def global_file(self) -> str:
        """Absolute path of the stitched global summary."""
        return os.path.join(self.directory, self.global_path)

    # ------------------------------------------------------------------
    def verify_files(self) -> None:
        """Check every artifact's size and whole-file CRC32.

        Raises :class:`~repro.errors.CorruptSummaryError` on the first
        mismatch — a missing, truncated, or substituted file.
        """
        checks = [(self.global_path, self.global_crc32)] + [
            (e.path, e.crc32) for e in self.entries + self.local_entries
        ]
        for rel, expected in checks:
            path = os.path.join(self.directory, rel)
            if not os.path.exists(path):
                raise CorruptSummaryError(path, "listed in manifest, missing")
            actual = file_crc32(path)
            if actual != expected:
                raise CorruptSummaryError(
                    path,
                    f"manifest CRC mismatch (manifest {expected:#010x}, "
                    f"file {actual:#010x})",
                )

    def load_global(self) -> Summarization:
        """Read the stitched global summary (CRC-checked)."""
        return read_summary_binary(self.global_file())

    def load_shard(self, shard_id: int) -> Summarization:
        """Read one shard's serving summary (CRC-checked)."""
        return read_summary_binary(self.shard_file(shard_id))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the manifest (``manifest.json``'s body)."""
        return {
            "version": MANIFEST_VERSION,
            "ring": self.ring.to_dict(),
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "algorithm": self.algorithm,
            "global": {"path": self.global_path, "crc32": self.global_crc32},
            "shards": [e.to_dict() for e in sorted(
                self.entries, key=lambda e: e.shard_id)],
            "locals": [e.to_dict() for e in sorted(
                self.local_entries, key=lambda e: e.shard_id)],
        }


def save_sharded(
    stitched: Summarization,
    sharded: ShardedGraph,
    directory: PathLike,
    *,
    serving: Optional[Dict[int, Summarization]] = None,
    local_summaries: Optional[Dict[int, Summarization]] = None,
) -> ShardManifest:
    """Persist a stitched run as a manifest directory.

    Derives each shard's serving summary (unless precomputed ones are
    passed via ``serving``), writes all ``.ldmeb`` artifacts, then the
    manifest last. When ``local_summaries`` (shard id → local-space
    summary) is given, each one is persisted as ``local-<id>.ldmeb`` so
    the directory can seed a targeted re-shard later. Returns the
    in-memory :class:`ShardManifest`.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)

    global_rel = "global.ldmeb"
    global_abs = os.path.join(directory, global_rel)
    write_summary_binary(stitched, global_abs)

    entries: List[ShardEntry] = []
    for shard in sharded.shards:
        sid = shard.shard_id
        summary = (serving or {}).get(sid)
        if summary is None:
            summary = shard_serving_summary(stitched, sharded, sid)
        rel = f"shard-{sid}.ldmeb"
        path = os.path.join(directory, rel)
        size = write_summary_binary(summary, path)
        entries.append(ShardEntry(
            shard_id=sid,
            path=rel,
            crc32=file_crc32(path),
            size_bytes=size,
            num_supernodes=summary.num_supernodes,
        ))

    local_entries: List[ShardEntry] = []
    if local_summaries:
        missing = (
            {s.shard_id for s in sharded.shards} - set(local_summaries)
        )
        if missing:
            raise ValueError(
                f"local_summaries missing shards {sorted(missing)}"
            )
        for shard in sharded.shards:
            sid = shard.shard_id
            rel = f"local-{sid}.ldmeb"
            path = os.path.join(directory, rel)
            size = write_summary_binary(local_summaries[sid], path)
            local_entries.append(ShardEntry(
                shard_id=sid,
                path=rel,
                crc32=file_crc32(path),
                size_bytes=size,
                num_supernodes=local_summaries[sid].num_supernodes,
            ))

    manifest = ShardManifest(
        directory=directory,
        ring=sharded.ring,
        num_nodes=sharded.num_nodes,
        num_edges=sharded.num_edges,
        algorithm=stitched.algorithm,
        global_path=global_rel,
        global_crc32=file_crc32(global_abs),
        entries=entries,
        local_entries=local_entries,
    )
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with atomic_write(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest


def load_manifest(directory: PathLike, *, verify: bool = True) -> ShardManifest:
    """Parse ``manifest.json`` from a directory (or a direct file path).

    With ``verify=True`` (default) every listed artifact's size/CRC is
    checked up front, so a cluster never boots on a silently damaged
    shard set.
    """
    directory = os.fspath(directory)
    path = (
        directory if directory.endswith(".json")
        else os.path.join(directory, MANIFEST_NAME)
    )
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    version = int(data.get("version", 0))
    if version not in SUPPORTED_VERSIONS:
        raise CorruptSummaryError(path, f"unsupported manifest version {version}")
    manifest = ShardManifest(
        directory=os.path.dirname(path) or ".",
        ring=HashRing.from_dict(data["ring"]),
        num_nodes=int(data["num_nodes"]),
        num_edges=int(data["num_edges"]),
        algorithm=str(data.get("algorithm", "")),
        global_path=str(data["global"]["path"]),
        global_crc32=int(data["global"]["crc32"]),
        entries=[ShardEntry.from_dict(doc) for doc in data["shards"]],
        local_entries=[
            ShardEntry.from_dict(doc) for doc in data.get("locals", [])
        ],
    )
    ring_shards = set(manifest.ring.shards)
    entry_shards = set(manifest.shard_ids)
    if ring_shards != entry_shards:
        raise CorruptSummaryError(
            path,
            f"ring shards {sorted(ring_shards)} != "
            f"manifest shards {sorted(entry_shards)}",
        )
    if manifest.local_entries:
        local_shards = {e.shard_id for e in manifest.local_entries}
        if local_shards != entry_shards:
            raise CorruptSummaryError(
                path,
                f"local summary shards {sorted(local_shards)} != "
                f"manifest shards {sorted(entry_shards)}",
            )
    if verify:
        manifest.verify_files()
    return manifest


def load_serving_summaries(
    manifest: ShardManifest,
) -> Dict[int, Summarization]:
    """All per-shard serving summaries, keyed by shard id."""
    return {sid: manifest.load_shard(sid) for sid in manifest.shard_ids}
