"""Per-shard summarization driver: partition → K×LDME → stitch → save.

:func:`summarize_sharded` is the one-call pipeline behind the
``shard-summarize`` CLI command. It reuses the existing single-graph
machinery unchanged per shard:

* the plain :class:`~repro.core.ldme.LDME` driver (or the supervised
  :class:`~repro.distributed.MultiprocessLDME` worker pool when
  ``num_workers > 1``), honouring the ``kernels=`` backend knob;
* :func:`repro.resilience.run_resumable` checkpointing when a
  ``checkpoint_dir`` is given — each shard checkpoints into its own
  subdirectory, so a crash resumes mid-shard, not from shard 0;
* :mod:`repro.obs` spans (``shard_run`` parent, one ``shard_summarize``
  child per shard keyed by shard id — deterministic, so the golden-trace
  machinery applies).

Shard ``s`` runs with ``seed + s`` so shards decorrelate but the whole
run stays reproducible from one seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from ..core.base import BaseSummarizer
from ..core.ldme import LDME
from ..core.summary import Summarization
from ..graph.graph import Graph
from ..obs import trace as obs_trace
from .hashring import HashRing
from .manifest import ShardManifest, save_sharded
from .partitioner import ShardedGraph, partition_graph
from .stitch import StitchReport, stitch_shards

__all__ = ["ShardSummaryResult", "summarize_sharded"]

AlgoFactory = Callable[[int], BaseSummarizer]


@dataclass
class ShardSummaryResult:
    """Everything one sharded run produces."""

    sharded: ShardedGraph
    summaries: Dict[int, Summarization]   # shard id -> local-space summary
    report: StitchReport                  # stitched global summary + audit
    manifest: Optional[ShardManifest] = None

    @property
    def summary(self) -> Summarization:
        """The stitched global summary."""
        return self.report.summary


def _default_factory(
    k: int,
    iterations: int,
    seed: int,
    kernels: str,
    num_workers: int,
    shared_memory: str = "auto",
) -> AlgoFactory:
    def make(shard_id: int) -> BaseSummarizer:
        if num_workers > 1:
            from ..distributed import MultiprocessLDME

            return MultiprocessLDME(
                num_workers=num_workers,
                k=k, iterations=iterations,
                seed=seed + shard_id, kernels=kernels,
                shared_memory=shared_memory,
            )
        return LDME(
            k=k, iterations=iterations,
            seed=seed + shard_id, kernels=kernels,
        )

    return make


def summarize_sharded(
    graph: Graph,
    shards: Union[int, HashRing] = 4,
    *,
    k: int = 5,
    iterations: int = 20,
    seed: int = 0,
    kernels: str = "numpy",
    num_workers: int = 1,
    shared_memory: str = "auto",
    virtual_nodes: int = 64,
    algo_factory: Optional[AlgoFactory] = None,
    checkpoint_dir: Optional[str] = None,
    out_dir: Optional[str] = None,
    validate: bool = True,
) -> ShardSummaryResult:
    """Summarize ``graph`` as K independent shards and stitch the result.

    Parameters
    ----------
    shards:
        Shard count (ring over ``0..K-1``) or a prebuilt
        :class:`HashRing` (e.g. from a manifest, for re-shard runs).
    shared_memory:
        Zero-copy transport knob forwarded to
        :class:`MultiprocessLDME` when ``num_workers > 1`` — each shard
        gets its own :class:`~repro.kernels.shm.SharedGraphArena` over
        its local CSR (``"auto"``/``"on"``/``"off"``). Ignored for the
        serial per-shard driver.
    algo_factory:
        ``shard_id -> BaseSummarizer`` override; the default builds
        :class:`LDME` (or :class:`MultiprocessLDME` when
        ``num_workers > 1``) with ``seed + shard_id``.
    checkpoint_dir:
        Enables :func:`~repro.resilience.run_resumable` per shard, each
        shard under ``<dir>/shard-<id>/``.
    out_dir:
        When given, persist the manifest directory (global + per-shard
        serving artifacts) via :func:`~repro.shard.manifest.save_sharded`.
    validate:
        Run partition-coverage checks and the full losslessness proof on
        the stitched summary (cheap relative to summarization; leave on).
    """
    ring = shards if isinstance(shards, HashRing) else HashRing(
        shards, virtual_nodes=virtual_nodes, seed=seed
    )
    factory = algo_factory or _default_factory(
        k, iterations, seed, kernels, num_workers, shared_memory
    )

    with obs_trace.span(
        "shard_run", key=ring.num_shards,
        shards=ring.num_shards, nodes=graph.num_nodes,
        edges=graph.num_edges,
    ):
        sharded = partition_graph(graph, ring)
        summaries: Dict[int, Summarization] = {}
        for shard in sharded.shards:
            algo = factory(shard.shard_id)
            with obs_trace.span(
                "shard_summarize", key=shard.shard_id,
                shard=shard.shard_id,
                nodes=shard.num_nodes,
                edges=shard.local_graph.num_edges,
            ):
                if checkpoint_dir is not None:
                    from ..resilience import run_resumable

                    summaries[shard.shard_id] = run_resumable(
                        algo,
                        shard.local_graph,
                        os.path.join(
                            checkpoint_dir, f"shard-{shard.shard_id}"
                        ),
                    )
                else:
                    summaries[shard.shard_id] = algo.summarize(
                        shard.local_graph
                    )

        report = stitch_shards(
            sharded, summaries,
            graph=graph if validate else None,
            validate=validate,
        )

    manifest = None
    if out_dir is not None:
        # Persist the local-space summaries too (manifest v2), so the
        # directory can seed a targeted re-shard via repro.shard.migrate.
        manifest = save_sharded(
            report.summary, sharded, out_dir, local_summaries=summaries
        )
    return ShardSummaryResult(
        sharded=sharded,
        summaries=summaries,
        report=report,
        manifest=manifest,
    )
