"""Elastic re-sharding: live ring membership changes (``repro.shard.migrate``).

The :class:`~repro.shard.hashring.HashRing` remaps only a small fraction
of keys when a shard joins or leaves — this module is where that
property finally pays off. A migration turns a ring membership change
into the *minimal* rebuild plus a crash-safe live cutover:

1. :func:`plan_migration` diffs the per-key assignments of the old and
   new rings and names exactly the remapped vertices, the affected cut
   edges, and the shards whose node sets change. Every other shard's
   local-space summary is reusable verbatim (same node set ⇒ same
   induced subgraph ⇒ same summary).
2. :class:`MigrationCoordinator` re-summarizes only the affected shards
   (checkpointed via :func:`~repro.resilience.run_resumable`), re-stitches,
   and writes a new manifest *generation* side by side with the old one
   under a :class:`GenerationStore` — the old generation keeps serving
   untouched.
3. Cutover is two-phase against :class:`~repro.serve.cluster.SummaryCluster`:
   *prepare* loads and validates the new artifacts on fresh replicas,
   *commit* atomically flips routing to the new ring epoch (propagated to
   clients through the ``ping`` health payload). Any prepare/commit
   failure rolls back all-or-nothing to the old generation.

Every step transition is persisted first to a CRC-checked journal
(``migration.json``), so a coordinator SIGKILLed at *any* point either
resumes forward or rolls back deterministically — the cluster is never
left half-cut-over. :class:`IngestService <repro.ingest.service.IngestService>`
events applied during the build are buffered and replayed onto the new
generation before commit (see :meth:`MigrationCoordinator._catch_up`).

See ``docs/sharding.md`` ("Growing and shrinking the ring") for the
journal state machine and rollback semantics.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import CorruptSummaryError
from ..graph.graph import Graph
from ..ioutil import atomic_write
from ..obs import metrics as obs_metrics
from ..obs.metrics import MetricsRegistry
from .driver import AlgoFactory, _default_factory, summarize_sharded
from .hashring import HashRing
from .manifest import ShardManifest, load_manifest, save_sharded
from .partitioner import ShardedGraph, partition_graph
from .stitch import stitch_shards

__all__ = [
    "JOURNAL_STEPS",
    "MIGRATION_PHASES",
    "CoordinatorKilledError",
    "MigrationPlan",
    "plan_migration",
    "MigrationJournal",
    "GenerationStore",
    "MigrationReport",
    "MigrationCoordinator",
]

#: Journal steps in execution order. ``aborted`` is the rollback terminal.
JOURNAL_STEPS = ("plan", "build", "built", "prepare", "commit", "done")
MIGRATION_PHASES = JOURNAL_STEPS + ("aborted",)

_GEN_RE = re.compile(r"^gen-(\d{6})$")
_JOURNAL_NAME = "migration.json"
_CURRENT_NAME = "CURRENT"

PathLike = Union[str, "os.PathLike[str]"]


class CoordinatorKilledError(RuntimeError):
    """Raised by a fault hook to simulate the coordinator dying mid-step.

    The coordinator never catches it — it propagates like a SIGKILL
    would, leaving whatever the journal last recorded. A later
    :meth:`MigrationCoordinator.resume` picks up from there.
    """


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass
class MigrationPlan:
    """What a ring membership change actually invalidates."""

    old_ring: HashRing
    new_ring: HashRing
    num_nodes: int
    remapped: np.ndarray              # vertex ids whose owner changed
    rebuild_shards: List[int]         # new-ring shards that must re-summarize
    reused_shards: List[int]          # new-ring shards reusable verbatim
    added_shards: List[int]
    removed_shards: List[int]
    affected_cut_edges: Optional[int] = None  # edges w/ a remapped endpoint

    @property
    def num_remapped(self) -> int:
        return int(self.remapped.size)

    @property
    def is_empty(self) -> bool:
        """True when nothing moved (e.g. add-then-remove round trip)."""
        return self.num_remapped == 0 and (
            set(self.old_ring.shards) == set(self.new_ring.shards)
        )

    @property
    def fraction_remapped(self) -> float:
        return self.num_remapped / self.num_nodes if self.num_nodes else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-safe digest (what the journal and CLI print)."""
        return {
            "num_nodes": self.num_nodes,
            "num_remapped": self.num_remapped,
            "fraction_remapped": self.fraction_remapped,
            "rebuild_shards": list(self.rebuild_shards),
            "reused_shards": list(self.reused_shards),
            "added_shards": list(self.added_shards),
            "removed_shards": list(self.removed_shards),
            "affected_cut_edges": self.affected_cut_edges,
        }


def plan_migration(
    old_ring: HashRing,
    new_ring: HashRing,
    partition: Union[int, Graph, ShardedGraph],
) -> MigrationPlan:
    """Diff two rings over a key universe into a minimal rebuild plan.

    ``partition`` is the key universe: a node count, a :class:`Graph`
    (also yields the affected cut-edge count), or an existing
    :class:`ShardedGraph`. A shard must rebuild iff its node set changes
    — it gained a remapped vertex or lost one; every other shard of the
    new ring keeps an identical induced subgraph, so its local-space
    summary is reusable verbatim.
    """
    graph: Optional[Graph] = None
    if isinstance(partition, ShardedGraph):
        num_nodes = partition.num_nodes
    elif isinstance(partition, Graph):
        num_nodes = partition.num_nodes
        graph = partition
    else:
        num_nodes = int(partition)
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")

    old_assign = old_ring.assign_range(num_nodes)
    new_assign = new_ring.assign_range(num_nodes)
    moved = old_assign != new_assign
    remapped = np.flatnonzero(moved).astype(np.int64)

    new_shards = set(new_ring.shards)
    donors = set(np.unique(old_assign[remapped]).tolist())
    receivers = set(np.unique(new_assign[remapped]).tolist())
    rebuild = sorted((donors | receivers) & new_shards)
    reused = [s for s in new_ring.shards if s not in rebuild]

    affected_cut_edges: Optional[int] = None
    if graph is not None and graph.num_edges:
        src, dst = graph.edge_arrays()
        affected_cut_edges = int((moved[src] | moved[dst]).sum())
    elif graph is not None:
        affected_cut_edges = 0

    return MigrationPlan(
        old_ring=old_ring,
        new_ring=new_ring,
        num_nodes=num_nodes,
        remapped=remapped,
        rebuild_shards=rebuild,
        reused_shards=reused,
        added_shards=sorted(new_shards - set(old_ring.shards)),
        removed_shards=sorted(set(old_ring.shards) - new_shards),
        affected_cut_edges=affected_cut_edges,
    )


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
@dataclass
class MigrationJournal:
    """One migration's durable state, persisted CRC-checked + atomic.

    The invariant the coordinator maintains: ``step`` is written (fsync +
    rename) *before* that step's side effects begin, so a crash leaves a
    journal naming exactly the step in flight. Every step's work is
    idempotent, which makes replaying it on resume safe.
    """

    step: str
    old_generation: str
    new_generation: str
    old_ring: Dict[str, object]
    new_ring: Dict[str, object]
    num_remapped: int = 0
    rebuild_shards: List[int] = field(default_factory=list)
    reused_shards: List[int] = field(default_factory=list)
    error: str = ""

    @property
    def active(self) -> bool:
        return self.step not in ("done", "aborted")

    def to_dict(self) -> Dict[str, object]:
        """Return the journal as a JSON-serializable dict."""
        return {
            "step": self.step,
            "old_generation": self.old_generation,
            "new_generation": self.new_generation,
            "old_ring": self.old_ring,
            "new_ring": self.new_ring,
            "num_remapped": self.num_remapped,
            "rebuild_shards": list(self.rebuild_shards),
            "reused_shards": list(self.reused_shards),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MigrationJournal":
        return cls(
            step=str(data["step"]),
            old_generation=str(data["old_generation"]),
            new_generation=str(data["new_generation"]),
            old_ring=dict(data["old_ring"]),
            new_ring=dict(data["new_ring"]),
            num_remapped=int(data.get("num_remapped", 0)),
            rebuild_shards=[int(s) for s in data.get("rebuild_shards", [])],
            reused_shards=[int(s) for s in data.get("reused_shards", [])],
            error=str(data.get("error", "")),
        )


def _journal_payload_crc(payload: Dict[str, object]) -> int:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# generation store
# ----------------------------------------------------------------------
class GenerationStore:
    """Side-by-side manifest generations plus the migration journal.

    Layout under ``root``::

        gen-000000/          a full manifest directory (v2, with locals)
        gen-000001/          the next generation, built during migration
        CURRENT              name of the serving generation (atomic write)
        migration.json       CRC-checked migration journal
        checkpoints/         per-generation shard checkpoint trees

    The ``CURRENT`` pointer is the durable commit point: flipping it is
    one atomic rename, so readers see the old generation or the new one,
    never a mix.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    # -- generations ---------------------------------------------------
    def path(self, generation: str) -> str:
        """Absolute path of ``generation``'s manifest directory."""
        return os.path.join(self.root, generation)

    def generations(self) -> List[str]:
        """Sorted names of every generation directory on disk."""
        names = []
        for name in os.listdir(self.root):
            if _GEN_RE.match(name) and os.path.isdir(self.path(name)):
                names.append(name)
        return sorted(names)

    def next_generation(self) -> str:
        """Name of the next unused generation (``gen-%06d``)."""
        indices = [int(_GEN_RE.match(g).group(1)) for g in self.generations()]
        return f"gen-{(max(indices) + 1 if indices else 0):06d}"

    def current(self) -> Optional[str]:
        """Name of the serving generation, or ``None`` before bootstrap."""
        path = os.path.join(self.root, _CURRENT_NAME)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            name = fh.read().strip()
        return name or None

    def current_dir(self) -> str:
        """Manifest directory of the serving generation (raises if none)."""
        current = self.current()
        if current is None:
            raise RuntimeError(f"generation store {self.root} has no CURRENT")
        return self.path(current)

    def current_manifest(self, *, verify: bool = True) -> ShardManifest:
        """Load the serving generation's :class:`ShardManifest`."""
        return load_manifest(self.current_dir(), verify=verify)

    def set_current(self, generation: str) -> None:
        """Atomically flip the serving pointer to ``generation``."""
        manifest_path = os.path.join(self.path(generation), "manifest.json")
        if not os.path.exists(manifest_path):
            raise ValueError(f"{generation} has no manifest; refusing to flip")
        dest = os.path.join(self.root, _CURRENT_NAME)
        with atomic_write(dest, "w", encoding="utf-8") as fh:
            fh.write(generation + "\n")

    def remove_generation(self, generation: str) -> None:
        """Delete a non-serving generation directory (and its checkpoints)."""
        if generation == self.current():
            raise ValueError(f"refusing to remove serving generation {generation}")
        shutil.rmtree(self.path(generation), ignore_errors=True)

    def checkpoint_dir(self, generation: str) -> str:
        """Per-generation shard checkpoint tree (for warm-started rebuilds)."""
        return os.path.join(self.root, "checkpoints", generation)

    def bootstrap(
        self,
        graph: Graph,
        shards: Union[int, HashRing] = 2,
        *,
        virtual_nodes: int = 1,
        **kwargs: Any,
    ) -> ShardManifest:
        """Summarize ``graph`` into ``gen-000000`` and point CURRENT at it.

        Defaults to one virtual node per shard: a single ring point per
        shard means a later expansion splits exactly one arc, keeping the
        targeted rebuild minimal. Pass a prebuilt ring to override.
        """
        if self.current() is not None:
            raise RuntimeError(f"store {self.root} already bootstrapped")
        generation = self.next_generation()
        result = summarize_sharded(
            graph, shards,
            virtual_nodes=virtual_nodes,
            out_dir=self.path(generation),
            **kwargs,
        )
        self.set_current(generation)
        return result.manifest

    # -- journal -------------------------------------------------------
    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, _JOURNAL_NAME)

    def write_journal(self, journal: MigrationJournal) -> None:
        """Atomically persist the journal in its CRC32 envelope."""
        payload = journal.to_dict()
        doc = {"crc32": _journal_payload_crc(payload), "journal": payload}
        with atomic_write(self.journal_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def read_journal(self) -> Optional[MigrationJournal]:
        """Load and CRC-verify the journal; ``None`` when none exists."""
        path = self.journal_path
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        payload = doc.get("journal")
        if payload is None or "crc32" not in doc:
            raise CorruptSummaryError(path, "journal missing crc32 envelope")
        actual = _journal_payload_crc(payload)
        expected = int(doc["crc32"])
        if actual != expected:
            raise CorruptSummaryError(
                path,
                f"journal CRC mismatch (stored {expected:#010x}, "
                f"computed {actual:#010x})",
            )
        return MigrationJournal.from_dict(payload)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
@dataclass
class MigrationReport:
    """What one :class:`MigrationCoordinator` run did."""

    old_generation: Optional[str] = None
    new_generation: Optional[str] = None
    plan: Optional[MigrationPlan] = None
    resummarized_shards: List[int] = field(default_factory=list)
    reused_shards: List[int] = field(default_factory=list)
    replayed_events: int = 0
    committed: bool = False
    rolled_back: bool = False
    error: str = ""


class MigrationCoordinator:
    """Drives one ring membership change end to end, journal first.

    Parameters
    ----------
    store:
        The :class:`GenerationStore` holding the serving generation.
    cluster:
        Optional live :class:`~repro.serve.cluster.SummaryCluster` to cut
        over (prepare → commit with all-or-nothing rollback). Without a
        cluster the migration is storage-only: the ``CURRENT`` pointer
        flip is still the durable commit.
    ingest:
        Optional :class:`~repro.ingest.service.IngestService`. Its
        migration buffer is opened for the duration of the run and
        replayed onto the new generation before commit.
    on_step:
        Fault hook called with each journal step right after it is
        persisted and before its side effects run. Raising
        :class:`CoordinatorKilledError` simulates a SIGKILL at exactly
        that point (see :class:`~repro.resilience.faults.MigrationFault`).
    """

    def __init__(
        self,
        store: GenerationStore,
        *,
        cluster: Optional[Any] = None,
        ingest: Optional[Any] = None,
        k: int = 5,
        iterations: int = 20,
        seed: int = 0,
        kernels: str = "numpy",
        algo_factory: Optional[AlgoFactory] = None,
        validate: bool = True,
        on_step: Optional[Callable[[str], None]] = None,
        registry: Optional[MetricsRegistry] = None,
        catch_up_rounds: int = 5,
    ) -> None:
        self.store = store
        self.cluster = cluster
        self.ingest = ingest
        self.validate = validate
        self.on_step = on_step
        self.catch_up_rounds = catch_up_rounds
        self.algo_factory = algo_factory or _default_factory(
            k, iterations, seed, kernels, num_workers=1
        )
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.current_step: str = ""   # live view for loadgen phase bucketing
        # Zero-register every row so dashboards see series before the
        # first migration ever runs (same pattern as IngestService).
        for phase in MIGRATION_PHASES:
            self._set_gauge("migration_state", 0, phase=phase)
        self._set_gauge("migration_remapped_vertices", 0)
        self._set_gauge("cluster_ring_epoch", 0)
        self._inc("migration_rollback_total", 0)

    # -- metrics plumbing ----------------------------------------------
    def _inc(self, name: str, amount: float = 1) -> None:
        self.metrics.inc(name, amount)
        obs_metrics.inc(name, amount)

    def _set_gauge(
        self, name: str, value: float, *, phase: Optional[str] = None,
    ) -> None:
        labels = {"phase": phase} if phase is not None else None
        self.metrics.set_gauge(name, value, labels=labels)
        obs_metrics.set_gauge(name, value, labels=labels)

    def _set_phase(self, step: str) -> None:
        self.current_step = step
        for phase in MIGRATION_PHASES:
            self._set_gauge(
                "migration_state", 1 if phase == step else 0, phase=phase
            )

    # -- journal transitions -------------------------------------------
    def _advance(self, journal: MigrationJournal, step: str) -> None:
        """Persist the transition, then expose the kill window."""
        journal.step = step
        self.store.write_journal(journal)
        self._set_phase(step)
        if self.on_step is not None:
            self.on_step(step)

    # -- public entry points -------------------------------------------
    def migrate(self, new_ring: HashRing, graph: Graph) -> MigrationReport:
        """Run a fresh migration of the store onto ``new_ring``."""
        existing = self.store.read_journal()
        if existing is not None and existing.active:
            raise RuntimeError(
                f"migration already in progress (step {existing.step!r}); "
                "resume() or abort() it first"
            )
        old_generation = self.store.current()
        if old_generation is None:
            raise RuntimeError("generation store has no serving generation")
        old_manifest = self.store.current_manifest(verify=False)
        plan = plan_migration(old_manifest.ring, new_ring, graph)
        self._set_gauge("migration_remapped_vertices", plan.num_remapped)
        if plan.is_empty:
            return MigrationReport(
                old_generation=old_generation,
                plan=plan,
                reused_shards=list(plan.reused_shards),
                committed=True,
            )
        journal = MigrationJournal(
            step="plan",
            old_generation=old_generation,
            new_generation=self.store.next_generation(),
            old_ring=old_manifest.ring.to_dict(),
            new_ring=new_ring.to_dict(),
            num_remapped=plan.num_remapped,
            rebuild_shards=list(plan.rebuild_shards),
            reused_shards=list(plan.reused_shards),
        )
        if self.ingest is not None:
            self.ingest.begin_migration()
        self._advance(journal, "plan")
        return self._run(journal, plan, graph)

    def resume(self, graph: Graph) -> MigrationReport:
        """Continue (or finish) whatever the journal says was in flight."""
        journal = self.store.read_journal()
        if journal is None:
            raise RuntimeError("no migration journal to resume from")
        if not journal.active:
            # Killed after the terminal transition: nothing left to do.
            return MigrationReport(
                old_generation=journal.old_generation,
                new_generation=journal.new_generation,
                committed=journal.step == "done",
                rolled_back=journal.step == "aborted",
                error=journal.error,
            )
        old_ring = HashRing.from_dict(journal.old_ring)
        new_ring = HashRing.from_dict(journal.new_ring)
        plan = plan_migration(old_ring, new_ring, graph)
        self._set_gauge("migration_remapped_vertices", plan.num_remapped)
        if self.ingest is not None:
            self.ingest.begin_migration()

        if (
            journal.step == "commit"
            and self.store.current() == journal.new_generation
        ):
            # The durable commit already happened; only finalization is
            # missing. _run's commit step is idempotent and will detect
            # this, so just fall through.
            pass
        elif journal.step in ("built", "prepare", "commit"):
            # Artifacts were supposedly complete — trust but verify. A
            # torn build (or corrupted file) sends us back to "build".
            try:
                load_manifest(
                    self.store.path(journal.new_generation), verify=True
                )
            except (OSError, CorruptSummaryError, ValueError):
                journal.step = "build"
                self.store.write_journal(journal)
        self._set_phase(journal.step)
        return self._run(journal, plan, graph)

    def abort(self) -> MigrationReport:
        """Roll the active migration back to the old generation."""
        journal = self.store.read_journal()
        if journal is None or not journal.active:
            raise RuntimeError("no active migration to abort")
        report = MigrationReport(
            old_generation=journal.old_generation,
            new_generation=journal.new_generation,
        )
        return self._rollback(journal, report, RuntimeError("aborted by operator"))

    # -- the state machine ---------------------------------------------
    def _run(
        self,
        journal: MigrationJournal,
        plan: MigrationPlan,
        graph: Graph,
    ) -> MigrationReport:
        report = MigrationReport(
            old_generation=journal.old_generation,
            new_generation=journal.new_generation,
            plan=plan,
        )
        if journal.step == "plan":
            self._advance(journal, "build")
        if journal.step == "build":
            self._build(journal, plan, graph, report)
            self._advance(journal, "built")
        if journal.step == "built":
            self._advance(journal, "prepare")
        if journal.step == "prepare":
            try:
                graph = self._prepare(journal, plan, graph, report)
            except CoordinatorKilledError:
                raise
            except Exception as exc:
                return self._rollback(journal, report, exc)
            self._advance(journal, "commit")
        if journal.step == "commit":
            try:
                self._commit(journal)
            except CoordinatorKilledError:
                raise
            except Exception as exc:
                return self._rollback(journal, report, exc)
            self._advance(journal, "done")
        report.committed = True
        if self.ingest is not None:
            self.ingest.end_migration()
        shutil.rmtree(
            self.store.checkpoint_dir(journal.new_generation),
            ignore_errors=True,
        )
        return report

    def _build(
        self,
        journal: MigrationJournal,
        plan: MigrationPlan,
        graph: Graph,
        report: MigrationReport,
    ) -> None:
        """Targeted rebuild: re-summarize only the shards the plan names."""
        old_manifest = load_manifest(
            self.store.path(journal.old_generation), verify=False
        )
        new_ring = HashRing.from_dict(journal.new_ring)
        sharded = partition_graph(graph, new_ring)
        reusable = set(plan.reused_shards) if old_manifest.has_locals else set()
        summaries, resummarized, reused = self._summarize_shards(
            journal, sharded, reusable, old_manifest
        )
        report.resummarized_shards = resummarized
        report.reused_shards = reused
        self._save_generation(journal, sharded, summaries, graph)

    def _summarize_shards(
        self,
        journal: MigrationJournal,
        sharded: ShardedGraph,
        reusable: set,
        source_manifest: Optional[ShardManifest],
    ) -> Tuple[Dict[int, Any], List[int], List[int]]:
        from ..resilience import run_resumable

        summaries: Dict[int, Any] = {}
        resummarized: List[int] = []
        reused: List[int] = []
        for shard in sharded.shards:
            sid = shard.shard_id
            if sid in reusable and source_manifest is not None:
                candidate = source_manifest.load_local(sid)
                if candidate.num_nodes == shard.num_nodes:
                    summaries[sid] = candidate
                    reused.append(sid)
                    continue
                # Defensive: the plan said this shard was untouched but
                # its node count changed — fall through and rebuild.
            algo = self.algo_factory(sid)
            checkpoint = os.path.join(
                self.store.checkpoint_dir(journal.new_generation),
                f"shard-{sid}",
            )
            summaries[sid] = run_resumable(algo, shard.local_graph, checkpoint)
            resummarized.append(sid)
        return summaries, resummarized, reused

    def _save_generation(
        self,
        journal: MigrationJournal,
        sharded: ShardedGraph,
        summaries: Dict[int, Any],
        graph: Graph,
    ) -> ShardManifest:
        stitch = stitch_shards(
            sharded, summaries,
            graph=graph if self.validate else None,
            validate=self.validate,
        )
        return save_sharded(
            stitch.summary, sharded,
            self.store.path(journal.new_generation),
            local_summaries=summaries,
        )

    def _prepare(
        self,
        journal: MigrationJournal,
        plan: MigrationPlan,
        graph: Graph,
        report: MigrationReport,
    ) -> Graph:
        graph = self._catch_up(journal, graph, report)
        manifest = load_manifest(
            self.store.path(journal.new_generation), verify=True
        )
        if self.cluster is not None and self.cluster.ring != manifest.ring:
            self.cluster.prepare_generation(manifest)
        return graph

    def _catch_up(
        self,
        journal: MigrationJournal,
        graph: Graph,
        report: MigrationReport,
    ) -> Graph:
        """Replay ingest events buffered during the build onto the new
        generation, so acknowledged writes are in the artifacts we cut
        over to. Events that land after the last round stay in the WAL
        and reach serving through the normal hot-swap path post-commit.
        """
        if self.ingest is None:
            return graph
        new_ring = HashRing.from_dict(journal.new_ring)
        for _ in range(self.catch_up_rounds):
            events = self.ingest.take_migration_events()
            if not events:
                break
            applied, graph = _apply_events(graph, events)
            report.replayed_events += applied
            if not applied:
                continue
            touched = set()
            for _seq, _op, u, v in events:
                if 0 <= u < graph.num_nodes:
                    touched.add(new_ring.shard_of(u))
                if 0 <= v < graph.num_nodes:
                    touched.add(new_ring.shard_of(v))
            sharded = partition_graph(graph, new_ring)
            manifest = load_manifest(
                self.store.path(journal.new_generation), verify=False
            )
            reusable = {
                s.shard_id for s in sharded.shards
                if s.shard_id not in touched
            }
            summaries, resummarized, _ = self._summarize_shards(
                journal, sharded, reusable, manifest
            )
            report.resummarized_shards = sorted(
                set(report.resummarized_shards) | set(resummarized)
            )
            report.reused_shards = [
                s for s in report.reused_shards if s not in set(resummarized)
            ]
            self._save_generation(journal, sharded, summaries, graph)
        return graph

    def _commit(self, journal: MigrationJournal) -> None:
        if self.cluster is not None and self.cluster.staged_generation is not None:
            self.cluster.commit_generation()
        if self.cluster is not None:
            self._set_gauge("cluster_ring_epoch", self.cluster.epoch)
        if self.store.current() != journal.new_generation:
            self.store.set_current(journal.new_generation)

    def _rollback(
        self,
        journal: MigrationJournal,
        report: MigrationReport,
        exc: Exception,
    ) -> MigrationReport:
        """All-or-nothing: tear down anything staged, keep the old
        generation serving, record the abort durably."""
        if self.cluster is not None:
            self.cluster.abort_generation()
        if self.ingest is not None:
            self.ingest.end_migration()
        if self.store.current() != journal.new_generation:
            self.store.remove_generation(journal.new_generation)
            shutil.rmtree(
                self.store.checkpoint_dir(journal.new_generation),
                ignore_errors=True,
            )
        journal.error = f"{type(exc).__name__}: {exc}"
        journal.step = "aborted"
        self.store.write_journal(journal)
        self._set_phase("aborted")
        self._inc("migration_rollback_total")
        report.rolled_back = True
        report.error = journal.error
        return report


def _apply_events(
    graph: Graph, events: Sequence[Tuple[int, str, int, int]],
) -> Tuple[int, Graph]:
    """Apply buffered ingest events to a graph; returns (applied, graph)."""
    edges = {(u, v) if u < v else (v, u) for u, v in graph.edges()}
    applied = 0
    for _seq, op, u, v in events:
        if u == v or not (0 <= u < graph.num_nodes) or not (0 <= v < graph.num_nodes):
            continue
        pair = (u, v) if u < v else (v, u)
        if op in ("+", "insert") and pair not in edges:
            edges.add(pair)
            applied += 1
        elif op in ("-", "delete") and pair in edges:
            edges.discard(pair)
            applied += 1
    if not applied:
        return 0, graph
    return applied, Graph.from_edges(graph.num_nodes, sorted(edges))
