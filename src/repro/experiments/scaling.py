"""Scalability experiment: LDME running time vs. graph size.

The paper's headline scalability statement is that LDME summarizes a
billion-edge graph on one machine. At reproduction scale the checkable
analogue is the growth *rate*: total time should grow near-linearly in
``|E|`` for fixed ``k`` and ``T`` (divide is linear, merging is bounded by
small groups, encoding is a sort).
"""

from __future__ import annotations

from typing import Sequence

from ..core.ldme import LDME
from ..graph.generators import web_host_graph
from .reporting import ExperimentResult

__all__ = ["run_scaling_curve"]


def run_scaling_curve(
    host_counts: Sequence[int] = (20, 40, 80, 160),
    host_size: int = 30,
    k: int = 5,
    iterations: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Time LDME across a family of growing web-like graphs."""
    result = ExperimentResult(
        experiment="scaling",
        title="LDME running time vs. graph size (fixed k, T)",
    )
    for hosts in host_counts:
        graph = web_host_graph(
            num_hosts=hosts, host_size=host_size, seed=seed
        )
        summary = LDME(k=k, iterations=iterations, seed=seed).summarize(graph)
        result.rows.append(
            {
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "total_s": summary.stats.total_seconds,
                "divide_merge_s": summary.stats.divide_merge_seconds,
                "encode_s": summary.stats.encode_seconds,
                "compression": summary.compression,
                "us_per_edge": 1e6 * summary.stats.total_seconds
                / max(1, graph.num_edges),
            }
        )
    result.notes.append(
        "Expected shape: microseconds-per-edge stays roughly flat as the "
        "graph grows (near-linear total time)."
    )
    return result
