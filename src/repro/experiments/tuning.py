"""Tuning-curve experiment: the k compression/time trade-off.

Section 3's "Tuning the performance" argues k trades compression for
running time; Figures 2-4 show its endpoints (k=5, k=20). This harness
traces the whole curve — the view a practitioner choosing k would want.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.ldme import LDME
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_tuning_curve"]


def run_tuning_curve(
    dataset_names: Sequence[str] = ("CN",),
    k_values: Sequence[int] = (2, 5, 10, 15, 20),
    iterations: int = 10,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
) -> ExperimentResult:
    """Compression and phase times for a sweep of ``k`` values."""
    result = ExperimentResult(
        experiment="tuning",
        title="k trade-off curve: compression vs. running time",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        for k in k_values:
            summary = LDME(k=k, iterations=iterations, seed=seed).summarize(graph)
            max_group = max(
                (it.max_group_size for it in summary.stats.iterations),
                default=0,
            )
            result.rows.append(
                {
                    "graph": name,
                    "k": k,
                    "compression": summary.compression,
                    "total_s": summary.stats.total_seconds,
                    "divide_merge_s": summary.stats.divide_merge_seconds,
                    "max_group_size": max_group,
                    "supernodes": summary.num_supernodes,
                }
            )
    result.notes.append(
        "Expected shape: compression decreases and merge time shrinks as k "
        "grows; the practitioner picks the knee of the curve."
    )
    return result
