"""Lossy trade-off experiment: objective vs. ε.

The framework's lossy mode (Eq. 2) is orthogonal to LDME's contributions
but part of the problem statement; this harness traces how much extra
compactness each error budget buys, verifying the bound at every point.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.drop import verify_error_bound
from ..core.ldme import LDME
from ..core.reconstruct import reconstruction_error
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_lossy_curve"]


def run_lossy_curve(
    dataset_names: Sequence[str] = ("CN",),
    epsilons: Sequence[float] = (0.0, 0.1, 0.25, 0.5, 1.0),
    k: int = 5,
    iterations: int = 10,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
) -> ExperimentResult:
    """Objective/compression and realized error for an ε sweep."""
    result = ExperimentResult(
        experiment="lossy",
        title="Lossy dropping: compactness vs. error budget ε",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        for epsilon in epsilons:
            summary = LDME(
                k=k, iterations=iterations, epsilon=epsilon, seed=seed
            ).summarize(graph)
            verify_error_bound(graph, summary, epsilon)
            missing, spurious = reconstruction_error(graph, summary)
            result.rows.append(
                {
                    "graph": name,
                    "epsilon": epsilon,
                    "objective": summary.objective,
                    "compression": summary.compression,
                    "missing_edges": len(missing),
                    "spurious_edges": len(spurious),
                    "drop_s": summary.stats.drop_seconds,
                }
            )
    result.notes.append(
        "Every row satisfies Eq. 2 (verified); objective is non-increasing "
        "in ε."
    )
    return result
