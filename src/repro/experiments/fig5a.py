"""Figure 5(a) — LDME vs. MoSSo running time on a single machine.

The paper runs LDME5/20 for 10 iterations against MoSSo with its published
configuration (escape probability e = 0.3, sample size c = 120) on CN, H1,
H2 and UK; VoG was over 40x slower than LDME everywhere and left off the
plot (we report it optionally so the claim is checkable).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from ..baselines.mosso import MoSSo
from ..baselines.vog import VoG
from ..core.ldme import LDME
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_fig5a", "DEFAULT_FIG5A_DATASETS"]

DEFAULT_FIG5A_DATASETS = ("CN", "H1")


def run_fig5a(
    dataset_names: Sequence[str] = DEFAULT_FIG5A_DATASETS,
    iterations: int = 10,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
    escape_prob: float = 0.3,
    sample_size: int = 120,
    include_vog: bool = False,
) -> ExperimentResult:
    """Wall-clock comparison: LDME5, LDME20, MoSSo (and optionally VoG)."""
    result = ExperimentResult(
        experiment="figure5a",
        title="Running time: LDME vs. MoSSo (single machine)",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        for k in (5, 20):
            summary = LDME(k=k, iterations=iterations, seed=seed).summarize(graph)
            result.rows.append(
                {
                    "graph": name,
                    "algorithm": f"LDME{k}",
                    "seconds": summary.stats.total_seconds,
                    "compression": summary.compression,
                }
            )
        tic = time.perf_counter()
        summary = MoSSo(
            escape_prob=escape_prob, sample_size=sample_size, seed=seed
        ).summarize(graph)
        result.rows.append(
            {
                "graph": name,
                "algorithm": "MoSSo",
                "seconds": time.perf_counter() - tic,
                "compression": summary.compression,
            }
        )
        if include_vog:
            vog = VoG(seed=seed).summarize(graph)
            result.rows.append(
                {
                    "graph": name,
                    "algorithm": "VoG",
                    "seconds": vog.seconds,
                    "compression": float("nan"),
                }
            )
    result.notes.append(
        "Paper shape: LDME5 1.5-5.7x and LDME20 2.6-10.2x faster than "
        "MoSSo; VoG >40x slower than LDME."
    )
    return result
