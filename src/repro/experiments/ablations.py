"""Ablation harness: isolate each of LDME's design choices.

Runs LDME variants that differ in exactly one knob — encoder, merge
policy, cost model, divide weighting, divide strategy (via SWeG) — on one
graph and reports compression and phase times side by side. The benchmark
mirror is ``benchmarks/test_ablations.py``; this harness makes the same
comparisons reachable from ``ldme experiment ablations``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..baselines.sweg import SWeG
from ..core.ldme import LDME
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_ablations"]


def run_ablations(
    dataset_names: Sequence[str] = ("CN",),
    iterations: int = 8,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
) -> ExperimentResult:
    """One row per variant per graph."""
    result = ExperimentResult(
        experiment="ablations",
        title="Design-choice ablations (one knob changed per row)",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    variants = [
        ("LDME5 (reference)", lambda: LDME(k=5, iterations=iterations,
                                           seed=seed)),
        ("encoder=per-supernode", lambda: LDME(k=5, iterations=iterations,
                                               seed=seed,
                                               encoder="per-supernode")),
        ("merge=superjaccard", lambda: LDME(k=5, iterations=iterations,
                                            seed=seed,
                                            merge_policy="superjaccard")),
        ("cost=paper", lambda: LDME(k=5, iterations=iterations, seed=seed,
                                    cost_model="paper")),
        ("divide=expanded-weights", lambda: LDME(k=5,
                                                 iterations=iterations,
                                                 seed=seed,
                                                 divide_weights="expanded")),
        ("divide=shingle (SWeG)", lambda: SWeG(iterations=iterations,
                                               seed=seed)),
    ]
    for name, graph in graphs.items():
        for label, factory in variants:
            summary = factory().summarize(graph)
            result.rows.append(
                {
                    "graph": name,
                    "variant": label,
                    "compression": summary.compression,
                    "total_s": summary.stats.total_seconds,
                    "divide_merge_s": summary.stats.divide_merge_seconds,
                    "encode_s": summary.stats.encode_seconds,
                    "supernodes": summary.num_supernodes,
                }
            )
    result.notes.append(
        "Each non-reference row changes exactly one design choice; compare "
        "against the first row of its graph."
    )
    return result
