"""Plain-text reporting for experiment harnesses.

Every experiment returns an :class:`ExperimentResult` — a titled list of
row dicts — and this module renders them as aligned ASCII tables the way
the paper's tables/series read. Keeping formatting in one place means every
benchmark prints comparable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_result",
    "to_csv",
    "to_json",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment harness run."""

    experiment: str                  # e.g. "figure2"
    title: str                       # human description
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column_names(self) -> List[str]:
        """Union of row keys, in first-appearance order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def series(self, x: str, y: str, where: Optional[Dict[str, object]] = None):
        """Extract an (x, y) series, optionally filtered by column values.

        The figure benchmarks use this to check shapes ("time decreases
        with k") without caring about table layout.
        """
        points = []
        for row in self.rows:
            if where and any(row.get(k) != v for k, v in where.items()):
                continue
            if x in row and y in row:
                points.append((row[x], row[y]))
        return points


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max((len(line[i]) for line in cells), default=0))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def format_result(result: ExperimentResult) -> str:
    """Full printable report for one experiment."""
    parts = [f"== {result.experiment}: {result.title} =="]
    parts.append(format_table(result.rows, result.column_names()))
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def to_csv(result: ExperimentResult) -> str:
    """Render the rows as CSV (header from column order)."""
    import csv
    import io

    columns = result.column_names()
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in result.rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue()


def to_json(result: ExperimentResult) -> str:
    """Render the whole result (metadata + rows) as JSON."""
    import json

    return json.dumps(
        {
            "experiment": result.experiment,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        },
        indent=2,
        default=str,
    )
