"""Robustness experiments: noise sensitivity and seed variance.

Two extension studies for scientific hygiene around the paper's numbers:

* :func:`run_noise_robustness` — progressively rewire a compressible graph
  at random and watch compression degrade: group-based summarization
  exploits structural redundancy, so destroying structure must destroy
  compression (a mechanism check, not just a speed check).
* :func:`run_seed_sensitivity` — the algorithms are randomized (random
  permutations, random merge order); this harness reports the spread of
  compression across seeds so figure-level comparisons can be judged
  against run-to-run variance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.ldme import LDME
from ..graph.generators import web_host_graph
from ..graph.graph import Graph
from ..graph.transform import add_edges, remove_edges
from .reporting import ExperimentResult

__all__ = ["run_noise_robustness", "run_seed_sensitivity", "rewire"]


def rewire(graph: Graph, fraction: float, seed: int = 0) -> Graph:
    """Replace a fraction of edges with uniformly random ones.

    Keeps ``|E|`` roughly constant while destroying structure — the noise
    knob of the robustness study.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    count = int(len(edges) * fraction)
    if count == 0:
        return graph
    picks = rng.choice(len(edges), size=count, replace=False)
    dropped = [edges[int(i)] for i in picks]
    random_edges = []
    while len(random_edges) < count:
        u = int(rng.integers(graph.num_nodes))
        v = int(rng.integers(graph.num_nodes))
        if u != v:
            random_edges.append((u, v))
    return add_edges(remove_edges(graph, dropped), random_edges)


def run_noise_robustness(
    fractions: Sequence[float] = (0.0, 0.2, 0.5, 1.0),
    k: int = 5,
    iterations: int = 10,
    seed: int = 0,
    graph: Optional[Graph] = None,
) -> ExperimentResult:
    """Compression of LDME as structure is randomly rewired away."""
    result = ExperimentResult(
        experiment="robustness",
        title="Compression vs. random rewiring (structure destruction)",
    )
    if graph is None:
        graph = web_host_graph(num_hosts=30, host_size=25, seed=seed)
    for fraction in fractions:
        noisy = rewire(graph, fraction, seed=seed)
        summary = LDME(k=k, iterations=iterations, seed=seed).summarize(noisy)
        result.rows.append(
            {
                "rewired_fraction": fraction,
                "edges": noisy.num_edges,
                "compression": summary.compression,
                "supernodes": summary.num_supernodes,
            }
        )
    result.notes.append(
        "Expected shape: compression falls monotonically toward ~0 as the "
        "template structure is replaced by uniform noise."
    )
    return result


def run_seed_sensitivity(
    seeds: Sequence[int] = tuple(range(8)),
    k: int = 5,
    iterations: int = 10,
    graph: Optional[Graph] = None,
) -> ExperimentResult:
    """Spread of LDME's compression across random seeds."""
    if not seeds:
        raise ValueError("at least one seed required")
    result = ExperimentResult(
        experiment="seeds",
        title="Run-to-run variance of LDME compression",
    )
    if graph is None:
        graph = web_host_graph(num_hosts=30, host_size=25, seed=99)
    values = []
    for seed in seeds:
        summary = LDME(k=k, iterations=iterations, seed=seed).summarize(graph)
        values.append(summary.compression)
        result.rows.append(
            {"seed": seed, "compression": summary.compression,
             "objective": summary.objective}
        )
    arr = np.asarray(values)
    result.notes.append(
        f"compression mean {arr.mean():.4f}, std {arr.std():.4f}, "
        f"range [{arr.min():.4f}, {arr.max():.4f}] over {len(seeds)} seeds"
    )
    return result
