"""Figure 4 — effect of the DOPH signature length ``k`` on the divide.

For k in {5, 10, 15, 20} the paper plots the number of groups produced by
the weighted-LSH divide and the size of the largest group. Both series come
straight from :class:`~repro.core.divide.DivideStats` on the first divide
of a fresh partition (the paper's plots are per-divide shapes).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.divide import lsh_divide
from ..core.partition import SupernodePartition
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_fig4", "DEFAULT_FIG4_DATASETS"]

#: Graphs the paper shows in Figure 4.
DEFAULT_FIG4_DATASETS = ("CN", "H1")


def run_fig4(
    dataset_names: Sequence[str] = DEFAULT_FIG4_DATASETS,
    k_values: Sequence[int] = (5, 10, 15, 20),
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
) -> ExperimentResult:
    """Number of groups and max group size for increasing ``k``."""
    result = ExperimentResult(
        experiment="figure4",
        title="Divide shape vs. DOPH signature length k",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        partition = SupernodePartition(graph.num_nodes)
        for k in k_values:
            _, stats = lsh_divide(graph, partition, k, seed=seed)
            result.rows.append(
                {
                    "graph": name,
                    "k": k,
                    "num_groups": stats.num_groups,
                    "max_group_size": stats.max_group_size,
                    "mergeable": stats.num_mergeable,
                    "singletons": stats.num_singletons,
                }
            )
    result.notes.append(
        "Paper shape: groups increase and the largest group shrinks as k "
        "grows (the number of possible signatures is (n/k + 1)^k)."
    )
    return result
