"""Figure 5(c) — stochastic block model density sweep.

The paper generates SBM graphs with 3 communities of 300 nodes each and
gradually raises the within/between-community interaction levels; runtime
of LDME5/20, SWeG, MoSSo and VoG is plotted against density. MoSSo's cost
grows steeply with density, VoG "goes off the figure", while LDME and SWeG
stay resilient (LDME up to 8x faster than SWeG).
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..baselines.mosso import MoSSo
from ..baselines.sweg import SWeG
from ..baselines.vog import VoG
from ..core.ldme import LDME
from ..graph.generators import stochastic_block_model
from .reporting import ExperimentResult

__all__ = ["run_fig5c", "sbm_graph_for_level"]


def sbm_graph_for_level(
    level: float,
    community_size: int = 300,
    num_communities: int = 3,
    seed: int = 0,
):
    """The paper's SBM workload at one density level.

    ``level`` scales both intra- and inter-community probabilities: intra
    is ``0.05 + 0.25 * level``, inter is ``0.005 + 0.05 * level``, so the
    sweep raises "the level of interactions between/within communities".
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    intra = min(1.0, 0.05 + 0.25 * level)
    inter = min(1.0, 0.005 + 0.05 * level)
    matrix = [
        [intra if i == j else inter for j in range(num_communities)]
        for i in range(num_communities)
    ]
    return stochastic_block_model(
        [community_size] * num_communities, matrix, seed=seed
    )


def run_fig5c(
    levels: Sequence[float] = (0.0, 0.5, 1.0),
    community_size: int = 300,
    iterations: int = 5,
    seed: int = 0,
    include_vog: bool = True,
    include_mosso: bool = True,
    mosso_sample_size: int = 120,
) -> ExperimentResult:
    """Runtime of each algorithm as SBM density increases."""
    result = ExperimentResult(
        experiment="figure5c",
        title="SBM density sweep (3 communities)",
    )
    for level in levels:
        graph = sbm_graph_for_level(level, community_size=community_size, seed=seed)
        runs: List[tuple] = []
        for k in (5, 20):
            summary = LDME(k=k, iterations=iterations, seed=seed).summarize(graph)
            runs.append((f"LDME{k}", summary.stats.total_seconds))
        summary = SWeG(iterations=iterations, seed=seed).summarize(graph)
        runs.append(("SWeG", summary.stats.total_seconds))
        if include_mosso:
            tic = time.perf_counter()
            MoSSo(sample_size=mosso_sample_size, seed=seed).summarize(graph)
            runs.append(("MoSSo", time.perf_counter() - tic))
        if include_vog:
            vog = VoG(seed=seed).summarize(graph)
            runs.append(("VoG", vog.seconds))
        for algo_name, seconds in runs:
            result.rows.append(
                {
                    "density_level": level,
                    "edges": graph.num_edges,
                    "algorithm": algo_name,
                    "seconds": seconds,
                }
            )
    result.notes.append(
        "Paper shape: MoSSo's time climbs sharply with density and VoG is "
        "off the chart; LDME and SWeG stay flat with LDME up to 8x faster."
    )
    return result
