"""Experiment harnesses reproducing every table and figure of the paper."""

from .ablations import run_ablations
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5a import run_fig5a
from .fig5b import run_fig5b
from .fig5c import run_fig5c, sbm_graph_for_level
from .reporting import ExperimentResult, format_result, format_table
from .runner import EXPERIMENTS, run_all, write_report
from .lossy import run_lossy_curve
from .queries_exp import generate_query_workload, run_query_latency
from .robustness import rewire, run_noise_robustness, run_seed_sensitivity
from .scaling import run_scaling_curve
from .table1 import run_table1
from .tuning import run_tuning_curve

__all__ = [
    "run_table1",
    "run_tuning_curve",
    "run_lossy_curve",
    "run_query_latency",
    "run_ablations",
    "run_noise_robustness",
    "run_seed_sensitivity",
    "rewire",
    "generate_query_workload",
    "run_scaling_curve",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "sbm_graph_for_level",
    "ExperimentResult",
    "format_result",
    "format_table",
    "EXPERIMENTS",
    "run_all",
    "write_report",
]
