"""Run every experiment and emit a consolidated report.

``python -m repro.experiments.runner`` (or ``ldme experiment all``) runs
the scaled version of each table/figure and prints paper-style output;
``write_report`` additionally produces the markdown used to refresh
EXPERIMENTS.md measurements.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .ablations import run_ablations
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5a import run_fig5a
from .fig5b import run_fig5b
from .fig5c import run_fig5c
from .reporting import ExperimentResult, format_result
from .lossy import run_lossy_curve
from .queries_exp import run_query_latency
from .robustness import run_noise_robustness, run_seed_sensitivity
from .scaling import run_scaling_curve
from .table1 import run_table1
from .tuning import run_tuning_curve

__all__ = ["EXPERIMENTS", "run_all", "write_report", "save_results"]

#: Registry of experiment name → harness (scaled defaults).
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": run_table1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "fig5c": run_fig5c,
    "tuning": run_tuning_curve,
    "lossy": run_lossy_curve,
    "scaling": run_scaling_curve,
    "queries": run_query_latency,
    "ablations": run_ablations,
    "robustness": run_noise_robustness,
    "seeds": run_seed_sensitivity,
}


def run_all(names: List[str] = None) -> List[ExperimentResult]:
    """Run the named experiments (default: every one) in registry order."""
    selected = names or list(EXPERIMENTS)
    results = []
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; choose from {list(EXPERIMENTS)}"
            )
        results.append(EXPERIMENTS[name]())
    return results


def save_results(
    results: List[ExperimentResult], directory, fmt: str = "csv"
) -> List[str]:
    """Persist each result to ``directory`` as ``<experiment>.<fmt>``.

    ``fmt`` is ``"csv"`` or ``"json"``; returns the written paths. Used by
    ``ldme experiment --output-dir``.
    """
    import os

    from .reporting import to_csv, to_json

    if fmt not in ("csv", "json"):
        raise ValueError("fmt must be 'csv' or 'json'")
    os.makedirs(directory, exist_ok=True)
    written = []
    for result in results:
        path = os.path.join(os.fspath(directory),
                            f"{result.experiment}.{fmt}")
        payload = to_csv(result) if fmt == "csv" else to_json(result)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
        written.append(path)
    return written


def write_report(results: List[ExperimentResult]) -> str:
    """Render all results into one markdown document."""
    chunks = ["# LDME reproduction — experiment report", ""]
    for result in results:
        chunks.append("```")
        chunks.append(format_result(result))
        chunks.append("```")
        chunks.append("")
    return "\n".join(chunks)


def main() -> None:  # pragma: no cover - exercised via CLI tests
    results = run_all()
    for result in results:
        print(format_result(result))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
