"""Figure 2 — SWeG vs. LDME5 vs. LDME20 across iteration counts.

For each graph and each iteration budget ``T`` the paper reports four
metrics: compression, total running time, divide+merge time and encode
time. Each algorithm runs *once* with per-iteration compression tracking
(an encode pass after every round), and the requested ``T`` values are
read off the recorded curve — the paper's per-T series from a single run.

The paper sweeps T = 10..60 on CN/IN/EU/H1; the default here is a scaled
sweep that finishes in benchmark time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..baselines.sweg import SWeG
from ..core.ldme import LDME
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_fig2", "DEFAULT_FIG2_DATASETS"]

#: The graphs of Figure 2 (the ones every algorithm finishes on).
DEFAULT_FIG2_DATASETS = ("CN", "EU")


def _algorithms(iterations: int, seed: int, include_sweg: bool):
    algos = {
        "LDME5": LDME(k=5, iterations=iterations, seed=seed,
                      track_compression=True),
        "LDME20": LDME(k=20, iterations=iterations, seed=seed,
                       track_compression=True),
    }
    if include_sweg:
        algos["SWeG"] = SWeG(iterations=iterations, seed=seed,
                             track_compression=True)
    return algos


def run_fig2(
    dataset_names: Sequence[str] = DEFAULT_FIG2_DATASETS,
    iterations_list: Iterable[int] = (2, 4, 8),
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
    include_sweg: bool = True,
) -> ExperimentResult:
    """Per-T series per graph per algorithm, from one tracked run each.

    Parameters
    ----------
    dataset_names:
        Abbreviations from :mod:`repro.graph.datasets` (ignored when
        ``graphs`` is given).
    iterations_list:
        The ``T`` values to report (x-axis of Figure 2); the run executes
        ``max(iterations_list)`` rounds.
    graphs:
        Optional explicit name → graph mapping overriding the registry.
    include_sweg:
        Disable to reproduce only the LDME series (e.g. larger graphs).
    """
    wanted = sorted(set(int(t) for t in iterations_list))
    if not wanted or wanted[0] < 1:
        raise ValueError("iterations_list must contain positive integers")
    result = ExperimentResult(
        experiment="figure2",
        title=(
            "Compression / total time / divide+merge time / encode time "
            "over iterations"
        ),
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        for algo_name, algo in _algorithms(
            max(wanted), seed, include_sweg
        ).items():
            summary = algo.summarize(graph)
            cumulative_dm = 0.0
            by_t = {}
            for record in summary.stats.iterations:
                cumulative_dm += record.divide_seconds + record.merge_seconds
                by_t[record.iteration] = (cumulative_dm, record)
            for t in wanted:
                dm_seconds, record = by_t[t]
                result.rows.append(
                    {
                        "graph": name,
                        "algorithm": algo_name,
                        "T": t,
                        "compression": record.compression,
                        "total_s": dm_seconds + record.encode_seconds,
                        "divide_merge_s": dm_seconds,
                        "encode_s": record.encode_seconds,
                        "supernodes": record.num_supernodes,
                    }
                )
    result.notes.append(
        "Expected shape: LDME20 fastest, LDME5 close to SWeG's compression, "
        "SWeG slowest with encode time falling as |S| shrinks."
    )
    return result
