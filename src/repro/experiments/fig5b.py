"""Figure 5(b) — distributed LDME vs. SWeG.

The paper's distributed runs use Apache Spark on 8-instance EMR clusters;
here both algorithms execute under the simulated 8-worker cluster of
:mod:`repro.distributed` (see DESIGN.md §4 for the substitution). The
comparison of interest — does LDME's advantage survive parallel group
processing? — is driven entirely by real, measured per-group merge costs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..baselines.sweg import SWeG
from ..core.ldme import LDME
from ..distributed import ClusterSpec, run_distributed
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_fig5b", "DEFAULT_FIG5B_DATASETS"]

DEFAULT_FIG5B_DATASETS = ("CN",)


def run_fig5b(
    dataset_names: Sequence[str] = DEFAULT_FIG5B_DATASETS,
    iterations: int = 10,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
    num_workers: int = 8,
    include_sweg: bool = True,
) -> ExperimentResult:
    """Simulated-cluster running time for parallel LDME5/20 and SWeG."""
    result = ExperimentResult(
        experiment="figure5b",
        title=f"Distributed ({num_workers} workers, simulated) LDME vs. SWeG",
    )
    cluster = ClusterSpec(num_workers=num_workers)
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        algorithms = {
            "LDME5": LDME(k=5, iterations=iterations, seed=seed),
            "LDME20": LDME(k=20, iterations=iterations, seed=seed),
        }
        if include_sweg:
            algorithms["SWeG"] = SWeG(iterations=iterations, seed=seed)
        for algo_name, algo in algorithms.items():
            run = run_distributed(algo, graph, cluster)
            result.rows.append(
                {
                    "graph": name,
                    "algorithm": algo_name,
                    "simulated_s": run.simulated_seconds,
                    "serial_s": run.serial_seconds,
                    "parallel_speedup": run.speedup,
                    "compression": run.summarization.compression,
                }
            )
    result.notes.append(
        "Paper shape: LDME5 3.0-23.8x and LDME20 3.1-36.0x faster than "
        "distributed SWeG; SWeG cannot finish AR within 12 hours."
    )
    return result
