"""Table 1 — dataset summary.

Prints the paper's dataset inventory next to the scaled surrogate actually
used in this reproduction (see DESIGN.md §4 for the substitution).
"""

from __future__ import annotations

from ..graph import datasets
from .reporting import ExperimentResult

__all__ = ["run_table1"]


def run_table1() -> ExperimentResult:
    """Build every surrogate and report paper vs. surrogate sizes."""
    result = ExperimentResult(
        experiment="table1",
        title="Summary of datasets (paper sizes vs. scaled surrogates)",
    )
    for name, abbrev, paper_nodes, paper_edges, nodes, edges in datasets.table1_rows():
        result.rows.append(
            {
                "Graph": name,
                "Abbr": abbrev,
                "Paper nodes": paper_nodes,
                "Paper edges": paper_edges,
                "Surrogate nodes": nodes,
                "Surrogate edges": edges,
            }
        )
    result.notes.append(
        "LAW crawls are unavailable offline; surrogates are synthetic "
        "web-like graphs at laptop scale (DESIGN.md §4)."
    )
    return result
