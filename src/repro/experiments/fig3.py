"""Figure 3 — LDME5/LDME20 on the graphs SWeG cannot finish.

The paper reports final compression and total running time of LDME5/20 on
H2, IC, UK and AR — graphs where SWeG exceeds the one-day budget. Here the
surrogates are laptop-sized, so "SWeG cannot finish" is represented by a
per-run time budget: SWeG is attempted with the same budget and reported
as infeasible when it blows through it (see DESIGN.md §4).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from ..baselines.sweg import SWeG
from ..core.ldme import LDME
from ..graph import datasets
from ..graph.graph import Graph
from .reporting import ExperimentResult

__all__ = ["run_fig3", "DEFAULT_FIG3_DATASETS"]

#: The large graphs of Figure 3.
DEFAULT_FIG3_DATASETS = ("H2", "IC")


def run_fig3(
    dataset_names: Sequence[str] = DEFAULT_FIG3_DATASETS,
    iterations: int = 5,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
    sweg_budget_seconds: float = 0.0,
) -> ExperimentResult:
    """Final-iteration compression/time of LDME5 and LDME20.

    ``sweg_budget_seconds > 0`` additionally attempts SWeG and reports
    whether it stayed inside the budget (the scaled analogue of the paper's
    1-day cutoff).
    """
    result = ExperimentResult(
        experiment="figure3",
        title="LDME5/20 on large graphs (SWeG over budget)",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        for k in (5, 20):
            algo = LDME(k=k, iterations=iterations, seed=seed)
            summary = algo.summarize(graph)
            result.rows.append(
                {
                    "graph": name,
                    "algorithm": f"LDME{k}",
                    "compression": summary.compression,
                    "total_s": summary.stats.total_seconds,
                    "feasible": True,
                }
            )
        if sweg_budget_seconds > 0:
            tic = time.perf_counter()
            summary = SWeG(iterations=iterations, seed=seed).summarize(graph)
            elapsed = time.perf_counter() - tic
            result.rows.append(
                {
                    "graph": name,
                    "algorithm": "SWeG",
                    "compression": summary.compression,
                    "total_s": elapsed,
                    "feasible": elapsed <= sweg_budget_seconds,
                }
            )
    result.notes.append(
        "Paper shape: both LDME settings complete on every graph "
        "(including the billion-edge AR); LDME20 trades a little "
        "compression for speed."
    )
    return result
