"""Query-answering experiment: latency on the summary vs. the raw graph.

The paper's introduction motivates summarization with efficient query
answering on the compact representation. This harness generates a mixed
query workload (neighbourhood, edge-membership, 2-hop), runs it against
both the raw CSR graph and the :class:`~repro.queries.SummaryIndex`, and
verifies every answer agrees — quantifying the price/benefit of serving
queries without reconstruction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ldme import LDME
from ..graph import datasets
from ..graph.graph import Graph
from ..queries.index import SummaryIndex
from .reporting import ExperimentResult

__all__ = ["generate_query_workload", "run_query_latency"]

Query = Tuple[str, int, int]     # ("nbr"|"edge"|"2hop", u, v)


def generate_query_workload(
    graph: Graph,
    num_queries: int = 1000,
    seed: int = 0,
    mix: Dict[str, float] = None,
) -> List[Query]:
    """Random query mix over the graph's node universe.

    ``mix`` maps query kind → probability; default 50% neighbourhood,
    30% edge-membership (half of them true edges), 20% 2-hop counts.
    """
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")
    mix = mix or {"nbr": 0.5, "edge": 0.3, "2hop": 0.2}
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("query mix must have positive mass")
    rng = np.random.default_rng(seed)
    kinds = list(mix)
    probs = np.array([mix[k] for k in kinds]) / total
    src, dst = graph.edge_arrays()
    workload: List[Query] = []
    for _ in range(num_queries):
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "edge" and src.size and rng.random() < 0.5:
            i = int(rng.integers(src.size))
            workload.append(("edge", int(src[i]), int(dst[i])))
        else:
            u = int(rng.integers(graph.num_nodes))
            v = int(rng.integers(graph.num_nodes))
            workload.append((kind, u, v))
    return workload


def _run_on_graph(graph: Graph, workload: Sequence[Query]) -> List:
    answers = []
    for kind, u, v in workload:
        if kind == "nbr":
            answers.append(graph.neighbors(u).tolist())
        elif kind == "edge":
            answers.append(graph.has_edge(u, v))
        else:  # 2hop: count of distinct nodes exactly two hops from u
            one_hop = set(graph.neighbors(u).tolist())
            two_hop = set()
            for w in one_hop:
                two_hop.update(graph.neighbors(w).tolist())
            answers.append(len(two_hop - one_hop - {u}))
    return answers


def _run_on_index(index: SummaryIndex, workload: Sequence[Query]) -> List:
    answers = []
    for kind, u, v in workload:
        if kind == "nbr":
            answers.append(index.neighbors(u))
        elif kind == "edge":
            answers.append(index.has_edge(u, v))
        else:
            one_hop = set(index.neighbors(u))
            two_hop = set()
            for w in one_hop:
                two_hop.update(index.neighbors(w))
            answers.append(len(two_hop - one_hop - {u}))
    return answers


def run_query_latency(
    dataset_names: Sequence[str] = ("CN",),
    num_queries: int = 500,
    k: int = 5,
    iterations: int = 10,
    seed: int = 0,
    graphs: Optional[Dict[str, Graph]] = None,
) -> ExperimentResult:
    """Time the workload on the raw graph and on the summary index."""
    result = ExperimentResult(
        experiment="queries",
        title="Query latency: raw CSR graph vs. summary index",
    )
    if graphs is None:
        graphs = {name: datasets.load(name) for name in dataset_names}
    for name, graph in graphs.items():
        summary = LDME(k=k, iterations=iterations, seed=seed).summarize(graph)
        index = SummaryIndex(summary)
        workload = generate_query_workload(graph, num_queries, seed=seed)

        tic = time.perf_counter()
        graph_answers = _run_on_graph(graph, workload)
        graph_seconds = time.perf_counter() - tic

        tic = time.perf_counter()
        index_answers = _run_on_index(index, workload)
        index_seconds = time.perf_counter() - tic

        agree = sum(
            1 for a, b in zip(graph_answers, index_answers) if a == b
        )
        result.rows.append(
            {
                "graph": name,
                "queries": len(workload),
                "graph_s": graph_seconds,
                "summary_s": index_seconds,
                "agreement": agree / max(1, len(workload)),
                "compression": summary.compression,
            }
        )
    result.notes.append(
        "Lossless summaries must reach agreement 1.0; the summary pays an "
        "expansion cost per neighbourhood but answers without storing E."
    )
    return result
