"""Checkpoint/resume for iterative summarization runs.

:func:`run_resumable` wraps any :class:`~repro.core.base.BaseSummarizer`
(serial LDME, SWeG, or the supervised parallel
:class:`~repro.distributed.MultiprocessLDME`) with iteration-boundary
checkpointing: after every ``checkpoint_every`` iterations the full loop
state — partition (member order preserved exactly), RNG bit-generator
state, early-stop counter, and accumulated stats — is persisted through a
:class:`~repro.resilience.checkpoint.CheckpointManager`. A process killed
at any point restarts from the last good checkpoint and produces a
summary **bit-identical** to the uninterrupted run: same supernodes, same
superedges, same correction sets.

A fingerprint of the algorithm configuration and the input graph is
stored with every checkpoint; resuming against a different configuration
or graph raises :class:`~repro.errors.CheckpointError` instead of
silently computing a wrong summary.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Any, Dict, Optional, Union

import numpy as np

from ..core.base import BaseSummarizer, IterationHook, ResumeState
from ..core.partition import SupernodePartition
from ..core.summary import IterationStats, RunStats, Summarization
from ..errors import CheckpointError
from ..graph.graph import Graph
from ..obs import trace as obs_trace
from .checkpoint import CheckpointManager

__all__ = [
    "run_resumable",
    "run_fingerprint",
    "state_to_payload",
    "payload_to_state",
]

PAYLOAD_KIND = "ldme-run"

#: Optional per-algorithm attributes folded into the fingerprint when
#: present (k for LDME, batching shape for the parallel variant, ...).
_OPTIONAL_FINGERPRINT_ATTRS = (
    "k", "merge_policy", "divide_weights", "num_workers",
)


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def run_fingerprint(algo: BaseSummarizer, graph: Graph) -> Dict[str, Any]:
    """Identity of (algorithm configuration, input graph) for a run.

    Two runs with equal fingerprints are guaranteed to walk the same
    iteration trajectory, so a checkpoint from one can seed the other.
    The graph contributes its shape plus a CRC32 over the CSR arrays —
    cheap relative to one LDME iteration, and it catches the
    "same-sized but different graph" foot-gun.
    """
    fp: Dict[str, Any] = {
        "class": type(algo).__name__,
        "name": algo.name,
        "iterations": algo.iterations,
        "epsilon": algo.epsilon,
        "seed": algo.seed,
        "encoder": algo.encoder,
        "cost_model": algo.cost_model,
        "early_stop_rounds": algo.early_stop_rounds,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "graph_crc32": _graph_crc32(graph),
    }
    for attr in _OPTIONAL_FINGERPRINT_ATTRS:
        if hasattr(algo, attr):
            fp[attr] = getattr(algo, attr)
    return fp


def _graph_crc32(graph: Graph) -> int:
    crc = zlib.crc32(np.ascontiguousarray(graph.indptr).tobytes())
    return zlib.crc32(np.ascontiguousarray(graph.indices).tobytes(), crc)


# ----------------------------------------------------------------------
# ResumeState <-> JSON payload
# ----------------------------------------------------------------------
def state_to_payload(
    state: ResumeState, fingerprint: Dict[str, Any]
) -> Dict[str, Any]:
    """Serialize live loop state to a JSON-safe checkpoint payload.

    Member lists and the supernode dict's insertion order are preserved
    verbatim — bit-identical resume depends on it (group formation and
    merge tie-breaking follow iteration order, not sorted order).
    """
    partition = state.partition
    stats = state.stats or RunStats()
    return {
        "kind": PAYLOAD_KIND,
        "fingerprint": fingerprint,
        "stalled": state.stalled,
        "rng_state": state.rng_state,
        "partition": {
            "num_nodes": partition.num_nodes,
            "members": {
                str(sid): list(mem)
                for sid, mem in partition.members_map().items()
            },
        },
        "stats": dataclasses.asdict(stats),
    }


def payload_to_state(payload: Dict[str, Any],
                     iteration: int) -> ResumeState:
    """Rebuild a :class:`~repro.core.base.ResumeState` from a payload."""
    part_doc = payload["partition"]
    members = {
        int(sid): [int(v) for v in mem]
        for sid, mem in part_doc["members"].items()
    }
    partition = SupernodePartition.from_members(
        int(part_doc["num_nodes"]), members
    )
    stats_doc = dict(payload.get("stats") or {})
    iteration_docs = stats_doc.pop("iterations", [])
    stats = RunStats(
        **stats_doc,
        iterations=[IterationStats(**doc) for doc in iteration_docs],
    )
    return ResumeState(
        iteration=iteration,
        partition=partition,
        rng_state=payload.get("rng_state"),
        stalled=int(payload.get("stalled", 0)),
        stats=stats,
    )


# ----------------------------------------------------------------------
# the resumable runner
# ----------------------------------------------------------------------
def run_resumable(
    algo: BaseSummarizer,
    graph: Graph,
    checkpoints: Union[CheckpointManager, str],
    *,
    checkpoint_every: int = 1,
    resume: bool = True,
    iteration_hook: Optional[IterationHook] = None,
) -> Summarization:
    """Run ``algo`` on ``graph`` with iteration-boundary checkpointing.

    Parameters
    ----------
    checkpoints:
        A :class:`CheckpointManager` or a directory path (a manager with
        default retention is created for a path).
    checkpoint_every:
        Persist state after every N completed iterations (the final
        iteration is always checkpointed).
    resume:
        If the directory holds a good checkpoint whose fingerprint
        matches, continue from it; a fingerprint mismatch raises
        :class:`~repro.errors.CheckpointError`. With ``resume=False``
        any existing checkpoints are ignored (and overwritten as the
        fresh run progresses).
    iteration_hook:
        Optional extra per-iteration callback, invoked *after* the
        checkpoint for that iteration (if any) has been persisted — so a
        hook that raises still leaves a resumable state behind. Used by
        the fault-injection tests to simulate crashes at exact
        boundaries.

    Returns the summarization — bit-identical to ``algo.summarize(graph)``
    run uninterrupted, regardless of how many crash/resume cycles
    happened on the way.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    manager = (
        checkpoints
        if isinstance(checkpoints, CheckpointManager)
        else CheckpointManager(checkpoints)
    )
    fingerprint = run_fingerprint(algo, graph)
    resume_state: Optional[ResumeState] = None
    if resume:
        loaded = manager.load_latest()
        if loaded is not None:
            payload = loaded.payload
            if payload.get("kind") != PAYLOAD_KIND:
                raise CheckpointError(
                    f"{loaded.path}: not an {PAYLOAD_KIND!r} checkpoint "
                    f"(found {payload.get('kind')!r})"
                )
            if payload.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"{loaded.path}: checkpoint was written by a different "
                    "run configuration or graph; pass resume=False (or a "
                    "fresh --checkpoint-dir) to start over"
                )
            resume_state = payload_to_state(payload, loaded.iteration)

    def _hook(state: ResumeState) -> None:
        final = state.iteration >= algo.iterations
        if final or state.iteration % checkpoint_every == 0:
            # The hook runs inside the driver's live iteration span, so
            # checkpoint persistence shows up as a child span keyed by
            # the iteration — and, because the key is explicit, a
            # resumed run emits identical checkpoint spans for the
            # iterations it actually executes.
            with obs_trace.span(
                "checkpoint", key=state.iteration,
                num_supernodes=state.partition.num_supernodes,
            ):
                manager.save(
                    state.iteration, state_to_payload(state, fingerprint)
                )
        if iteration_hook is not None:
            iteration_hook(state)

    return algo.summarize(
        graph, resume_state=resume_state, iteration_hook=_hook
    )
