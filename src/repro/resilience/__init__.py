"""Fault tolerance for long summarization runs (``repro.resilience``).

Four pillars, each usable on its own:

* :class:`CheckpointManager` / :func:`run_resumable` — atomic,
  checksummed iteration-boundary checkpoints; a killed run resumes
  bit-identical to an uninterrupted one.
* :class:`~repro.resilience.supervisor.BatchSupervisor` — retry,
  timeout, and serial-fallback supervision for the parallel merge
  (wired into :class:`repro.distributed.MultiprocessLDME`).
* :class:`FaultInjector` and friends — deterministic worker crashes,
  hangs, and file corruption for chaos testing.
* Corruption-safe I/O primitives re-exported from :mod:`repro.ioutil`
  and :mod:`repro.errors` (the binary formats themselves live in
  :mod:`repro.binaryio`).
"""

from ..errors import (
    CheckpointError,
    CorruptCheckpointError,
    CorruptSummaryError,
)
from ..ioutil import atomic_write, file_crc32
from .checkpoint import CheckpointInfo, CheckpointManager, LoadedCheckpoint
from .faults import (
    CRASH_EXIT_CODE,
    ClusterFaultPlan,
    FaultInjector,
    MigrationFault,
    MigrationFaultPlan,
    ReplicaFault,
    WorkerFault,
    WorkerFaultError,
    flip_bit,
    partial_write,
    torn_tail,
    truncate_file,
)
from .resumable import (
    payload_to_state,
    run_fingerprint,
    run_resumable,
    state_to_payload,
)
from .supervisor import (
    BatchSupervisor,
    SupervisionPolicy,
    SupervisionReport,
    WorkerPoolError,
)

__all__ = [
    # checkpointing
    "CheckpointManager",
    "CheckpointInfo",
    "LoadedCheckpoint",
    "run_resumable",
    "run_fingerprint",
    "state_to_payload",
    "payload_to_state",
    # supervision
    "BatchSupervisor",
    "SupervisionPolicy",
    "SupervisionReport",
    "WorkerPoolError",
    # fault injection
    "FaultInjector",
    "WorkerFault",
    "WorkerFaultError",
    "ReplicaFault",
    "ClusterFaultPlan",
    "MigrationFault",
    "MigrationFaultPlan",
    "CRASH_EXIT_CODE",
    "flip_bit",
    "truncate_file",
    "partial_write",
    "torn_tail",
    # errors + safe I/O
    "CheckpointError",
    "CorruptCheckpointError",
    "CorruptSummaryError",
    "atomic_write",
    "file_crc32",
]
