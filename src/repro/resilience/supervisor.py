"""Worker supervision for process-pool batch execution.

:class:`BatchSupervisor` runs a set of independent, idempotent batch
tasks on a process pool and survives the three classic failure modes:

* **crash** — a worker hard-exits (OOM kill, segfault, injected
  ``os._exit``). The pool silently replaces the process but the task's
  result never arrives, so the per-batch deadline converts the loss into
  a timeout and the batch is retried on a fresh pool.
* **hang** — a worker stalls; the deadline fires, the pool is torn down
  (``terminate`` kills the stuck process), and the batch is retried.
* **poison pill** — a worker raises; the exception is counted and the
  batch retried (a deterministic failure will exhaust retries and fall
  back).

Batches that still fail after ``max_retries`` fresh-pool attempts are
executed serially in the parent (*graceful degradation*), so a dying pool
degrades throughput, never correctness. Retries are safe because batch
planning is a pure function of its inputs — a retried batch produces the
identical plan a healthy worker would have.

Counters end up on :class:`~repro.core.summary.RunStats` so operators can
see how rough the run was.
"""

from __future__ import annotations

import logging
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "SupervisionPolicy",
    "SupervisionReport",
    "BatchSupervisor",
    "WorkerPoolError",
]

logger = logging.getLogger("repro.resilience")


class WorkerPoolError(RuntimeError):
    """Batches kept failing and serial fallback was disabled."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables for :class:`BatchSupervisor`."""

    #: Per-batch result deadline in seconds. Also the crash-detection
    #: latency: a killed worker's batch surfaces as a timeout. ``None``
    #: disables the deadline (crashes then hang forever — only sensible
    #: when an outer watchdog exists).
    batch_timeout: Optional[float] = 300.0
    #: Fresh-pool retry rounds before falling back to serial execution.
    max_retries: int = 2
    #: Plan failed batches in-process once retries are exhausted.
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.batch_timeout is not None and self.batch_timeout <= 0:
            raise ValueError("batch_timeout must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


@dataclass
class SupervisionReport:
    """What happened during one supervised run (summed into RunStats)."""

    worker_failures: int = 0     # batches whose worker raised
    batch_timeouts: int = 0      # batches lost to deadline (incl. crashes)
    batch_retries: int = 0       # batch re-submissions to a fresh pool
    serial_fallbacks: int = 0    # batches executed in-process

    def merge_into(self, stats) -> None:
        """Accumulate onto a :class:`~repro.core.summary.RunStats`."""
        stats.worker_failures += self.worker_failures
        stats.batch_timeouts += self.batch_timeouts
        stats.batch_retries += self.batch_retries
        stats.serial_fallbacks += self.serial_fallbacks


class BatchSupervisor:
    """Run independent batch tasks with retry and serial fallback.

    Parameters
    ----------
    worker_fn:
        Picklable top-level function executed in pool workers; called
        with one argument (the built task).
    task_builder:
        ``task_builder(descriptor, attempt)`` → the argument handed to
        ``worker_fn``. The attempt number is part of the task so
        deterministic fault schedules can target "first try only".
    serial_fn:
        In-process fallback: ``serial_fn(descriptor)`` → result. Must
        produce the same result a healthy worker would (pure planning).
    pool_factory:
        ``pool_factory(num_tasks)`` → a ``multiprocessing`` pool sized
        for the outstanding tasks, or ``None`` when no pool can be
        created (fork unavailable, resource exhaustion) — the supervisor
        then degrades to serial immediately.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        task_builder: Callable[[Any, int], Any],
        serial_fn: Callable[[Any], Any],
        pool_factory: Callable[[int], Optional[Any]],
        policy: Optional[SupervisionPolicy] = None,
    ) -> None:
        self.worker_fn = worker_fn
        self.task_builder = task_builder
        self.serial_fn = serial_fn
        self.pool_factory = pool_factory
        self.policy = policy or SupervisionPolicy()

    # ------------------------------------------------------------------
    def run(
        self, descriptors: Sequence[Any]
    ) -> Tuple[List[Any], SupervisionReport]:
        """Execute every descriptor; returns (ordered results, report)."""
        report = SupervisionReport()
        results: List[Any] = [None] * len(descriptors)
        outstanding = dict(enumerate(descriptors))
        attempt = 0
        while outstanding and attempt <= self.policy.max_retries:
            pool = self._make_pool(len(outstanding))
            if pool is None:
                break                        # pool is dead: degrade now
            try:
                handles = {
                    index: pool.apply_async(
                        self.worker_fn,
                        (self.task_builder(descriptor, attempt),),
                    )
                    for index, descriptor in outstanding.items()
                }
                failed = {}
                for index, handle in handles.items():
                    try:
                        results[index] = handle.get(self.policy.batch_timeout)
                    except multiprocessing.TimeoutError:
                        # Crashed workers never deliver a result either,
                        # so crash and hang both land here.
                        report.batch_timeouts += 1
                        failed[index] = outstanding[index]
                        logger.warning(
                            "batch %d timed out after %.1fs (attempt %d)",
                            index, self.policy.batch_timeout, attempt,
                        )
                    except Exception as exc:  # noqa: BLE001 - any worker error
                        report.worker_failures += 1
                        failed[index] = outstanding[index]
                        logger.warning(
                            "batch %d failed in worker (attempt %d): %r",
                            index, attempt, exc,
                        )
            finally:
                # terminate (not close): a hung/crashed worker would make
                # close+join wait forever.
                pool.terminate()
                pool.join()
            outstanding = failed
            attempt += 1
            if outstanding and attempt <= self.policy.max_retries:
                report.batch_retries += len(outstanding)
        if outstanding:
            if not self.policy.serial_fallback:
                raise WorkerPoolError(
                    f"{len(outstanding)} batches failed after "
                    f"{self.policy.max_retries} retries"
                )
            for index, descriptor in outstanding.items():
                results[index] = self.serial_fn(descriptor)
                report.serial_fallbacks += 1
            logger.warning(
                "planned %d batches serially after pool failure",
                len(outstanding),
            )
        return results, report

    def _make_pool(self, num_tasks: int) -> Optional[Any]:
        try:
            return self.pool_factory(num_tasks)
        except OSError as exc:
            logger.warning("worker pool unavailable (%s); degrading", exc)
            return None
