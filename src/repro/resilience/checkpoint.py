"""Atomic, checksummed, self-healing checkpoint storage.

A :class:`CheckpointManager` owns one directory of checkpoints plus a
manifest. Guarantees:

* **Atomicity** — checkpoint files and the manifest are written via
  temp-file + fsync + rename (:func:`repro.ioutil.atomic_write`); a crash
  mid-save leaves the previous state fully intact.
* **Integrity** — every checkpoint file is self-verifying: a one-line
  JSON header records the CRC32 and byte count of the body, checked on
  load. The manifest records the same, so either artifact alone can
  detect damage.
* **Recovery** — :meth:`load_latest` walks checkpoints newest→oldest and
  silently skips corrupt/missing ones, returning the most recent *good*
  state. A corrupt or missing manifest is rebuilt from the directory.
* **Bounded footprint** — only the newest ``keep`` checkpoints are
  retained; older files are pruned after each successful save.

File layout::

    <dir>/MANIFEST.json          # {"version":1,"entries":[...]}
    <dir>/ckpt_00000003.json     # header line + body JSON

The payload is an arbitrary JSON-serializable dict; the schemas for LDME
runs and dynamic-stream state live in :mod:`repro.resilience.resumable`
and :mod:`repro.streaming`.
"""

from __future__ import annotations

import json
import logging
import os
import re
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..errors import CheckpointError, CorruptCheckpointError
from ..ioutil import atomic_write

__all__ = ["CheckpointManager", "CheckpointInfo", "LoadedCheckpoint"]

logger = logging.getLogger("repro.resilience")

PathLike = Union[str, "os.PathLike[str]"]

MANIFEST_NAME = "MANIFEST.json"
CHECKPOINT_FORMAT = "ldme-checkpoint"
CHECKPOINT_VERSION = 1
_FILE_RE = re.compile(r"^ckpt_(\d{8})\.json$")


@dataclass(frozen=True)
class CheckpointInfo:
    """One manifest entry."""

    file: str            # basename within the checkpoint directory
    iteration: int
    crc32: int
    bytes: int


@dataclass
class LoadedCheckpoint:
    """Result of :meth:`CheckpointManager.load_latest`."""

    iteration: int
    payload: Dict[str, Any]
    path: str
    skipped: List[str]   # corrupt/missing checkpoints passed over


class CheckpointManager:
    """Manage one directory of atomic, checksummed checkpoints.

    Parameters
    ----------
    directory:
        Created on demand. One manager per logical run; sharing a
        directory between unrelated runs is guarded by the payload
        fingerprint (see :func:`repro.resilience.run_resumable`).
    keep:
        How many recent checkpoints to retain (older ones are pruned).
        Keeping more than one is what makes corruption recoverable: if
        the newest file is damaged, the previous one still loads.
    """

    def __init__(self, directory: PathLike, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = os.fspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # save path
    # ------------------------------------------------------------------
    def save(self, iteration: int, payload: Dict[str, Any]) -> str:
        """Persist one checkpoint; returns its absolute path.

        The checkpoint file lands atomically first, then the manifest is
        rewritten (also atomically) and old checkpoints are pruned. A
        crash between the two steps is safe: the orphan checkpoint is
        rediscovered by the manifest rebuild on the next load.
        """
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        body = json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "iteration": iteration,
                "payload": payload,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        header = json.dumps(
            {"crc32": zlib.crc32(body), "bytes": len(body)},
            separators=(",", ":"),
        ).encode("utf-8")
        name = f"ckpt_{iteration:08d}.json"
        path = os.path.join(self.directory, name)
        with atomic_write(path, "wb") as fh:
            fh.write(header)
            fh.write(b"\n")
            fh.write(body)
        entries = [e for e in self._manifest_entries() if e.file != name]
        entries.append(
            CheckpointInfo(
                file=name, iteration=iteration,
                crc32=zlib.crc32(body), bytes=len(body),
            )
        )
        entries.sort(key=lambda e: e.iteration)
        pruned = entries[:-self.keep]
        entries = entries[-self.keep:]
        self._write_manifest(entries)
        for stale in pruned:
            try:
                os.unlink(os.path.join(self.directory, stale.file))
            except OSError:
                pass
        return path

    def _write_manifest(self, entries: List[CheckpointInfo]) -> None:
        doc = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "entries": [vars(e) for e in entries],
        }
        with atomic_write(
            os.path.join(self.directory, MANIFEST_NAME), "w",
            encoding="utf-8",
        ) as fh:
            json.dump(doc, fh, indent=1)

    # ------------------------------------------------------------------
    # load path
    # ------------------------------------------------------------------
    def _manifest_entries(self) -> List[CheckpointInfo]:
        """Manifest entries (ascending iteration), rebuilt if damaged."""
        path = os.path.join(self.directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            entries = [
                CheckpointInfo(
                    file=str(e["file"]), iteration=int(e["iteration"]),
                    crc32=int(e["crc32"]), bytes=int(e["bytes"]),
                )
                for e in doc["entries"]
            ]
        except FileNotFoundError:
            return self._rebuild_entries()
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning(
                "manifest %s unreadable (%s); rebuilding from directory",
                path, exc,
            )
            return self._rebuild_entries()
        return sorted(entries, key=lambda e: e.iteration)

    def _rebuild_entries(self) -> List[CheckpointInfo]:
        """Recover manifest entries by scanning ``ckpt_*.json`` files."""
        entries: List[CheckpointInfo] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            match = _FILE_RE.match(name)
            if not match:
                continue
            path = os.path.join(self.directory, name)
            try:
                body = _read_verified_body(path)
                doc = json.loads(body)
                entries.append(
                    CheckpointInfo(
                        file=name, iteration=int(doc["iteration"]),
                        crc32=zlib.crc32(body), bytes=len(body),
                    )
                )
            except (OSError, ValueError, KeyError, TypeError,
                    CorruptCheckpointError):
                continue        # damaged stragglers are simply not listed
        return sorted(entries, key=lambda e: e.iteration)

    def entries(self) -> List[CheckpointInfo]:
        """Known checkpoints, ascending by iteration."""
        return self._manifest_entries()

    def load(self, entry: Union[CheckpointInfo, str]) -> Dict[str, Any]:
        """Load and verify one checkpoint; returns its payload dict.

        Raises :class:`~repro.errors.CorruptCheckpointError` if the file
        is damaged, or :class:`~repro.errors.CheckpointError` if missing.
        """
        name = entry.file if isinstance(entry, CheckpointInfo) else entry
        path = os.path.join(self.directory, os.path.basename(name))
        try:
            body = _read_verified_body(path)
        except FileNotFoundError:
            raise CheckpointError(f"{path}: checkpoint file missing") \
                from None
        doc = _parse_body(path, body)
        if isinstance(entry, CheckpointInfo):
            if zlib.crc32(body) != entry.crc32:
                raise CorruptCheckpointError(
                    path, "body does not match manifest checksum"
                )
        return doc["payload"]

    def load_latest(self) -> Optional[LoadedCheckpoint]:
        """The newest checkpoint that verifies, or ``None`` if none do.

        Corrupt or missing checkpoints are skipped (and reported in
        :attr:`LoadedCheckpoint.skipped`) — this is the crash-recovery
        entry point, so it must make progress whenever *any* good
        checkpoint survives.
        """
        skipped: List[str] = []
        for entry in reversed(self._manifest_entries()):
            path = os.path.join(self.directory, entry.file)
            try:
                body = _read_verified_body(path)
                doc = _parse_body(path, body)
            except (CheckpointError, OSError) as exc:
                logger.warning("skipping checkpoint %s: %s", path, exc)
                skipped.append(entry.file)
                continue
            return LoadedCheckpoint(
                iteration=int(doc["iteration"]),
                payload=doc["payload"],
                path=path,
                skipped=skipped,
            )
        return None

    def clear(self) -> None:
        """Delete every checkpoint and the manifest."""
        for entry in self._manifest_entries():
            try:
                os.unlink(os.path.join(self.directory, entry.file))
            except OSError:
                pass
        try:
            os.unlink(os.path.join(self.directory, MANIFEST_NAME))
        except OSError:
            pass


# ----------------------------------------------------------------------
# file-level verification
# ----------------------------------------------------------------------
def _read_verified_body(path: str) -> bytes:
    """Read a checkpoint file and verify its self-checksum header."""
    with open(path, "rb") as fh:
        raw = fh.read()
    newline = raw.find(b"\n")
    if newline < 0:
        raise CorruptCheckpointError(path, "missing header line")
    try:
        header = json.loads(raw[:newline])
        crc = int(header["crc32"])
        size = int(header["bytes"])
    except (ValueError, KeyError, TypeError) as exc:
        raise CorruptCheckpointError(path, f"unreadable header: {exc}") \
            from exc
    body = raw[newline + 1:]
    if len(body) != size:
        raise CorruptCheckpointError(
            path, f"body is {len(body)}B, header promises {size}B"
        )
    if zlib.crc32(body) != crc:
        raise CorruptCheckpointError(path, "body checksum mismatch")
    return body


def _parse_body(path: str, body: bytes) -> Dict[str, Any]:
    try:
        doc = json.loads(body)
    except ValueError as exc:
        raise CorruptCheckpointError(path, f"undecodable body: {exc}") \
            from exc
    if (
        not isinstance(doc, dict)
        or doc.get("format") != CHECKPOINT_FORMAT
        or "payload" not in doc
        or "iteration" not in doc
    ):
        raise CorruptCheckpointError(path, "not an ldme-checkpoint document")
    if int(doc.get("version", -1)) > CHECKPOINT_VERSION:
        raise CorruptCheckpointError(
            path, f"checkpoint version {doc['version']} is newer than "
                  f"this reader ({CHECKPOINT_VERSION})"
        )
    return doc
