"""Deterministic fault injection for resilience testing.

Everything here is *scheduled*, not random: a fault fires for an exact
``(iteration, batch_index, attempt)`` coordinate or an exact byte offset,
so chaos tests are reproducible run-to-run. Three fault families:

* **Worker faults** — :class:`FaultInjector` is installed into
  :class:`repro.distributed.MultiprocessLDME`; forked pool workers call
  :meth:`FaultInjector.on_worker_batch` at the start of each batch and
  hard-crash (``os._exit``), sleep, or raise according to the plan.
  Keying on ``attempt`` lets a schedule crash a batch once and let its
  retry succeed.
* **File corruption** — :func:`flip_bit` / :func:`truncate_file` /
  :func:`partial_write` damage artifacts on disk the way real storage
  does (bit rot, torn writes, interrupted copies), for exercising the
  checksummed readers.
* **Serve chaos** — the schedule helpers are reused by the load
  generator's chaos mode (:mod:`repro.serve.loadgen`), and
  :class:`ClusterFaultPlan` schedules replica-level faults (kill /
  restart / corrupt-swap) against a
  :class:`~repro.serve.cluster.SummaryCluster` at exact query-progress
  marks, so a cluster chaos run replays the identical fault sequence
  every time.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "WorkerFault",
    "FaultInjector",
    "WorkerFaultError",
    "ReplicaFault",
    "ClusterFaultPlan",
    "MigrationFault",
    "MigrationFaultPlan",
    "flip_bit",
    "truncate_file",
    "partial_write",
    "torn_tail",
    "CRASH_EXIT_CODE",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Exit code used by injected worker crashes (recognizable in waitpid logs).
CRASH_EXIT_CODE = 23

_KINDS = ("crash", "slow", "exception")


class WorkerFaultError(RuntimeError):
    """The exception an ``exception``-kind worker fault raises."""


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled fault inside a parallel merge worker.

    Parameters
    ----------
    iteration:
        LDME iteration (1-based) the fault fires in.
    batch_index:
        Worker-batch index within that iteration (0-based).
    attempt:
        Which submission attempt to hit (0 = first run, 1 = first retry,
        ...). Crashing at ``attempt=0`` only is the canonical
        "transient crash, retry succeeds" scenario.
    kind:
        ``"crash"`` (``os._exit`` — simulates SIGKILL/OOM),
        ``"slow"`` (sleep ``delay`` seconds — simulates a hung batch), or
        ``"exception"`` (raise :class:`WorkerFaultError` — simulates a
        poison-pill input).
    delay:
        Sleep duration for ``"slow"`` faults.
    """

    iteration: int
    batch_index: int
    attempt: int = 0
    kind: str = "crash"
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.kind == "slow" and self.delay <= 0:
            raise ValueError("slow faults need a positive delay")


@dataclass
class FaultInjector:
    """A deterministic schedule of :class:`WorkerFault` entries.

    The injector is inherited by forked pool workers, so each child sees
    the full schedule; a fault fires in whichever process evaluates its
    coordinate. The parent-side ``triggered`` log only records faults
    evaluated in the parent (serial fallback never consults the injector,
    by design — fallback must be fault-free).
    """

    faults: List[WorkerFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key: Dict[Tuple[int, int, int], WorkerFault] = {}
        for fault in self.faults:
            key = (fault.iteration, fault.batch_index, fault.attempt)
            if key in self._by_key:
                raise ValueError(f"duplicate fault for coordinate {key}")
            self._by_key[key] = fault
        self.triggered: List[Tuple[int, int, int]] = []

    def planned(self, iteration: int, batch_index: int,
                attempt: int) -> Optional[WorkerFault]:
        """The fault scheduled for a coordinate, if any (no side effects)."""
        return self._by_key.get((iteration, batch_index, attempt))

    def on_worker_batch(self, iteration: int, batch_index: int,
                        attempt: int) -> None:
        """Fire the fault scheduled for this coordinate, if any.

        Called at the top of every worker batch. ``crash`` faults
        terminate the *process* immediately (bypassing ``finally`` blocks
        and pool bookkeeping — exactly what a SIGKILL does).
        """
        fault = self._by_key.get((iteration, batch_index, attempt))
        if fault is None:
            return
        self.triggered.append((iteration, batch_index, attempt))
        if fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        elif fault.kind == "slow":
            time.sleep(fault.delay)
        else:
            raise WorkerFaultError(
                f"injected fault at iteration {iteration}, "
                f"batch {batch_index}, attempt {attempt}"
            )


_REPLICA_ACTIONS = ("kill", "restart", "swap", "corrupt_swap")


@dataclass(frozen=True)
class ReplicaFault:
    """One scheduled fault against a serving replica set.

    Parameters
    ----------
    at_progress:
        Fire when the load generator's completed-query counter reaches
        this value (progress marks, not wall-clock — reproducible).
    replica:
        Target replica index (ignored by swap actions, which roll the
        whole fleet).
    action:
        ``"kill"`` (abrupt replica death — connections reset, no drain),
        ``"restart"`` (bring a killed replica back on its port),
        ``"swap"`` (rolling hot-swap to the summary at ``path``), or
        ``"corrupt_swap"`` (flip a bit in ``path`` first, then attempt
        the rolling swap — the checksummed loader must reject it before
        any replica is touched).
    path:
        Summary file for the swap actions. A shard-manifest *directory*
        also works against a sharded cluster: ``corrupt_swap`` then
        flips a bit in one shard artifact (the last ``shard-*.ldmeb``,
        deterministically) and the manifest CRC check must reject the
        whole swap.
    """

    at_progress: int
    replica: int = 0
    action: str = "kill"
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at_progress < 0:
            raise ValueError("at_progress must be non-negative")
        if self.action not in _REPLICA_ACTIONS:
            raise ValueError(
                f"action must be one of {_REPLICA_ACTIONS}, "
                f"got {self.action!r}"
            )
        if self.action in ("swap", "corrupt_swap") and not self.path:
            raise ValueError(f"{self.action} faults need a summary path")


class ClusterFaultPlan:
    """A deterministic schedule of :class:`ReplicaFault` entries.

    Bound to a :class:`~repro.serve.cluster.SummaryCluster` (duck-typed:
    anything with ``kill`` / ``restart`` / ``rolling_swap``) and fed to
    :func:`repro.serve.loadgen.run_load` as its ``on_progress`` callback::

        plan = ClusterFaultPlan(cluster, [
            ReplicaFault(at_progress=100, replica=1, action="kill"),
            ReplicaFault(at_progress=300, replica=2,
                         action="corrupt_swap", path=str(bad)),
            ReplicaFault(at_progress=500, replica=1, action="restart"),
        ])
        report = run_load(..., on_progress=plan.on_progress)

    Each fault fires exactly once, in ``at_progress`` order, from
    whichever worker thread crosses the mark; firing is serialized so
    two workers never race the same fault. ``triggered`` records the
    sequence; ``swap_reports`` collects the outcome of swap actions;
    ``errors`` collects exceptions raised by fault actions (a fault that
    cannot fire must not take the load run down with it).
    """

    def __init__(self, cluster: object,
                 faults: List[ReplicaFault]) -> None:
        self.cluster = cluster
        self.faults = sorted(faults, key=lambda f: f.at_progress)
        self.triggered: List[Tuple[int, str, int]] = []
        self.swap_reports: List[object] = []
        self.errors: List[Exception] = []
        self._next = 0
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        with self._lock:
            return self._next >= len(self.faults)

    def on_progress(self, done: int) -> None:
        """Fire every not-yet-fired fault whose mark has been reached."""
        while True:
            with self._lock:
                if self._next >= len(self.faults):
                    return
                fault = self.faults[self._next]
                if done < fault.at_progress:
                    return
                self._next += 1
                self.triggered.append(
                    (fault.at_progress, fault.action, fault.replica)
                )
            self._fire(fault)

    def _fire(self, fault: ReplicaFault) -> None:
        try:
            if fault.action == "kill":
                self.cluster.kill(fault.replica)
            elif fault.action == "restart":
                self.cluster.restart(fault.replica)
            else:
                if fault.action == "corrupt_swap":
                    flip_bit(_corruption_target(fault.path))
                report = self.cluster.rolling_swap(str(fault.path))
                self.swap_reports.append(report)
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            self.errors.append(exc)


_MIGRATION_ACTIONS = ("kill", "corrupt")


@dataclass(frozen=True)
class MigrationFault:
    """One scheduled fault against a re-shard migration coordinator.

    Parameters
    ----------
    step:
        The migration-journal step to fire at (``"plan"``, ``"build"``,
        ``"built"``, ``"prepare"`` or ``"commit"``). The hook runs right
        after the coordinator *persists* that step — inside its crash
        window, when the journal already names the step but its work has
        not completed.
    action:
        ``"kill"`` raises
        :class:`~repro.shard.migrate.CoordinatorKilledError`, the
        in-process stand-in for SIGKILLing the coordinator: the
        coordinator never catches it, so whatever the journal and the
        generation store say at that instant is exactly what a resuming
        coordinator finds. ``"corrupt"`` flips a bit in ``path`` (a
        staged generation's shard artifact, or a manifest directory —
        same target rule as ``corrupt_swap``) and lets the migration run
        on into the damage, which the CRC checks must catch.
    path:
        Corruption target for ``"corrupt"`` faults.
    """

    step: str
    action: str = "kill"
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in _MIGRATION_ACTIONS:
            raise ValueError(
                f"action must be one of {_MIGRATION_ACTIONS}, "
                f"got {self.action!r}"
            )
        if self.action == "corrupt" and not self.path:
            raise ValueError("corrupt faults need a target path")


class MigrationFaultPlan:
    """A deterministic schedule of :class:`MigrationFault` entries.

    Pass :meth:`on_step` as a
    :class:`~repro.shard.migrate.MigrationCoordinator`'s ``on_step``
    hook::

        plan = MigrationFaultPlan([MigrationFault(step="prepare")])
        coord = MigrationCoordinator(store, on_step=plan.on_step)

    Each fault fires exactly once (the first time its step is reached),
    so a killed-then-resumed coordinator passes the same step again
    without re-dying — which is what lets one plan drive a whole
    kill/resume round trip. ``triggered`` records the firing order.
    """

    def __init__(self, faults: List[MigrationFault]) -> None:
        self.faults = list(faults)
        self.triggered: List[Tuple[str, str]] = []
        self._fired = [False] * len(self.faults)
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        with self._lock:
            return all(self._fired)

    def on_step(self, step: str) -> None:
        """Fire every not-yet-fired fault scheduled for ``step``."""
        for i, fault in enumerate(self.faults):
            with self._lock:
                if self._fired[i] or fault.step != step:
                    continue
                self._fired[i] = True
                self.triggered.append((step, fault.action))
            if fault.action == "corrupt":
                flip_bit(_corruption_target(fault.path))
            else:
                # Imported lazily: resilience is a lower layer than shard.
                from ..shard.migrate import CoordinatorKilledError

                raise CoordinatorKilledError(
                    f"injected coordinator kill at step {step!r}"
                )


def _corruption_target(path: PathLike) -> str:
    """The file a ``corrupt_swap`` fault damages.

    A plain summary file is damaged directly. A shard-manifest directory
    gets exactly one shard artifact damaged — the last ``shard-*.ldmeb``
    in sorted order, so the choice is deterministic run-to-run.
    """
    path = os.fspath(path)
    if not os.path.isdir(path):
        return path
    shard_files = sorted(
        name for name in os.listdir(path)
        if name.startswith("shard-") and name.endswith(".ldmeb")
    )
    if not shard_files:
        raise FileNotFoundError(
            f"{path}: no shard-*.ldmeb artifacts to corrupt"
        )
    return os.path.join(path, shard_files[-1])


# ----------------------------------------------------------------------
# on-disk corruption
# ----------------------------------------------------------------------
def flip_bit(path: PathLike, byte_offset: Optional[int] = None,
             bit: int = 0) -> int:
    """Flip one bit of the file in place; returns the byte offset used.

    With ``byte_offset=None`` the middle byte is flipped — deterministic
    and safely inside the payload of any non-trivial artifact.
    """
    if not 0 <= bit <= 7:
        raise ValueError("bit must be in [0, 7]")
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"{path}: cannot flip a bit in an empty file")
    offset = size // 2 if byte_offset is None else byte_offset
    if not 0 <= offset < size:
        raise ValueError(f"byte_offset {offset} outside file of {size}B")
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)[0]
        fh.seek(offset)
        fh.write(bytes([original ^ (1 << bit)]))
    return offset


def truncate_file(path: PathLike, keep_fraction: float = 0.5) -> int:
    """Truncate the file to a fraction of its size; returns bytes kept.

    Simulates an interrupted copy or a partially-flushed non-atomic
    write.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = os.fspath(path)
    keep = int(os.path.getsize(path) * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def partial_write(path: PathLike, data: bytes,
                  write_fraction: float = 0.5) -> int:
    """Write only a prefix of ``data`` to ``path`` (a torn write).

    This is the failure mode :func:`repro.ioutil.atomic_write` exists to
    prevent; tests use it to show what *non*-atomic writers would have
    left behind. Returns the number of bytes written.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    count = int(len(data) * write_fraction)
    with open(os.fspath(path), "wb") as fh:
        fh.write(data[:count])
    return count


def torn_tail(path: PathLike, keep_records: int,
              torn_bytes: int = 3) -> int:
    """Tear a WAL segment mid-record; returns the resulting file size.

    Keeps the header plus the first ``keep_records`` intact records, then
    appends ``torn_bytes`` bytes of the *next* record's frame (or, when no
    record follows, a garbage partial frame) — exactly what a crash
    between ``write()`` and ``fsync()`` leaves behind. Any sealed footer
    is removed in the process, so the segment reads as active-and-torn.
    Complements :func:`flip_bit` / :func:`truncate_file`: those damage
    *acknowledged* bytes (recovery must refuse), while a torn tail is
    the one damage class recovery repairs silently (the bytes were never
    acknowledged).
    """
    if keep_records < 0:
        raise ValueError("keep_records must be non-negative")
    if torn_bytes < 1:
        raise ValueError("torn_bytes must be positive")
    # Imported lazily: resilience is a lower layer than ingest, and this
    # helper is the one place the dependency points upward.
    from ..ingest import wal as wal_mod

    path = os.fspath(path)
    info = wal_mod.read_segment(path)
    if keep_records > len(info.records):
        raise ValueError(
            f"{path}: segment has {len(info.records)} records, "
            f"cannot keep {keep_records}"
        )
    with open(path, "rb") as fh:
        data = fh.read()
    # Re-walk the frames to find the byte offset after `keep_records`.
    offset = len(data)
    end = len(data) - (wal_mod.FOOTER_BYTES if info.sealed else 0)
    pos = wal_mod.header_end(data, path)
    for count in range(len(info.records) + 1):
        if count == keep_records:
            offset = pos
            break
        length = wal_mod.frame_length(data, pos)
        pos += length
    if offset + torn_bytes <= end:
        # Keep a partial prefix of the next frame: a genuine mid-record
        # tear whose CRC cannot match.
        tail = data[offset:offset + torn_bytes]
    else:
        tail = b"\xff" * torn_bytes
    with open(path, "wb") as fh:
        fh.write(data[:offset])
        fh.write(tail)
        fh.flush()
        os.fsync(fh.fileno())
    return offset + torn_bytes


def checksum_bytes(data: bytes) -> int:
    """CRC32 helper mirroring what the checkpoint/binary formats store."""
    return zlib.crc32(data)
