"""Compact binary serialization of summaries (``.ldmeb``).

The text format in :mod:`repro.graph.io` is debuggable; this module is the
storage-oriented counterpart: a varint-coded binary layout whose size is
what :func:`repro.metrics.summary_size_bits` models. Layout (all integers
LEB128 varints):

```
magic "LDMB" | version | num_nodes | num_edges
num_supernodes | per supernode: id, member_count, gap-coded sorted members
num_superedges | gap-coded sorted (a, b) pairs (loops included)
|C+| | gap-coded sorted pairs
|C-| | gap-coded sorted pairs
crc32 (4 bytes LE, over everything above) | magic "LDMZ"     [version >= 2]
```

Gap coding: pairs are sorted lexicographically; the first component is
delta-coded against the previous pair's first component, the second stored
raw. This keeps real summaries a fraction of the text format's size.

Corruption safety (version 2, the default): the trailing footer carries a
CRC32 of the entire preceding byte stream, so a truncated download, a
torn write, or a flipped bit raises a typed
:class:`~repro.errors.CorruptSummaryError` instead of deserializing
garbage. Version-1 files (no footer) remain readable. Writes to a path go
through :func:`repro.ioutil.atomic_write`, so an interrupted write never
clobbers a previous good file.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import IO, List, Tuple, Union

from .core.summary import CorrectionSet, Summarization
from .errors import CorruptSummaryError
from .ioutil import atomic_write

__all__ = [
    "write_summary_binary",
    "read_summary_binary",
    "CorruptSummaryError",
]

MAGIC = b"LDMB"
FOOTER_MAGIC = b"LDMZ"
VERSION = 2
#: Versions this reader understands.
SUPPORTED_VERSIONS = (1, 2)

_CRC = struct.Struct("<I")
FOOTER_BYTES = _CRC.size + len(FOOTER_MAGIC)

Edge = Tuple[int, int]
PathLike = Union[str, "os.PathLike[str]"]
#: Destination/source: a filesystem path or an open binary file object
#: (``io.BytesIO``, a socket makefile, a pipe...).
FileOrPath = Union[PathLike, IO[bytes]]


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------
def _write_varint(out: IO[bytes], value: int) -> None:
    if value < 0:
        raise ValueError("varints encode non-negative integers")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, pos: int,
                 path: str = "<data>") -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptSummaryError(path, "truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_pairs(out: IO[bytes], pairs: List[Edge]) -> None:
    """Sorted pair list with first components gap-coded."""
    ordered = sorted(pairs)
    _write_varint(out, len(ordered))
    previous = 0
    for a, b in ordered:
        _write_varint(out, a - previous)
        _write_varint(out, b)
        previous = a


def _read_pairs(data: bytes, pos: int,
                path: str = "<data>") -> Tuple[List[Edge], int]:
    count, pos = _read_varint(data, pos, path)
    pairs: List[Edge] = []
    previous = 0
    for _ in range(count):
        gap, pos = _read_varint(data, pos, path)
        b, pos = _read_varint(data, pos, path)
        a = previous + gap
        pairs.append((a, b))
        previous = a
    return pairs, pos


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
class _CrcWriter:
    """Tiny pass-through sink accumulating the CRC32 of what it writes."""

    def __init__(self, out: IO[bytes]) -> None:
        self._out = out
        self.crc = 0

    def write(self, data: bytes) -> int:
        self.crc = zlib.crc32(data, self.crc)
        return self._out.write(data)


def _write_payload(summary: Summarization, raw: IO[bytes]) -> None:
    out = _CrcWriter(raw)
    out.write(MAGIC)
    _write_varint(out, VERSION)
    _write_varint(out, summary.num_nodes)
    _write_varint(out, summary.num_edges)
    sids = summary.supernode_ids()
    _write_varint(out, len(sids))
    for sid in sids:
        _write_varint(out, sid)
        members = sorted(summary.members(sid))
        _write_varint(out, len(members))
        previous = 0
        for member in members:
            _write_varint(out, member - previous)
            previous = member
    _write_pairs(out, list(summary.superedges))
    _write_pairs(out, list(summary.corrections.additions))
    _write_pairs(out, list(summary.corrections.deletions))
    raw.write(_CRC.pack(out.crc))
    raw.write(FOOTER_MAGIC)


def write_summary_binary(summary: Summarization, dest: FileOrPath) -> int:
    """Serialize ``summary``; returns the number of bytes written.

    ``dest`` may be a path or any open binary file object (which is left
    open, written from its current position). Path destinations are
    written atomically (temp file + fsync + rename), so a crash mid-write
    leaves any previous file at that path intact.
    """
    if hasattr(dest, "write"):
        out: IO[bytes] = dest  # type: ignore[assignment]
        start = out.tell() if out.seekable() else None
        _write_payload(summary, out)
        if start is not None:
            return out.tell() - start
        return -1           # unseekable sink: size unknown
    path = os.fspath(dest)
    with atomic_write(path, "wb") as out:
        _write_payload(summary, out)
    return os.path.getsize(path)


def _check_footer(data: bytes, path: str) -> bytes:
    """Validate the version-2 footer; returns the payload bytes."""
    if len(data) < FOOTER_BYTES:
        raise CorruptSummaryError(path, "file too short for checksum footer")
    if data[-len(FOOTER_MAGIC):] != FOOTER_MAGIC:
        raise CorruptSummaryError(
            path, "missing footer magic (truncated or torn write)"
        )
    payload = data[:-FOOTER_BYTES]
    (stored,) = _CRC.unpack(data[-FOOTER_BYTES:-len(FOOTER_MAGIC)])
    actual = zlib.crc32(payload)
    if stored != actual:
        raise CorruptSummaryError(
            path,
            f"checksum mismatch (stored {stored:#010x}, "
            f"computed {actual:#010x})",
        )
    return payload


def read_summary_binary(source: FileOrPath) -> Summarization:
    """Deserialize a summary written by :func:`write_summary_binary`.

    ``source`` may be a path or an open binary file object; a file
    object is consumed to EOF (the format is self-delimiting only via
    the trailing-bytes check, matching the path behaviour).

    Raises :class:`~repro.errors.CorruptSummaryError` (a
    :class:`ValueError` subclass) on any malformed, truncated, or
    checksum-failing input.
    """
    if hasattr(source, "read"):
        data = source.read()  # type: ignore[union-attr]
        path: str = getattr(source, "name", "<stream>")
    else:
        path = os.fspath(source)
        with open(path, "rb") as fh:
            data = fh.read()
    if data[:4] != MAGIC:
        raise CorruptSummaryError(path, "not an LDMB summary file")
    pos = 4
    version, pos = _read_varint(data, pos, path)
    if version not in SUPPORTED_VERSIONS:
        raise CorruptSummaryError(path, f"unsupported version {version}")
    if version >= 2:
        payload = _check_footer(data, path)
    else:
        payload = data
    num_nodes, pos = _read_varint(payload, pos, path)
    num_edges, pos = _read_varint(payload, pos, path)
    num_supers, pos = _read_varint(payload, pos, path)
    members = {}
    for _ in range(num_supers):
        sid, pos = _read_varint(payload, pos, path)
        count, pos = _read_varint(payload, pos, path)
        mem: List[int] = []
        previous = 0
        for _ in range(count):
            gap, pos = _read_varint(payload, pos, path)
            previous += gap
            mem.append(previous)
        members[sid] = mem
    superedges, pos = _read_pairs(payload, pos, path)
    additions, pos = _read_pairs(payload, pos, path)
    deletions, pos = _read_pairs(payload, pos, path)
    if pos != len(payload):
        raise CorruptSummaryError(
            path, f"{len(payload) - pos} trailing bytes"
        )
    try:
        return Summarization.from_members(
            num_nodes=num_nodes,
            members=members,
            superedges=superedges,
            corrections=CorrectionSet(additions, deletions),
            num_edges=num_edges,
            algorithm="loaded-binary",
        )
    except ValueError as exc:
        # Checksum-valid bytes can still describe an impossible summary
        # (hand-crafted or version-1 bit rot); keep the error typed.
        raise CorruptSummaryError(path, f"invalid summary structure: {exc}") \
            from exc
