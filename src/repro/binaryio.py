"""Compact binary serialization of summaries (``.ldmeb``).

The text format in :mod:`repro.graph.io` is debuggable; this module is the
storage-oriented counterpart: a varint-coded binary layout whose size is
what :func:`repro.metrics.summary_size_bits` models. Layout (all integers
LEB128 varints):

```
magic "LDMB" | version | num_nodes | num_edges
num_supernodes | per supernode: id, member_count, gap-coded sorted members
num_superedges | gap-coded sorted (a, b) pairs (loops included)
|C+| | gap-coded sorted pairs
|C-| | gap-coded sorted pairs
```

Gap coding: pairs are sorted lexicographically; the first component is
delta-coded against the previous pair's first component, the second stored
raw. This keeps real summaries a fraction of the text format's size.
"""

from __future__ import annotations

import os
from typing import IO, List, Tuple, Union

from .core.summary import CorrectionSet, Summarization

__all__ = ["write_summary_binary", "read_summary_binary"]

MAGIC = b"LDMB"
VERSION = 1

Edge = Tuple[int, int]
PathLike = Union[str, "os.PathLike[str]"]
#: Destination/source: a filesystem path or an open binary file object
#: (``io.BytesIO``, a socket makefile, a pipe...).
FileOrPath = Union[PathLike, IO[bytes]]


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------
def _write_varint(out: IO[bytes], value: int) -> None:
    if value < 0:
        raise ValueError("varints encode non-negative integers")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_pairs(out: IO[bytes], pairs: List[Edge]) -> None:
    """Sorted pair list with first components gap-coded."""
    ordered = sorted(pairs)
    _write_varint(out, len(ordered))
    previous = 0
    for a, b in ordered:
        _write_varint(out, a - previous)
        _write_varint(out, b)
        previous = a


def _read_pairs(data: bytes, pos: int) -> Tuple[List[Edge], int]:
    count, pos = _read_varint(data, pos)
    pairs: List[Edge] = []
    previous = 0
    for _ in range(count):
        gap, pos = _read_varint(data, pos)
        b, pos = _read_varint(data, pos)
        a = previous + gap
        pairs.append((a, b))
        previous = a
    return pairs, pos


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def _write_payload(summary: Summarization, out: IO[bytes]) -> None:
    out.write(MAGIC)
    _write_varint(out, VERSION)
    _write_varint(out, summary.num_nodes)
    _write_varint(out, summary.num_edges)
    sids = summary.supernode_ids()
    _write_varint(out, len(sids))
    for sid in sids:
        _write_varint(out, sid)
        members = sorted(summary.members(sid))
        _write_varint(out, len(members))
        previous = 0
        for member in members:
            _write_varint(out, member - previous)
            previous = member
    _write_pairs(out, list(summary.superedges))
    _write_pairs(out, list(summary.corrections.additions))
    _write_pairs(out, list(summary.corrections.deletions))


def write_summary_binary(summary: Summarization, dest: FileOrPath) -> int:
    """Serialize ``summary``; returns the number of bytes written.

    ``dest`` may be a path or any open binary file object (which is left
    open, written from its current position).
    """
    if hasattr(dest, "write"):
        out: IO[bytes] = dest  # type: ignore[assignment]
        start = out.tell() if out.seekable() else None
        _write_payload(summary, out)
        if start is not None:
            return out.tell() - start
        return -1           # unseekable sink: size unknown
    with open(os.fspath(dest), "wb") as out:
        _write_payload(summary, out)
    return os.path.getsize(os.fspath(dest))


def read_summary_binary(source: FileOrPath) -> Summarization:
    """Deserialize a summary written by :func:`write_summary_binary`.

    ``source`` may be a path or an open binary file object; a file
    object is consumed to EOF (the format is self-delimiting only via
    the trailing-bytes check, matching the path behaviour).
    """
    if hasattr(source, "read"):
        data = source.read()  # type: ignore[union-attr]
        path: str = getattr(source, "name", "<stream>")
    else:
        path = os.fspath(source)
        with open(path, "rb") as fh:
            data = fh.read()
    if data[:4] != MAGIC:
        raise ValueError(f"{path}: not an LDMB summary file")
    pos = 4
    version, pos = _read_varint(data, pos)
    if version != VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    num_nodes, pos = _read_varint(data, pos)
    num_edges, pos = _read_varint(data, pos)
    num_supers, pos = _read_varint(data, pos)
    members = {}
    for _ in range(num_supers):
        sid, pos = _read_varint(data, pos)
        count, pos = _read_varint(data, pos)
        mem: List[int] = []
        previous = 0
        for _ in range(count):
            gap, pos = _read_varint(data, pos)
            previous += gap
            mem.append(previous)
        members[sid] = mem
    superedges, pos = _read_pairs(data, pos)
    additions, pos = _read_pairs(data, pos)
    deletions, pos = _read_pairs(data, pos)
    if pos != len(data):
        raise ValueError(f"{path}: {len(data) - pos} trailing bytes")
    return Summarization.from_members(
        num_nodes=num_nodes,
        members=members,
        superedges=superedges,
        corrections=CorrectionSet(additions, deletions),
        num_edges=num_edges,
        algorithm="loaded-binary",
    )
