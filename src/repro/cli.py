"""Command-line interface.

``ldme`` (installed via the console script) exposes the library's main
workflows::

    ldme summarize graph.txt --k 5 --iterations 20 -o out.summary
    ldme reconstruct out.summary -o rebuilt.txt
    ldme stats graph.txt
    ldme experiment fig2 fig4
    ldme datasets
    ldme serve out.summary --port 7421
    ldme query neighbors 12 --port 7421
    ldme summarize big.txt --checkpoint-dir ckpts/   # crash-safe resume
    ldme loadgen --port 7421 --chaos
    ldme shard-summarize big.txt --shards 4 -o manifest/
    ldme serve-cluster --manifest manifest/ --replicas 2
    ldme migrate store/ --init --graph big.txt --shards 2
    ldme migrate store/ --graph big.txt --shards 3   # elastic re-shard
    ldme ingest updates.stream --wal-dir wal/ --num-nodes 100000
    ldme ingest --listen 7500 --wal-dir wal/ --num-nodes 100000 --cluster 2

Graphs are plain edge-list files (``u v`` per line, ``#`` comments).
``python -m repro ...`` works identically without the console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baselines.sweg import SWeG
from .core.ldme import LDME
from .core.reconstruct import reconstruct
from .experiments.reporting import format_result, format_table
from .experiments.runner import EXPERIMENTS, run_all
from .graph import datasets
from .graph.io import load_graph, read_summary, save_graph, write_summary
from .graph.stats import graph_stats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="ldme",
        description="Correction-set graph summarization with weighted LSH.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="summarize a graph file")
    p_sum.add_argument("graph", help="edge-list (or .adj) graph file")
    p_sum.add_argument("--algorithm", choices=("ldme", "sweg"), default="ldme")
    p_sum.add_argument("--k", type=int, default=5, help="DOPH signature length")
    p_sum.add_argument("--iterations", "-T", type=int, default=20)
    p_sum.add_argument("--epsilon", type=float, default=0.0,
                       help="lossy error bound (0 = lossless)")
    p_sum.add_argument("--seed", type=int, default=0)
    p_sum.add_argument("--kernels", choices=("numpy", "python"),
                       default="numpy",
                       help="hot-path backend for LDME: vectorized numpy "
                            "kernels (default) or the pure-Python reference "
                            "(bit-identical output; see docs/performance.md)")
    p_sum.add_argument("--num-workers", type=int, default=1,
                       help="worker processes (>1 uses the supervised "
                            "multiprocess LDME driver)")
    p_sum.add_argument("--shared-memory", choices=("auto", "on", "off"),
                       default="auto",
                       help="zero-copy worker transport with --num-workers: "
                            "place the CSR in shared-memory arenas so "
                            "workers attach instead of unpickling batches "
                            "(auto = use when available; see "
                            "docs/performance.md)")
    p_sum.add_argument("--doph-chunk-rows", type=int, default=0,
                       metavar="N",
                       help="cache-block the DOPH scatter kernel into "
                            "N-entry chunks (0 = auto; bit-identical for "
                            "any value)")
    p_sum.add_argument("--encode-partitions", type=int, default=0,
                       metavar="P",
                       help="partition the encode sort into P value-range "
                            "buckets (0 = single global lexsort; "
                            "bit-identical for any value)")
    p_sum.add_argument("--output", "-o", help="write the summary to this path")
    p_sum.add_argument("--resume-from", metavar="CKPT",
                       help="warm-start from a partition checkpoint")
    p_sum.add_argument("--checkpoint", metavar="CKPT",
                       help="write the final partition checkpoint here")
    p_sum.add_argument("--checkpoint-dir", metavar="DIR",
                       help="checkpoint loop state into DIR every "
                            "--checkpoint-every iterations; an interrupted "
                            "run re-launched with the same flags resumes "
                            "from the last good checkpoint")
    p_sum.add_argument("--checkpoint-every", type=int, default=1,
                       metavar="N",
                       help="iterations between checkpoints (default 1)")
    p_sum.add_argument("--trace", metavar="PATH",
                       help="record a span trace of the run and export it "
                            "as JSONL to PATH")
    p_sum.add_argument("--profile", action="store_true",
                       help="print per-kernel self-time attribution after "
                            "the run (numpy kernels)")
    p_sum.add_argument("--no-resume", action="store_true",
                       help="ignore existing checkpoints in "
                            "--checkpoint-dir and start fresh")
    p_sum.add_argument("--chunked", action="store_true",
                       help="bounded-memory edge-list ingestion")

    p_rec = sub.add_parser("reconstruct", help="rebuild a graph from a summary")
    p_rec.add_argument("summary", help="summary file written by 'summarize'")
    p_rec.add_argument("--output", "-o", required=True,
                       help="edge-list output path")

    p_stats = sub.add_parser("stats", help="print statistics of a graph file")
    p_stats.add_argument("graph")

    p_exp = sub.add_parser("experiment", help="run paper experiments")
    p_exp.add_argument(
        "names",
        nargs="*",
        help=f"experiments to run (default all): {', '.join(EXPERIMENTS)}",
    )
    p_exp.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="output format for the result rows",
    )
    p_exp.add_argument(
        "--output-dir", metavar="DIR",
        help="also save each result as DIR/<experiment>.csv (or .json)",
    )

    sub.add_parser("datasets", help="list the Table 1 dataset surrogates")

    p_cmp = sub.add_parser(
        "compare", help="run several algorithms on one graph side by side"
    )
    p_cmp.add_argument("graph")
    p_cmp.add_argument(
        "--algorithms",
        nargs="+",
        default=["ldme5", "ldme20", "sweg"],
        choices=["ldme5", "ldme20", "sweg", "mosso", "randomized", "sags"],
    )
    p_cmp.add_argument("--iterations", "-T", type=int, default=10)
    p_cmp.add_argument("--seed", type=int, default=0)

    p_ana = sub.add_parser(
        "analyze", help="run analytics directly on a summary file"
    )
    p_ana.add_argument("summary", help="summary file (text or .ldmeb binary)")
    p_ana.add_argument("--top", type=int, default=5,
                       help="how many top-degree nodes to list")

    p_str = sub.add_parser(
        "stream", help="replay a +/- edge stream and summarize the result"
    )
    p_str.add_argument("stream", help="stream file of '+ u v' / '- u v' lines")
    p_str.add_argument("--num-nodes", type=int, required=True)
    p_str.add_argument("--sample-size", type=int, default=120)
    p_str.add_argument("--seed", type=int, default=0)
    p_str.add_argument("--output", "-o", help="write the snapshot summary")

    p_ing = sub.add_parser(
        "ingest",
        help="durable streaming ingestion: WAL-backed online "
             "summarization with crash recovery (see docs/streaming.md)",
    )
    p_ing.add_argument("stream", nargs="?",
                       help="stream file of '+ u v' / '- u v' lines; omit "
                            "when using --listen")
    p_ing.add_argument("--listen", type=int, metavar="PORT",
                       help="accept live events over TCP on this port "
                            "instead of replaying a stream file "
                            "(0 = ephemeral; replies 'ack <seq>' after "
                            "the event is durable)")
    p_ing.add_argument("--wal-dir", required=True, metavar="DIR",
                       help="write-ahead-log directory; re-running with "
                            "the same DIR recovers (checkpoint + replay) "
                            "and resumes exactly where the log ends")
    p_ing.add_argument("--checkpoint-dir", metavar="DIR",
                       help="snapshot checkpoints (default: "
                            "WAL_DIR/checkpoints)")
    p_ing.add_argument("--num-nodes", type=int, required=True)
    p_ing.add_argument("--snapshot-every", type=int, default=0, metavar="N",
                       help="events between snapshot checkpoints "
                            "(0 = only the final one at shutdown)")
    p_ing.add_argument("--sample-size", type=int, default=120)
    p_ing.add_argument("--seed", type=int, default=0)
    p_ing.add_argument("--segment-bytes", type=int, default=1 << 20,
                       help="WAL segment rotation threshold")
    p_ing.add_argument("--queue-max", type=int, default=4096,
                       help="backpressure bound on accepted-but-unlogged "
                            "events")
    p_ing.add_argument("--no-fsync", action="store_true",
                       help="skip per-batch fsync (forfeits the "
                            "durability guarantee; benchmarks only)")
    p_ing.add_argument("--ack-log", metavar="PATH",
                       help="append every acknowledged seq to PATH "
                            "(flushed per batch; the chaos gate's "
                            "zero-loss evidence)")
    p_ing.add_argument("--cluster", type=int, default=0, metavar="N",
                       help="also serve N replicas and hot-swap them on "
                            "every snapshot (zero downtime)")
    p_ing.add_argument("--port-base", type=int, default=0,
                       help="with --cluster: first replica port "
                            "(0 = ephemeral)")
    p_ing.add_argument("--output", "-o",
                       help="write the final snapshot summary here on "
                            "clean shutdown")

    p_eval = sub.add_parser(
        "evaluate",
        help="score a summary's partition against ground-truth labels",
    )
    p_eval.add_argument("summary", help="summary file (text or .ldmeb)")
    p_eval.add_argument("labels", help="labels file: 'node label' per line")

    p_srv = sub.add_parser(
        "serve", help="serve summary queries over TCP (see docs/serving.md)"
    )
    p_srv.add_argument("summary", help="summary file (text or .ldmeb)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7421,
                       help="listen port (0 = ephemeral)")
    p_srv.add_argument("--batch-window", type=float, default=0.002,
                       help="seconds to coalesce queries into one batch")
    p_srv.add_argument("--max-batch", type=int, default=128)
    p_srv.add_argument("--cache-size", type=int, default=4096,
                       help="LRU result-cache entries (0 disables)")
    p_srv.add_argument("--max-pending", type=int, default=1024,
                       help="admission-control bound on queued queries")
    p_srv.add_argument("--request-timeout", type=float, default=5.0)
    p_srv.add_argument("--log-interval", type=float, default=30.0,
                       help="metrics heartbeat period (0 disables)")
    p_srv.add_argument("--metrics-port", type=int, default=None,
                       help="also serve Prometheus text metrics over HTTP "
                            "on this port (GET /metrics; 0 = ephemeral)")
    p_srv.add_argument("--trace", metavar="PATH",
                       help="record batch-execution spans and export them "
                            "as JSONL to PATH on shutdown")
    p_srv.add_argument("--profile", action="store_true",
                       help="sample the event-loop thread and print a "
                            "profile on shutdown")
    p_srv.add_argument("--allow-reload", action="store_true",
                       help="permit clients to hot-swap via 'reload'")

    p_shs = sub.add_parser(
        "shard-summarize",
        help="partition a graph by consistent hashing, summarize each "
             "shard, stitch, and write a shard manifest "
             "(see docs/sharding.md)",
    )
    p_shs.add_argument("graph", help="edge-list (or .adj) graph file")
    p_shs.add_argument("--shards", type=int, default=4,
                       help="number of shards (hash-ring over 0..K-1)")
    p_shs.add_argument("--k", type=int, default=5,
                       help="DOPH signature length")
    p_shs.add_argument("--iterations", "-T", type=int, default=20)
    p_shs.add_argument("--seed", type=int, default=0)
    p_shs.add_argument("--kernels", choices=("numpy", "python"),
                       default="numpy")
    p_shs.add_argument("--num-workers", type=int, default=1,
                       help="worker processes per shard run (>1 uses the "
                            "supervised multiprocess driver)")
    p_shs.add_argument("--shared-memory", choices=("auto", "on", "off"),
                       default="auto",
                       help="zero-copy worker transport with --num-workers: "
                            "one shared-memory arena per shard CSR")
    p_shs.add_argument("--virtual-nodes", type=int, default=64,
                       help="ring points per shard (balance knob)")
    p_shs.add_argument("--checkpoint-dir", metavar="DIR",
                       help="crash-safe resume; each shard checkpoints "
                            "under DIR/shard-<id>/")
    p_shs.add_argument("--out", "-o", metavar="DIR",
                       help="write the shard manifest directory "
                            "(global + per-shard serving artifacts)")
    p_shs.add_argument("--no-validate", action="store_true",
                       help="skip the stitched-summary losslessness proof")

    p_clu = sub.add_parser(
        "serve-cluster",
        help="serve a replica set with degraded-mode failover "
             "(see docs/serving.md, 'Running a replica set')",
    )
    p_clu.add_argument("summary", nargs="?",
                       help="summary file (text or .ldmeb); omit when "
                            "using --manifest")
    p_clu.add_argument("--manifest", metavar="DIR",
                       help="shard-manifest directory: serve a "
                            "shards x replicas cluster with hash-ring "
                            "routing (see docs/sharding.md)")
    p_clu.add_argument("--replicas", type=int, default=3,
                       help="replicas (per shard, with --manifest)")
    p_clu.add_argument("--host", default="127.0.0.1")
    p_clu.add_argument("--port-base", type=int, default=0,
                       help="first replica port; replica i listens on "
                            "port-base+i (0 = all ephemeral)")
    p_clu.add_argument("--cache-size", type=int, default=4096)
    p_clu.add_argument("--max-pending", type=int, default=1024)
    p_clu.add_argument("--request-timeout", type=float, default=5.0)
    p_clu.add_argument("--shed-fraction", type=float, default=0.9,
                       help="fraction of max-pending at which best-effort "
                            "(priority>=2) queries are shed")
    p_clu.add_argument("--no-degraded", action="store_true",
                       help="disable degraded mode (error instead of "
                            "serving flagged stale cached answers)")

    p_qry = sub.add_parser("query", help="query a running summary server")
    p_qry.add_argument(
        "op",
        choices=("neighbors", "degree", "has_edge", "bfs", "stats",
                 "ping", "reload",
                 "analytics.degree", "analytics.degree_hist",
                 "analytics.pagerank", "analytics.triangles",
                 "analytics.modularity", "analytics.slice"),
    )
    p_qry.add_argument("args", nargs="*",
                       help="node id(s), or a summary path for 'reload'")
    p_qry.add_argument("--top", type=int, default=None,
                       help="analytics.pagerank: print only the top-N "
                            "nodes by rank")
    p_qry.add_argument("--host", default="127.0.0.1")
    p_qry.add_argument("--port", type=int, default=7421)
    p_qry.add_argument("--timeout", type=float, default=10.0)
    p_qry.add_argument("--cluster", metavar="HOST:PORT,...",
                       help="query a replica set through the failover "
                            "client instead of one server")
    p_qry.add_argument("--manifest", metavar="DIR",
                       help="with --cluster: shard-manifest directory; "
                            "routes by its hash ring (addresses are "
                            "shard-major, as serve-cluster prints them)")
    p_qry.add_argument("--deadline", type=float, default=None,
                       help="end-to-end deadline in seconds, propagated "
                            "to the server queue")
    p_qry.add_argument("--priority", type=int, default=None,
                       help="0=critical 1=normal 2+=best-effort "
                            "(shed first under load)")

    p_load = sub.add_parser(
        "loadgen", help="drive a mixed query load at a running server"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=7421)
    p_load.add_argument("--queries", "-n", type=int, default=1000)
    p_load.add_argument("--concurrency", "-c", type=int, default=4)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--skew", type=float, default=2.0,
                        help="node-selection skew exponent (hot-key bias)")
    p_load.add_argument("--timeout", type=float, default=30.0)
    p_load.add_argument("--chaos", action="store_true",
                        help="inject deterministic connection chaos: "
                            "forced reconnects and malformed frames while "
                            "the load runs")
    p_load.add_argument("--chaos-drop-every", type=int, default=25,
                        metavar="N",
                        help="with --chaos: drop the connection every Nth "
                             "query per worker (0 disables)")
    p_load.add_argument("--trace", metavar="PATH",
                        help="record load-run spans and export them as "
                             "JSONL to PATH")
    p_load.add_argument("--profile", action="store_true",
                        help="sample all threads during the run and print "
                             "a profile")
    p_load.add_argument("--chaos-junk-every", type=int, default=50,
                        metavar="N",
                        help="with --chaos: send a garbage frame every Nth "
                             "query per worker (0 disables)")
    p_load.add_argument("--cluster", metavar="HOST:PORT,...",
                        help="drive the load through a shared failover "
                             "client over these replicas")
    p_load.add_argument("--manifest", metavar="DIR",
                        help="with --cluster: shard-manifest directory; "
                             "routes by its hash ring (addresses are "
                             "shard-major, as serve-cluster prints them)")
    p_load.add_argument("--hedge-delay", type=float, default=None,
                        help="with --cluster: hedge queries to a second "
                             "replica after this many seconds")
    p_load.add_argument("--analytics-fraction", type=float, default=0.0,
                        metavar="F",
                        help="blend this fraction of summary-native "
                             "analytics.* ops into the query mix "
                             "(0 disables, 1 = analytics only)")
    p_load.add_argument("--truth", metavar="PATH",
                        help="verify every answer against ground truth — "
                             "a summary file or a shard-manifest "
                             "directory; mismatches count as 'wrong'")
    p_load.add_argument("--during-migration", metavar="STORE",
                        help="label each query with the live migration "
                             "phase read from STORE's journal (a "
                             "generation-store root; see 'migrate'), so "
                             "the report breaks wrong/error counts down "
                             "per phase")

    p_mig = sub.add_parser(
        "migrate",
        help="elastic re-sharding: bootstrap a generation store, then "
             "plan and run crash-safe ring membership changes (see "
             "docs/sharding.md, 'Growing and shrinking the ring')",
    )
    p_mig.add_argument("store", help="generation-store root directory")
    p_mig.add_argument("--graph", metavar="PATH",
                       help="edge-list graph file (the key universe; "
                            "required except with --abort)")
    p_mig.add_argument("--init", action="store_true",
                       help="bootstrap the store: summarize --graph into "
                            "gen-000000 over --shards shards")
    p_mig.add_argument("--shards", type=int, default=None,
                       help="with --init the initial shard count, "
                            "otherwise the target ring size to migrate to")
    p_mig.add_argument("--virtual-nodes", type=int, default=1,
                       help="ring points per shard (1 keeps an expansion's "
                            "targeted rebuild minimal; use the same value "
                            "for every run against one store)")
    p_mig.add_argument("--plan-only", action="store_true",
                       help="print the migration plan and exit without "
                            "building anything")
    p_mig.add_argument("--resume", action="store_true",
                       help="continue whatever migration the journal says "
                            "was in flight")
    p_mig.add_argument("--abort", action="store_true",
                       help="roll the active migration back to the old "
                            "generation")
    p_mig.add_argument("--kill-at-step", metavar="STEP",
                       choices=("plan", "build", "built", "prepare",
                                "commit", "done"),
                       help="fault injection: die (exit code 3) right "
                            "after the named journal step is persisted; "
                            "a later --resume picks up from there")
    p_mig.add_argument("--k", type=int, default=5,
                       help="DOPH signature length")
    p_mig.add_argument("--iterations", "-T", type=int, default=20)
    p_mig.add_argument("--seed", type=int, default=0)
    p_mig.add_argument("--kernels", choices=("numpy", "python"),
                       default="numpy")
    p_mig.add_argument("--no-validate", action="store_true",
                       help="skip the stitched-summary losslessness proof")
    return parser


def _parse_addresses(spec: str) -> List[tuple]:
    """Parse ``host:port,host:port`` into ``[(host, port), ...]``."""
    addresses = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"bad replica address {part!r} "
                             "(expected host:port)")
        addresses.append((host, int(port)))
    if not addresses:
        raise ValueError("no replica addresses given")
    return addresses


def _sharded_client_kwargs(manifest_dir: str, addresses: List[tuple]):
    """``ClusterClient`` kwargs for ring-routed access to a sharded fleet.

    The flat address list must be shard-major with an equal replica
    count per shard — exactly the order ``serve-cluster --manifest``
    binds and prints.
    """
    from .shard import load_manifest

    manifest = load_manifest(manifest_dir, verify=False)
    sids = manifest.shard_ids
    if len(addresses) % len(sids):
        raise ValueError(
            f"{len(addresses)} addresses do not divide over "
            f"{len(sids)} manifest shards"
        )
    per_shard = len(addresses) // len(sids)
    shards = {
        sid: addresses[i * per_shard:(i + 1) * per_shard]
        for i, sid in enumerate(sids)
    }
    return {"shards": shards, "ring": manifest.ring}


def _cmd_summarize(args: argparse.Namespace) -> int:
    if args.chunked:
        from .graph.external import read_edge_list_chunked

        graph = read_edge_list_chunked(args.graph)
    else:
        graph = load_graph(args.graph)
    if args.algorithm == "ldme":
        if args.num_workers > 1:
            from .distributed import MultiprocessLDME

            algo = MultiprocessLDME(
                num_workers=args.num_workers,
                k=args.k,
                iterations=args.iterations,
                epsilon=args.epsilon,
                seed=args.seed,
                kernels=args.kernels,
                shared_memory=args.shared_memory,
                doph_chunk_rows=args.doph_chunk_rows,
                encode_partitions=args.encode_partitions,
            )
        else:
            algo = LDME(
                k=args.k,
                iterations=args.iterations,
                epsilon=args.epsilon,
                seed=args.seed,
                kernels=args.kernels,
                doph_chunk_rows=args.doph_chunk_rows,
                encode_partitions=args.encode_partitions,
            )
    else:
        algo = SWeG(
            iterations=args.iterations, epsilon=args.epsilon, seed=args.seed
        )
    import contextlib

    from .obs import profile as obs_profile
    from .obs import trace as obs_trace

    tracer = obs_trace.Tracer(seed=args.seed) if args.trace else None
    profiler = obs_profile.KernelProfiler() if args.profile else None
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.use(tracer))
        if profiler is not None:
            stack.enter_context(obs_profile.use(profiler))
        if args.checkpoint_dir:
            if args.resume_from:
                print(
                    "error: --resume-from (partition warm-start) and "
                    "--checkpoint-dir (crash-safe resume) are mutually "
                    "exclusive", file=sys.stderr,
                )
                return 2
            from .resilience import run_resumable

            summary = run_resumable(
                algo,
                graph,
                args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                resume=not args.no_resume,
            )
        else:
            initial = None
            if args.resume_from:
                from .graph.io import read_partition

                initial = read_partition(args.resume_from)
            summary = algo.summarize(graph, initial_partition=initial)
    if tracer is not None:
        written = tracer.export_jsonl(args.trace)
        print(f"trace: {written} spans written to {args.trace}")
    if profiler is not None:
        print(profiler.format_table())
    print(format_table([summary.describe()]))
    if args.output:
        write_summary(summary, args.output)
        print(f"summary written to {args.output}")
    if args.checkpoint:
        from .graph.io import write_partition

        write_partition(summary.partition, args.checkpoint)
        print(f"partition checkpoint written to {args.checkpoint}")
    return 0


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    summary = read_summary(args.summary)
    graph = reconstruct(summary)
    save_graph(graph, args.output)
    print(
        f"reconstructed {graph.num_nodes} nodes / {graph.num_edges} edges "
        f"to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    print(format_table([graph_stats(graph).as_dict()]))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.reporting import to_csv, to_json
    from .experiments.runner import save_results

    results = run_all(args.names or None)
    if args.output_dir:
        fmt = "json" if args.format == "json" else "csv"
        for path in save_results(results, args.output_dir, fmt):
            print(f"saved {path}")
    for result in results:
        if args.format == "csv":
            print(to_csv(result), end="")
        elif args.format == "json":
            print(to_json(result))
        else:
            print(format_result(result))
            print()
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = [
        {
            "Graph": name,
            "Abbr": abbrev,
            "Paper nodes": paper_nodes,
            "Paper edges": paper_edges,
            "Surrogate nodes": nodes,
            "Surrogate edges": edges,
        }
        for name, abbrev, paper_nodes, paper_edges, nodes, edges
        in datasets.table1_rows()
    ]
    print(format_table(rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .baselines.mosso import MoSSo
    from .baselines.randomized import Randomized
    from .baselines.sags import SAGS
    from .metrics import size_report

    graph = load_graph(args.graph)
    factories = {
        "ldme5": lambda: LDME(k=5, iterations=args.iterations, seed=args.seed),
        "ldme20": lambda: LDME(k=20, iterations=args.iterations,
                               seed=args.seed),
        "sweg": lambda: SWeG(iterations=args.iterations, seed=args.seed),
        "mosso": lambda: MoSSo(seed=args.seed),
        "randomized": lambda: Randomized(seed=args.seed),
        "sags": lambda: SAGS(seed=args.seed),
    }
    rows = []
    for name in args.algorithms:
        import time as _time

        tic = _time.perf_counter()
        summary = factories[name]().summarize(graph)
        elapsed = _time.perf_counter() - tic
        report = size_report(graph, summary)
        rows.append(
            {
                "algorithm": summary.algorithm,
                "seconds": elapsed,
                "compression": summary.compression,
                "supernodes": summary.num_supernodes,
                "objective": summary.objective,
                "bit_ratio": report.bit_ratio,
            }
        )
    print(format_table(rows))
    return 0


def _load_any_summary(path: str):
    if path.endswith(".ldmeb"):
        from .binaryio import read_summary_binary

        return read_summary_binary(path)
    return read_summary(path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .queries import SummaryIndex, pagerank, top_degree_nodes, triangle_count

    summary = _load_any_summary(args.summary)
    index = SummaryIndex(summary)
    ranks = pagerank(index)
    hubs = top_degree_nodes(index, args.top)
    rows = [
        {
            "supernodes": summary.num_supernodes,
            "objective": summary.objective,
            "triangles": triangle_count(index),
            "top_degree": " ".join(map(str, hubs)),
            "pagerank_winner": int(ranks.argmax()) if ranks.size else -1,
        }
    ]
    print(format_table(rows))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .streaming import DynamicSummarizer, read_stream

    ds = DynamicSummarizer(
        num_nodes=args.num_nodes,
        sample_size=args.sample_size,
        seed=args.seed,
    )
    ds.apply(read_stream(args.stream))
    summary = ds.snapshot()
    print(format_table([summary.describe()]))
    if args.output:
        write_summary(summary, args.output)
        print(f"snapshot written to {args.output}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import contextlib
    import logging
    import os
    import time as _time

    from .ingest import IngestListener, IngestService, feed_stream_file

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    if (args.stream is None) == (args.listen is None):
        print("error: pass either a stream file or --listen PORT",
              file=sys.stderr)
        return 2
    with contextlib.ExitStack() as stack:
        ack_log = None
        if args.ack_log:
            ack_log = stack.enter_context(
                open(args.ack_log, "a", encoding="utf-8")
            )

        def on_ack(first: int, last: int) -> None:
            # One line per durable seq, fsynced per batch: anything in
            # this file was acknowledged, so the chaos gate can demand
            # every listed seq survive recovery.
            if ack_log is None:
                return
            for seq in range(first, last + 1):
                ack_log.write(f"{seq}\n")
            ack_log.flush()
            os.fsync(ack_log.fileno())

        service, report = IngestService.open(
            args.wal_dir,
            num_nodes=args.num_nodes,
            sample_size=args.sample_size,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            snapshot_every=args.snapshot_every,
            segment_max_bytes=args.segment_bytes,
            queue_max=args.queue_max,
            fsync=not args.no_fsync,
            on_ack=on_ack,
        )
        print(f"recovery: {report.describe()}")
        if args.cluster:
            from .serve import SummaryCluster

            cluster = SummaryCluster(
                service.summarizer.snapshot(),
                replicas=args.cluster,
                port_base=args.port_base,
            )
            cluster.start()
            stack.callback(cluster.stop)
            service.cluster = cluster
            addresses = ",".join(f"{h}:{p}" for h, p in cluster.addresses)
            print(f"serving {args.cluster} replicas on {addresses} "
                  f"(hot-swapped every snapshot)")
        service.start()
        stack.callback(service.stop)
        if args.listen is not None:
            listener = stack.enter_context(
                IngestListener(service, port=args.listen)
            )
            host, port = listener.address
            print(f"ingesting on {host}:{port} — ctrl-c to drain and stop")
            try:
                while True:
                    _time.sleep(3600)
            except KeyboardInterrupt:
                print("draining...")
        else:
            submitted = feed_stream_file(
                service, args.stream, start_index=report.last_seq
            )
            service.drain()
            print(
                f"submitted {submitted} event(s) "
                f"(skipped {report.last_seq} already durable); "
                f"applied through seq {service.wal.last_seq}"
            )
        service.stop()
        status = service.status()
        print(
            f"final: {status['num_edges']} edges in "
            f"{status['num_supernodes']} supernodes, "
            f"seq {status['applied_seq']}, "
            f"{status['wal_segments']} WAL segment(s)"
        )
        if args.output:
            write_summary(service.summarizer.snapshot(), args.output)
            print(f"snapshot written to {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .evaluation import compare_partitions, read_labels

    summary = _load_any_summary(args.summary)
    labels = read_labels(args.labels)
    if labels.size != summary.num_nodes:
        print(
            f"error: labels cover {labels.size} nodes but summary has "
            f"{summary.num_nodes}", file=sys.stderr,
        )
        return 1
    agreement = compare_partitions(summary.partition, labels)
    print(format_table([agreement.as_dict()]))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import logging
    import signal

    from .obs import profile as obs_profile
    from .obs import trace as obs_trace
    from .serve import ServerConfig, SummaryServer

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    summary = _load_any_summary(args.summary)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_entries=args.cache_size,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        log_interval=args.log_interval,
        allow_reload=args.allow_reload,
        metrics_port=args.metrics_port,
    )
    server = SummaryServer(summary, config)
    tracer = obs_trace.Tracer() if args.trace else None

    async def _run() -> None:
        await server.start()
        print(
            f"serving {args.summary} ({summary.num_nodes} nodes) "
            f"on {config.host}:{server.port} — ctrl-c to drain and stop"
        )
        if args.metrics_port is not None:
            print(
                "metrics on http://"
                f"{config.host}:{server.metrics_http_port}/metrics"
            )
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop_requested.wait()
        print("draining in-flight requests...")
        await server.stop()

    profiler = (
        obs_profile.SamplingProfiler() if args.profile else None
    )
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.use(tracer))
        if profiler is not None:
            # asyncio.run drives the loop on this thread, so sampling
            # the calling thread profiles the event loop.
            stack.enter_context(profiler)
        asyncio.run(_run())
    if tracer is not None:
        written = tracer.export_jsonl(args.trace)
        print(f"trace: {written} spans written to {args.trace}")
    if profiler is not None:
        print(profiler.format_table())
    return 0


def _cmd_shard_summarize(args: argparse.Namespace) -> int:
    from .shard import summarize_sharded

    graph = load_graph(args.graph)
    result = summarize_sharded(
        graph,
        shards=args.shards,
        k=args.k,
        iterations=args.iterations,
        seed=args.seed,
        kernels=args.kernels,
        num_workers=args.num_workers,
        shared_memory=args.shared_memory,
        virtual_nodes=args.virtual_nodes,
        checkpoint_dir=args.checkpoint_dir,
        out_dir=args.out,
        validate=not args.no_validate,
    )
    report = result.report
    sizes = ", ".join(
        f"{s.shard_id}:{s.num_nodes}n/{s.local_graph.num_edges}e"
        for s in result.sharded.shards
    )
    print(f"shards: {sizes}")
    print(
        f"cut edges: {report.num_cut_edges} -> "
        f"{report.cross_superedges} cross superedges, "
        f"{report.cross_additions} C+, {report.cross_deletions} C-"
    )
    print(format_table([result.summary.describe()]))
    if not report.ok:
        for problem in report.problems:
            print(f"problem: {problem}", file=sys.stderr)
        return 1
    if args.out:
        print(f"shard manifest written to {args.out}")
        print(f"serve with: ldme serve-cluster --manifest {args.out}")
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import logging
    import time as _time

    from .serve import ServerConfig, SummaryCluster

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    if (args.summary is None) == (args.manifest is None):
        print("error: pass either a summary file or --manifest DIR",
              file=sys.stderr)
        return 2
    template = ServerConfig(
        cache_entries=args.cache_size,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        shed_fraction=args.shed_fraction,
        degraded_enabled=not args.no_degraded,
    )
    if args.manifest is not None:
        cluster = SummaryCluster.from_manifest(
            args.manifest,
            replicas=args.replicas,
            config=template,
            host=args.host,
            port_base=args.port_base,
        )
        served = (
            f"{cluster.num_shards} shards x {args.replicas} replicas "
            f"from {args.manifest}"
        )
    else:
        summary = _load_any_summary(args.summary)
        cluster = SummaryCluster(
            summary,
            replicas=args.replicas,
            config=template,
            host=args.host,
            port_base=args.port_base,
        )
        served = (
            f"{args.replicas} replicas serving {args.summary} "
            f"({summary.num_nodes} nodes)"
        )
    cluster.start()
    addresses = ",".join(f"{h}:{p}" for h, p in cluster.addresses)
    print(f"cluster of {served} on {addresses} — ctrl-c to stop")
    manifest_flag = (
        f" --manifest {args.manifest}" if args.manifest is not None else ""
    )
    print(f"query with: ldme query ping --cluster {addresses}"
          f"{manifest_flag}")
    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        print("stopping replicas...")
    finally:
        cluster.stop()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from .serve import ServerError, SummaryClient

    if args.cluster:
        from .serve import ClusterClient

        addresses = _parse_addresses(args.cluster)
        sharded = (
            _sharded_client_kwargs(args.manifest, addresses)
            if args.manifest else {}
        )
        client = ClusterClient(
            None if sharded else addresses,
            timeout=args.timeout,
            deadline=args.deadline,
            **sharded,
        )
    elif args.manifest:
        print("error: --manifest requires --cluster", file=sys.stderr)
        return 2
    else:
        client = SummaryClient(args.host, args.port, timeout=args.timeout)
    kw = {}
    if args.cluster:
        if args.deadline is not None:
            kw["deadline"] = args.deadline
        if args.priority is not None:
            kw["priority"] = args.priority
    positional = args.args
    try:
        if args.op == "neighbors":
            print(" ".join(map(str,
                               client.neighbors(int(positional[0]), **kw))))
        elif args.op == "degree":
            print(client.degree(int(positional[0]), **kw))
        elif args.op == "has_edge":
            print(client.has_edge(int(positional[0]), int(positional[1]),
                                  **kw))
        elif args.op == "bfs":
            for node, dist in sorted(client.bfs(int(positional[0]),
                                                **kw).items()):
                print(f"{node} {dist}")
        elif args.op == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.op == "ping":
            print("pong" if client.ping() else "no pong")
        elif args.op == "reload":
            if args.cluster:
                print("error: use a rolling swap for replica sets, not "
                      "'reload' (see docs/serving.md)", file=sys.stderr)
                return 2
            print(json.dumps(client.reload(positional[0])))
        elif args.op.startswith("analytics."):
            op_args = {}
            if args.op == "analytics.degree":
                op_args["v"] = int(positional[0])
            elif args.op == "analytics.pagerank" and args.top is not None:
                op_args["top"] = args.top
            print(json.dumps(
                client.analytics(args.op, op_args, **kw), sort_keys=True
            ))
    except IndexError:
        print(f"error: op {args.op!r} is missing an argument",
              file=sys.stderr)
        return 2
    except (ServerError, ConnectionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.cluster:
            client.shutdown()
        else:
            client.close()
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    import json as _json

    from .shard import GenerationStore, HashRing, MigrationCoordinator
    from .shard.migrate import CoordinatorKilledError, plan_migration

    modes = sum(1 for m in (args.init, args.resume, args.abort) if m)
    if modes > 1:
        print("error: --init, --resume, and --abort are mutually "
              "exclusive", file=sys.stderr)
        return 2
    store = GenerationStore(args.store)

    if args.abort:
        report = MigrationCoordinator(store).abort()
        print(f"aborted migration to {report.new_generation}; "
              f"serving {store.current()}")
        return 0

    if not args.graph:
        print("error: --graph is required (except with --abort)",
              file=sys.stderr)
        return 2
    graph = load_graph(args.graph)

    if args.init:
        shards = args.shards if args.shards is not None else 2
        manifest = store.bootstrap(
            graph,
            shards,
            virtual_nodes=args.virtual_nodes,
            k=args.k,
            iterations=args.iterations,
            seed=args.seed,
            kernels=args.kernels,
            validate=not args.no_validate,
        )
        print(f"bootstrapped {store.current()}: "
              f"{len(manifest.shard_ids)} shards over "
              f"{graph.num_nodes} nodes / {graph.num_edges} edges")
        return 0

    on_step = None
    if args.kill_at_step:
        from .resilience import MigrationFault, MigrationFaultPlan

        on_step = MigrationFaultPlan(
            [MigrationFault(step=args.kill_at_step)]
        ).on_step
    coordinator = MigrationCoordinator(
        store,
        k=args.k,
        iterations=args.iterations,
        seed=args.seed,
        kernels=args.kernels,
        validate=not args.no_validate,
        on_step=on_step,
    )

    new_ring = None
    if not args.resume:
        if args.shards is None:
            print("error: pass --shards N (target ring size), --init, "
                  "--resume, or --abort", file=sys.stderr)
            return 2
        old_manifest = store.current_manifest(verify=False)
        new_ring = HashRing(args.shards, virtual_nodes=args.virtual_nodes)
        plan = plan_migration(old_manifest.ring, new_ring, graph)
        print("plan:", _json.dumps(plan.summary(), sort_keys=True))
        if args.plan_only:
            return 0

    try:
        if args.resume:
            report = coordinator.resume(graph)
        else:
            report = coordinator.migrate(new_ring, graph)
    except CoordinatorKilledError as exc:
        print(f"killed: {exc}", file=sys.stderr)
        return 3

    if report.committed:
        status = "committed"
    elif report.rolled_back:
        status = "rolled back"
    else:
        status = "incomplete"
    print(f"{status}: {report.old_generation} -> {report.new_generation}")
    print(f"  resummarized shards: {report.resummarized_shards}")
    print(f"  reused shards:       {report.reused_shards}")
    if report.replayed_events:
        print(f"  replayed ingest events: {report.replayed_events}")
    if report.error:
        print(f"  error: {report.error}")
    print(f"  serving: {store.current()}")
    return 0 if report.committed else 1


class _JournalPhaseWatcher:
    """Background poll of a generation store's migration journal.

    Gives ``loadgen --during-migration`` a cheap ``phase_fn``: queries
    read the cached phase instead of hitting the journal file each time.
    """

    def __init__(self, store_root: str, interval: float = 0.05) -> None:
        import threading

        from .shard import GenerationStore

        self._store = GenerationStore(store_root)
        self._interval = interval
        self._phase = "idle"
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="migration-phase-watcher", daemon=True
        )

    def start(self) -> "_JournalPhaseWatcher":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def __call__(self) -> str:
        return self._phase

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                journal = self._store.read_journal()
            except Exception:
                journal = None  # journal unreadable mid-poll: keep going
            else:
                self._phase = journal.step if journal is not None else "idle"
            self._stop.wait(self._interval)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import contextlib

    from .obs import profile as obs_profile
    from .obs import trace as obs_trace
    from .serve import ChaosConfig, run_load, with_analytics

    mix = None
    if args.analytics_fraction:
        mix = with_analytics(fraction=args.analytics_fraction)
    chaos = None
    if args.chaos:
        chaos = ChaosConfig(
            drop_every=args.chaos_drop_every,
            junk_every=args.chaos_junk_every,
        )
    tracer = obs_trace.Tracer(seed=args.seed) if args.trace else None
    profiler = (
        obs_profile.SamplingProfiler(all_threads=True)
        if args.profile else None
    )
    truth = None
    if args.truth:
        import os as _os

        from .queries import CompiledSummaryIndex

        if _os.path.isdir(args.truth):
            from .shard import load_manifest

            truth = CompiledSummaryIndex(
                load_manifest(args.truth, verify=False).load_global()
            )
        else:
            truth = CompiledSummaryIndex(_load_any_summary(args.truth))
    phase_watcher = None
    if args.during_migration:
        phase_watcher = _JournalPhaseWatcher(args.during_migration).start()
    cluster_client = None
    client_factory = None
    host, port = args.host, args.port
    if args.manifest and not args.cluster:
        print("error: --manifest requires --cluster", file=sys.stderr)
        return 2
    if args.cluster:
        from .serve import ClusterClient

        addresses = _parse_addresses(args.cluster)
        sharded = (
            _sharded_client_kwargs(args.manifest, addresses)
            if args.manifest else {}
        )
        cluster_client = ClusterClient(
            None if sharded else addresses,
            timeout=args.timeout,
            hedge_delay=args.hedge_delay,
            **sharded,
        )
        cluster_client.start_health_checks()
        client_factory = lambda: cluster_client  # noqa: E731 - shared
        host, port = addresses[0]
    try:
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(obs_trace.use(tracer))
            if profiler is not None:
                stack.enter_context(profiler)
            report = run_load(
                host,
                port,
                num_queries=args.queries,
                concurrency=args.concurrency,
                mix=mix,
                seed=args.seed,
                skew=args.skew,
                client_timeout=args.timeout,
                chaos=chaos,
                client_factory=client_factory,
                truth=truth,
                phase_fn=phase_watcher,
            )
    finally:
        if phase_watcher is not None:
            phase_watcher.stop()
        if cluster_client is not None:
            print("breakers:", cluster_client.breaker_states())
            cluster_client.shutdown()
    if tracer is not None:
        written = tracer.export_jsonl(args.trace)
        print(f"trace: {written} spans written to {args.trace}")
    if profiler is not None:
        print(profiler.format_table())
    print(report.format())
    return 1 if (report.errors or report.wrong) else 0


_COMMANDS = {
    "summarize": _cmd_summarize,
    "reconstruct": _cmd_reconstruct,
    "stats": _cmd_stats,
    "experiment": _cmd_experiment,
    "datasets": _cmd_datasets,
    "compare": _cmd_compare,
    "analyze": _cmd_analyze,
    "stream": _cmd_stream,
    "ingest": _cmd_ingest,
    "evaluate": _cmd_evaluate,
    "serve": _cmd_serve,
    "shard-summarize": _cmd_shard_summarize,
    "serve-cluster": _cmd_serve_cluster,
    "query": _cmd_query,
    "loadgen": _cmd_loadgen,
    "migrate": _cmd_migrate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
