"""Quality evaluation of supernode partitions.

Summarizers group nodes with similar connectivity; on graphs with known
community structure (SBM, host graphs) the supernode partition should
align with the planted communities. This module provides the standard
clustering-agreement measures — purity, Adjusted Rand Index and Normalized
Mutual Information — implemented from scratch over
:class:`~repro.core.partition.SupernodePartition` objects or plain label
arrays, plus a convenience comparison of two summarizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

from .core.partition import SupernodePartition

__all__ = [
    "partition_labels",
    "purity",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "PartitionAgreement",
    "compare_partitions",
    "read_labels",
]

LabelsLike = Union[Sequence[int], np.ndarray, SupernodePartition]


def partition_labels(partition: LabelsLike) -> np.ndarray:
    """Normalize input to a dense int64 label array."""
    if isinstance(partition, SupernodePartition):
        return partition.node2super.astype(np.int64)
    labels = np.asarray(partition, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    return labels


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Contingency table between two labelings (rows = a, cols = b)."""
    if a.shape != b.shape:
        raise ValueError("labelings must cover the same nodes")
    _, a_idx = np.unique(a, return_inverse=True)
    _, b_idx = np.unique(b, return_inverse=True)
    table = np.zeros((a_idx.max() + 1 if a.size else 1,
                      b_idx.max() + 1 if b.size else 1), dtype=np.int64)
    np.add.at(table, (a_idx, b_idx), 1)
    return table


def purity(predicted: LabelsLike, truth: LabelsLike) -> float:
    """Fraction of nodes whose cluster's majority truth label matches.

    1.0 means every predicted cluster is contained in one true community.
    """
    a = partition_labels(predicted)
    b = partition_labels(truth)
    if a.size == 0:
        return 1.0
    table = _contingency(a, b)
    return float(table.max(axis=1).sum() / a.size)


def _comb2(x: np.ndarray) -> np.ndarray:
    return x * (x - 1) / 2.0


def adjusted_rand_index(predicted: LabelsLike, truth: LabelsLike) -> float:
    """Adjusted Rand Index: chance-corrected pair-counting agreement.

    1.0 = identical partitions, ~0 = random relative to marginals.
    """
    a = partition_labels(predicted)
    b = partition_labels(truth)
    if a.size < 2:
        return 1.0
    table = _contingency(a, b)
    sum_cells = _comb2(table.astype(np.float64)).sum()
    sum_rows = _comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = _comb2(table.sum(axis=0).astype(np.float64)).sum()
    total = _comb2(np.float64(a.size))
    expected = sum_rows * sum_cols / total
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def normalized_mutual_information(
    predicted: LabelsLike, truth: LabelsLike
) -> float:
    """NMI with arithmetic-mean normalization (0 = independent, 1 = equal)."""
    a = partition_labels(predicted)
    b = partition_labels(truth)
    if a.size == 0:
        return 1.0
    table = _contingency(a, b).astype(np.float64)
    n = float(a.size)
    joint = table / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    mutual = 0.0
    for i in range(table.shape[0]):
        for j in range(table.shape[1]):
            if joint[i, j] > 0:
                mutual += joint[i, j] * math.log(
                    joint[i, j] / (pa[i] * pb[j])
                )
    h_a = -sum(p * math.log(p) for p in pa if p > 0)
    h_b = -sum(p * math.log(p) for p in pb if p > 0)
    denom = (h_a + h_b) / 2.0
    if denom == 0.0:
        return 1.0  # both labelings are single-cluster
    return float(mutual / denom)


@dataclass(frozen=True)
class PartitionAgreement:
    """Agreement scores between two partitions."""

    purity: float
    adjusted_rand_index: float
    normalized_mutual_information: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for tabular reporting."""
        return {
            "purity": self.purity,
            "ari": self.adjusted_rand_index,
            "nmi": self.normalized_mutual_information,
        }


def compare_partitions(
    predicted: LabelsLike, truth: LabelsLike
) -> PartitionAgreement:
    """All three agreement measures at once."""
    return PartitionAgreement(
        purity=purity(predicted, truth),
        adjusted_rand_index=adjusted_rand_index(predicted, truth),
        normalized_mutual_information=normalized_mutual_information(
            predicted, truth
        ),
    )


def read_labels(path) -> np.ndarray:
    """Read a node → community labels file (``node label`` per line).

    Nodes may appear in any order but must cover ``0..n-1`` exactly once.
    Used by ``ldme evaluate``.
    """
    import os

    entries: Dict[int, int] = {}
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'node label'")
            node, label = int(parts[0]), int(parts[1])
            if node in entries:
                raise ValueError(f"{path}:{lineno}: duplicate node {node}")
            entries[node] = label
    if sorted(entries) != list(range(len(entries))):
        raise ValueError(f"{path}: labels must cover nodes 0..n-1")
    return np.asarray([entries[v] for v in range(len(entries))],
                      dtype=np.int64)
