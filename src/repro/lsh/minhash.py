"""Classic MinHash signatures over sets.

Used by the SAGS baseline (simple-LSH candidate generation) and by tests as
a reference implementation: ``Pr[minhash collision] = Jaccard``. Each hash
function is an independent arithmetic bijection so signatures over a shared
universe can be computed without materializing permutations.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from .permutation import ArithmeticBijection

__all__ = ["MinHasher", "jaccard"]

SeedLike = Union[int, np.random.Generator, None]


def jaccard(a: Iterable[int], b: Iterable[int]) -> float:
    """Exact Jaccard similarity of two sets (reference metric)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


class MinHasher:
    """Computes length-``num_hashes`` MinHash signatures over ``0..n-1``.

    Parameters
    ----------
    universe_size:
        Size of the item universe (node count, for neighbourhood sets).
    num_hashes:
        Signature length; collision probability estimates average over it.
    seed:
        Seed or generator for the hash family.
    """

    def __init__(
        self, universe_size: int, num_hashes: int, seed: SeedLike = None
    ) -> None:
        if universe_size < 1:
            raise ValueError("universe_size must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.universe_size = universe_size
        self.num_hashes = num_hashes
        self._hashes = [
            ArithmeticBijection(universe_size, rng) for _ in range(num_hashes)
        ]

    def signature(self, items: Sequence[int]) -> np.ndarray:
        """MinHash signature of a set; empty sets map to all ``-1``."""
        arr = np.asarray(list(items), dtype=np.int64)
        if arr.size == 0:
            return np.full(self.num_hashes, -1, dtype=np.int64)
        if arr.min() < 0 or arr.max() >= self.universe_size:
            raise ValueError("items out of universe range")
        return np.asarray(
            [int(h.apply(arr).min()) for h in self._hashes], dtype=np.int64
        )

    @staticmethod
    def estimate_similarity(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing signature positions ≈ Jaccard similarity."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signatures must have equal length")
        if sig_a.size == 0:
            return 0.0
        return float(np.mean(sig_a == sig_b))

    def band_keys(self, signature: np.ndarray, bands: int) -> list:
        """Split a signature into ``bands`` hashable band keys (LSH banding)."""
        if bands < 1 or self.num_hashes % bands != 0:
            raise ValueError("bands must divide the signature length")
        rows = self.num_hashes // bands
        return [
            (i, tuple(signature[i * rows:(i + 1) * rows].tolist()))
            for i in range(bands)
        ]
