"""Shingle functions — SWeG's dividing metric.

The *shingle* of a node ``v`` is ``f(v) = min h(u)`` over the closed
neighbourhood ``N_v ∪ {v}`` for a random bijection ``h``; the shingle of a
supernode ``A`` is ``F(A) = min f(v)`` over members. Supernodes with equal
shingles form one group. This is exactly the divide step of SWeG [32] that
LDME replaces with weighted LSH.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..graph.graph import Graph

__all__ = ["node_shingles", "supernode_shingle", "shingle_groups"]


def node_shingles(graph: Graph, perm: np.ndarray) -> np.ndarray:
    """``f(v)`` for every node: min of ``perm`` over the closed neighbourhood.

    ``perm`` must be a bijection array over ``0..n-1`` (see
    :func:`repro.lsh.permutation.random_permutation`).
    """
    n = graph.num_nodes
    if perm.shape != (n,):
        raise ValueError("perm must have one entry per node")
    out = perm.copy()  # h(v) itself participates (u = v case)
    if graph.indices.size:
        heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        np.minimum.at(out, heads, perm[graph.indices])
    return out


def supernode_shingle(members: Iterable[int], shingles: np.ndarray) -> int:
    """``F(A) = min f(v)`` over the supernode's members."""
    return int(min(int(shingles[v]) for v in members))


def shingle_groups(
    supernode_members: Dict[int, List[int]], shingles: np.ndarray
) -> Dict[int, List[int]]:
    """Group supernode ids by their shingle ``F(A)``.

    Returns shingle value → list of supernode ids. Singleton groups are kept
    (the merge phase skips them cheaply), matching the paper's description.
    """
    groups: Dict[int, List[int]] = {}
    for sid, members in supernode_members.items():
        key = supernode_shingle(members, shingles)
        groups.setdefault(key, []).append(sid)
    return groups
