"""Weighted DOPH via universe expansion (Shrivastava, NeurIPS 2016).

The paper binarizes supervectors before DOPH and leans on the result of
[34] that the collision probability still approximates the *weighted*
Jaccard similarity for sparse vectors. This module implements the
underlying reduction explicitly, as a higher-fidelity alternative:

An integer-weighted vector ``X`` over universe ``n`` is expanded to a
binary vector over universe ``n · W`` (``W`` = weight cap) whose 1-bits
are ``(v, 0), (v, 1), …, (v, X_v − 1)`` for every index ``v``. Plain
(unweighted) minwise hashing of expanded vectors collides with probability
*exactly* ``J_w`` — so DOPH over the expansion inherits the weighted
guarantee up to densification noise.

Exposed to LDME as ``LDME(divide_weights="expanded")``: the divide then
groups by similarity of the true ``w(A, ·)`` vectors instead of their
support. Costs a factor ``~avg weight`` in hashing work; on graphs where
multi-edges between supernode pairs carry signal (heavily merged
partitions) it buys grouping precision.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from .doph import doph_signature, doph_signatures_bulk
from .permutation import random_permutation

__all__ = ["expand_weighted", "WeightedDOPHHasher", "weighted_doph_signatures_bulk"]

SeedLike = Union[int, np.random.Generator, None]


def expand_weighted(
    indices: np.ndarray, weights: np.ndarray, weight_cap: int
) -> np.ndarray:
    """1-bit positions of the expanded binary vector.

    ``(index, slot)`` is flattened to ``index * weight_cap + slot`` for
    slots ``0 .. min(weight, cap) − 1``. Weights above the cap saturate
    (standard practice: the cap bounds the expansion factor).
    """
    if weight_cap < 1:
        raise ValueError("weight_cap must be >= 1")
    indices = np.asarray(indices, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if indices.shape != weights.shape:
        raise ValueError("indices and weights must have equal length")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    clipped = np.minimum(weights, weight_cap)
    keep = clipped > 0
    indices, clipped = indices[keep], clipped[keep]
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(indices * weight_cap, clipped)
    slots = np.concatenate([np.arange(c, dtype=np.int64) for c in clipped])
    return base + slots


class WeightedDOPHHasher:
    """DOPH over weight-expanded vectors: Pr[collision] ≈ weighted Jaccard.

    Parameters
    ----------
    universe_size:
        Size of the original index universe.
    k:
        Signature length.
    weight_cap:
        Maximum weight represented exactly (larger weights saturate).
    seed:
        Seed for the permutation and direction bits.
    """

    def __init__(
        self,
        universe_size: int,
        k: int,
        weight_cap: int = 4,
        seed: SeedLike = None,
    ) -> None:
        if universe_size < 1:
            raise ValueError("universe_size must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        if weight_cap < 1:
            raise ValueError("weight_cap must be >= 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.universe_size = universe_size
        self.k = k
        self.weight_cap = weight_cap
        self.perm = random_permutation(universe_size * weight_cap, rng)
        self.directions = rng.integers(0, 2, size=k).astype(np.int64)

    def signature(self, weights: Dict[int, int]) -> np.ndarray:
        """Signature of a sparse integer-weighted vector (dict form)."""
        if not weights:
            indices = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.int64)
        else:
            indices = np.fromiter(weights.keys(), dtype=np.int64,
                                  count=len(weights))
            values = np.fromiter(weights.values(), dtype=np.int64,
                                 count=len(weights))
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.universe_size):
            raise ValueError("indices out of universe range")
        expanded = expand_weighted(indices, values, self.weight_cap)
        return doph_signature(expanded, self.perm, self.k, self.directions)

    def signature_key(self, weights: Dict[int, int]) -> tuple:
        """Hashable signature for dict-based grouping."""
        return tuple(self.signature(weights).tolist())


def weighted_doph_signatures_bulk(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    item_weights: np.ndarray,
    num_rows: int,
    universe_size: int,
    k: int,
    weight_cap: int,
    perm: np.ndarray,
    directions: np.ndarray,
) -> np.ndarray:
    """Bulk weighted DOPH: vectorized expansion + one bulk DOPH pass.

    ``(row_ids[i], item_ids[i], item_weights[i])`` triples list the sparse
    weighted vectors; ``perm`` must cover ``universe_size * weight_cap``.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    item_weights = np.asarray(item_weights, dtype=np.int64)
    if not (row_ids.shape == item_ids.shape == item_weights.shape):
        raise ValueError("row/item/weight arrays must have equal length")
    clipped = np.minimum(item_weights, weight_cap)
    keep = clipped > 0
    row_ids, item_ids, clipped = row_ids[keep], item_ids[keep], clipped[keep]
    if row_ids.size:
        expanded_rows = np.repeat(row_ids, clipped)
        base = np.repeat(item_ids * weight_cap, clipped)
        slots = np.concatenate(
            [np.arange(c, dtype=np.int64) for c in clipped.tolist()]
        )
        expanded_items = base + slots
    else:
        expanded_rows = np.empty(0, dtype=np.int64)
        expanded_items = np.empty(0, dtype=np.int64)
    return doph_signatures_bulk(
        expanded_rows, expanded_items, num_rows, perm, k, directions
    )
