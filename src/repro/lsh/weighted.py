"""Weighted MinHash.

Two pieces live here:

* :func:`weighted_jaccard` — the exact weighted Jaccard similarity
  ``J_w(X, Y) = Σ min(X_v, Y_v) / Σ max(X_v, Y_v)`` over sparse integer
  vectors. This *is* SuperJaccard when the vectors are supervectors
  (Section 3 of the paper proves the identity).
* :class:`ICWSHasher` — Improved Consistent Weighted Sampling
  (Ioffe 2010 / Shrivastava 2016), an exact weighted-minwise LSH family:
  ``Pr[hash(X) == hash(Y)] = J_w(X, Y)``. LDME itself uses DOPH over the
  binarized vector (faster, approximate); ICWS is the exact reference the
  tests compare DOPH against, and an alternative divide metric exposed by
  the public API.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

__all__ = ["weighted_jaccard", "ICWSHasher"]

SeedLike = Union[int, np.random.Generator, None]


def weighted_jaccard(x: Dict[int, float], y: Dict[int, float]) -> float:
    """Exact weighted Jaccard similarity of two sparse non-negative vectors.

    Vectors are dicts index → weight; absent indices are zero. Two all-zero
    vectors are defined to be identical (similarity 1).
    """
    if any(w < 0 for w in x.values()) or any(w < 0 for w in y.values()):
        raise ValueError("weights must be non-negative")
    num = 0.0
    den = 0.0
    for key in set(x) | set(y):
        xv = x.get(key, 0.0)
        yv = y.get(key, 0.0)
        num += min(xv, yv)
        den += max(xv, yv)
    if den == 0.0:
        return 1.0
    return num / den


class ICWSHasher:
    """Improved Consistent Weighted Sampling (exact weighted minhash).

    For each of ``num_hashes`` independent samples and every possible index
    ``v`` we lazily draw ``(r, c, beta) ~ (Gamma(2,1), Gamma(2,1), U[0,1])``
    and hash a weighted vector ``X`` to the index attaining the minimum of
    ``a_v = c / y_v - ... `` per Ioffe's scheme. Collision probability equals
    the weighted Jaccard similarity exactly.
    """

    def __init__(self, num_hashes: int, seed: SeedLike = None) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_hashes = num_hashes
        self._seed_seq = np.random.SeedSequence(
            seed if isinstance(seed, int) else None
        )
        if isinstance(seed, np.random.Generator):
            # Derive a reproducible integer from the supplied generator.
            self._seed_seq = np.random.SeedSequence(int(seed.integers(2**63)))
        # Per-(hash, index) parameters are drawn deterministically on demand
        # via counter-based seeding, so the universe never has to be known
        # up front and memory stays O(1).
        self._base = int(self._seed_seq.generate_state(1)[0])

    def _params(self, hash_id: int, index: int) -> Tuple[float, float, float]:
        """Deterministic (r, c, beta) for one (hash function, index) pair."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._base, spawn_key=(hash_id, index))
        )
        r = float(rng.gamma(2.0, 1.0))
        c = float(rng.gamma(2.0, 1.0))
        beta = float(rng.uniform(0.0, 1.0))
        return r, c, beta

    def _sample_one(self, weights: Dict[int, float], hash_id: int) -> Tuple[int, int]:
        """One CWS sample: the (index, t) pair attaining the minimum."""
        best_key: Tuple[int, int] = (-1, 0)
        best_val = np.inf
        for index, weight in weights.items():
            if weight <= 0:
                continue
            r, c, beta = self._params(hash_id, index)
            t = int(np.floor(np.log(weight) / r + beta))
            ln_y = r * (t - beta)
            ln_a = np.log(c) - ln_y - r
            if ln_a < best_val:
                best_val = ln_a
                best_key = (index, t)
        return best_key

    def signature(self, weights: Dict[int, float]) -> list:
        """Length-``num_hashes`` signature; hashable list of (index, t)."""
        if any(w < 0 for w in weights.values()):
            raise ValueError("weights must be non-negative")
        return [self._sample_one(weights, h) for h in range(self.num_hashes)]

    @staticmethod
    def estimate_similarity(sig_a: list, sig_b: list) -> float:
        """Fraction of agreeing samples ≈ exact weighted Jaccard."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures must have equal length")
        if not sig_a:
            return 0.0
        agree = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
        return agree / len(sig_a)
