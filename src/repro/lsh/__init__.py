"""Locality sensitive hashing substrate: permutations, shingles, MinHash,
DOPH (Algorithm 2) and exact weighted minhash (ICWS)."""

from .doph import EMPTY, DOPHHasher, doph_signature
from .minhash import MinHasher, jaccard
from .permutation import ArithmeticBijection, random_permutation
from .shingle import node_shingles, shingle_groups, supernode_shingle
from .weighted import ICWSHasher, weighted_jaccard

__all__ = [
    "EMPTY",
    "DOPHHasher",
    "doph_signature",
    "MinHasher",
    "jaccard",
    "ArithmeticBijection",
    "random_permutation",
    "node_shingles",
    "shingle_groups",
    "supernode_shingle",
    "ICWSHasher",
    "weighted_jaccard",
]
