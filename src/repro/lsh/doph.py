"""Densified One Permutation Hashing (DOPH) — Algorithm 2 of the paper.

DOPH (Shrivastava & Li, UAI 2014) computes a length-``k`` minwise signature
from a *single* permutation: permute the universe, cut it into ``k`` equal
bins, take the first populated offset in each bin, and fill ("densify")
empty bins by copying the nearest populated bin to the left or right with
wraparound — the direction chosen per-bin by a random bit vector ``D``.

For sparse weighted vectors, hashing the *binarized* vector approximates
weighted-Jaccard collision probabilities (Shrivastava, NeurIPS 2016), which
is exactly how LDME uses it: Pr[sig(A) == sig(B)] ≈ SuperJaccard(A, B).

The signature of an all-zero vector is defined here as all ``EMPTY`` (−1);
callers (the divide step) treat such supernodes as their own group.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .permutation import random_permutation

__all__ = ["EMPTY", "DOPHHasher", "doph_signature"]

SeedLike = Union[int, np.random.Generator, None]

#: Sentinel signature value for bins that stay empty (all-zero input).
EMPTY = -1


def doph_signature(
    nonzero_indices: np.ndarray,
    perm: np.ndarray,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
) -> np.ndarray:
    """One DOPH signature (Algorithm 2).

    Parameters
    ----------
    nonzero_indices:
        Indices of the 1-bits of the binary input vector ``I`` (i.e. the
        binarized supervector: the supernode's neighbour set).
    perm:
        Permutation array over the universe ``0..n-1``.
    k:
        Signature length / number of bins.
    directions:
        Length-``k`` 0/1 array: ``1`` borrows from the right, ``0`` from the
        left (line 8-12 of Algorithm 2).
    densification:
        ``"rotation"`` — the paper's scheme (nearest populated bin with
        wraparound, direction chosen by ``directions``).
        ``"optimal"`` — Shrivastava's 2017 refinement: each empty bin
        probes pseudo-random bins (seeded by the bin index and the
        direction bits) until it hits a populated one, which provably
        lowers the estimator's variance. Provided as a library extension;
        LDME's divide uses the paper's rotation scheme.

    Returns
    -------
    Length-``k`` int64 array. Each entry is the offset (0-based index within
    its bin) of the first populated slot, or a densified copy; all-``EMPTY``
    when the input has no non-zeros.
    """
    n = perm.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if directions.shape != (k,):
        raise ValueError("directions must have length k")
    sig = np.full(k, EMPTY, dtype=np.int64)
    idx = np.asarray(nonzero_indices, dtype=np.int64)
    if idx.size == 0:
        return sig
    if idx.min() < 0 or idx.max() >= n:
        raise ValueError("nonzero indices out of universe range")
    # Line 1-2: permute, then split into k sequential bins of equal size
    # (conceptually right-padding with zeros when k does not divide n).
    bin_size = -(-n // k)  # ceil(n / k)
    permuted = perm[idx]
    bins = permuted // bin_size
    offsets = permuted % bin_size
    # Line 3-7: minimum offset per populated bin. Populated bins are seeded
    # with INT64_MAX (not the EMPTY sentinel, which would win every minimum).
    filled = np.full(k, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(filled, bins, offsets)
    populated = filled != np.iinfo(np.int64).max
    sig[populated] = filled[populated]
    if populated.all():
        return sig
    pop_idx = np.flatnonzero(populated)
    if densification == "rotation":
        # Line 8-12: densification with wraparound, direction chosen by D.
        for i in np.flatnonzero(~populated):
            if directions[i]:
                # first non-empty bin to the right (wrapping)
                pos = int(np.searchsorted(pop_idx, i))
                j = int(pop_idx[pos % pop_idx.size])
            else:
                # first non-empty bin to the left (wrapping)
                pos = int(np.searchsorted(pop_idx, i)) - 1
                j = int(pop_idx[pos])  # pos == -1 wraps to the last bin
            sig[i] = sig[j]
        return sig
    if densification == "optimal":
        # Universal-hash probing: each empty bin walks a pseudo-random
        # (but input-independent) probe sequence until a populated bin.
        # After k hashed probes the walk degrades to a linear scan from the
        # hashed start, which bounds termination at 2k attempts even when
        # the hash step shares a factor with k (69_069 ≡ 0 mod 3).
        seed_base = int.from_bytes(
            directions.astype(np.uint8).tobytes()[:8].ljust(8, b"\0"),
            "little",
        )
        for i in np.flatnonzero(~populated):
            attempt = 0
            while True:
                probe = _optimal_probe(int(i), attempt, seed_base, k)
                if populated[probe]:
                    sig[i] = sig[probe]
                    break
                attempt += 1
        return sig
    raise ValueError("densification must be 'rotation' or 'optimal'")


def _optimal_probe(i: int, attempt: int, seed_base: int, k: int) -> int:
    """Probe target for empty bin ``i`` at the given attempt number.

    Shared with the vectorized kernel
    (:func:`repro.kernels.doph.doph_signatures_bulk_numpy`) so both paths
    walk bit-identical probe sequences.
    """
    if attempt < k:
        return (1_000_003 * (i + 1) + 69_069 * attempt + seed_base) % k
    return (1_000_003 * (i + 1) + seed_base + attempt) % k


def doph_signatures_bulk(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    num_rows: int,
    perm: np.ndarray,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
    backend: str = "numpy",
    chunk_rows: int = 0,
) -> np.ndarray:
    """DOPH signatures for many binary vectors at once.

    ``(row_ids[i], item_ids[i])`` pairs list the 1-bits of ``num_rows``
    binary vectors (duplicates are harmless — the signature is a minimum).
    Returns an ``(num_rows, k)`` int64 matrix whose rows equal
    :func:`doph_signature` of the corresponding vector; all-zero rows are
    all ``EMPTY``.

    ``backend="numpy"`` (the production path of LDME's divide step) runs
    a chunked cache-blocked ``minimum.at`` scatter plus vectorized
    densification with no per-supernode Python work; ``backend="python"``
    loops the scalar signature per row and is kept as the
    differential-testing reference. Both live in :mod:`repro.kernels.doph`
    and are bit-identical. ``chunk_rows`` bounds the entries scattered per
    chunk on the numpy path (0 = auto; any value is bit-identical).
    """
    from ..kernels.doph import (
        doph_signatures_bulk_numpy,
        doph_signatures_bulk_python,
    )

    if backend == "numpy":
        return doph_signatures_bulk_numpy(
            row_ids, item_ids, num_rows, perm, k, directions,
            densification=densification, chunk_rows=chunk_rows,
        )
    if backend == "python":
        return doph_signatures_bulk_python(
            row_ids, item_ids, num_rows, perm, k, directions,
            densification=densification,
        )
    raise ValueError("backend must be 'python' or 'numpy'")


class DOPHHasher:
    """Reusable DOPH hasher: one permutation + direction vector per instance.

    LDME draws a fresh hasher every iteration (new ``h`` and ``D``); within
    an iteration the same hasher signs every supernode so equal signatures
    are comparable.
    """

    def __init__(self, universe_size: int, k: int, seed: SeedLike = None) -> None:
        if universe_size < 1:
            raise ValueError("universe_size must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.universe_size = universe_size
        self.k = k
        self.perm = random_permutation(universe_size, rng)
        self.directions = rng.integers(0, 2, size=k).astype(np.int64)

    def signature(self, nonzero_indices: np.ndarray) -> np.ndarray:
        """Signature of the binary vector with the given 1-bit positions."""
        return doph_signature(nonzero_indices, self.perm, self.k, self.directions)

    def signature_key(self, nonzero_indices: np.ndarray) -> tuple:
        """Hashable signature (for dict-based grouping in the divide step)."""
        return tuple(self.signature(nonzero_indices).tolist())
