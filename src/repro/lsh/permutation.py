"""Random bijections over the node universe.

Both the shingle divide (SWeG) and DOPH (LDME) need a random bijection
``h : {0..n-1} -> {0..n-1}``. For the graph sizes this package targets an
explicit permutation array is the fastest and simplest representation; a
Feistel-style arithmetic bijection is also provided for callers that want
O(1) memory (useful when hashing many independent permutations).
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["random_permutation", "ArithmeticBijection"]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_permutation(n: int, seed: SeedLike = None) -> np.ndarray:
    """A uniformly random permutation of ``0..n-1`` as an int64 array.

    ``perm[v]`` is the new index of ``v``; the array form makes applying the
    permutation to a whole neighbour slice a single fancy-index.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return _rng(seed).permutation(n).astype(np.int64)


class ArithmeticBijection:
    """O(1)-memory bijection ``v -> (a*v + b) mod p`` restricted to ``0..n-1``.

    ``p`` is the smallest prime >= n; values that map outside ``0..n-1`` are
    cycle-walked until they land inside. This is a standard constant-space
    substitute for an explicit permutation when ``n`` is large or when many
    independent hash functions are needed.
    """

    __slots__ = ("n", "_p", "_a", "_b")

    def __init__(self, n: int, seed: SeedLike = None) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        rng = _rng(seed)
        self.n = n
        self._p = _next_prime(n)
        self._a = int(rng.integers(1, self._p))
        self._b = int(rng.integers(0, self._p))

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Apply the bijection elementwise (vectorized, with cycle walking)."""
        values = np.asarray(values, dtype=np.int64)
        out = (self._a * values + self._b) % self._p
        # Cycle-walk any value that escaped the domain back into it.
        mask = out >= self.n
        while np.any(mask):
            out[mask] = (self._a * out[mask] + self._b) % self._p
            mask = out >= self.n
        return out

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.apply(values)


def _next_prime(n: int) -> int:
    """Smallest prime >= n (trial division; n is at most graph-sized)."""
    candidate = max(2, n)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True
