"""Comparison algorithms: SWeG, RANDOMIZED, SAGS, MoSSo and VoG."""

from .mosso import MoSSo
from .randomized import Randomized
from .sags import SAGS
from .sweg import SWeG
from .vog import Structure, VoG, VoGSummary

__all__ = ["SWeG", "Randomized", "SAGS", "MoSSo", "VoG", "VoGSummary", "Structure"]
