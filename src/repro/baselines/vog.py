"""VoG baseline (Koutra et al., 2014) — vocabulary-based MDL summarization.

VoG is *not* a correction-set summarizer: it describes a graph as a list of
interpretable structures — cliques, stars, bipartite cores, chains — chosen
to minimize a two-part MDL code length ``L(M) + L(G | M)``. The paper uses
it purely as a runtime comparison point (it is 40x+ slower than LDME on all
datasets and "goes off the figure" in the SBM experiment); we implement the
full pipeline so that comparison is real:

1. **Candidate generation** — label-propagation communities plus egonets of
   the highest-degree nodes (a stand-in for SlashBurn with the same flavour:
   hub-centred and community-centred candidate subgraphs).
2. **Structure identification** — each candidate is scored as full clique,
   near-clique, star, bipartite core and chain; the cheapest label wins.
3. **Greedy selection** ("greedy'n'forget") — structures are sorted by
   standalone quality and kept only while they reduce the running total
   code length.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..graph.graph import Graph

__all__ = ["Structure", "VoGSummary", "VoG"]

SeedLike = Union[int, np.random.Generator, None]


def _log2_star(n: int) -> float:
    """Rissanen's universal code length for positive integers."""
    if n < 1:
        return 0.0
    total = math.log2(2.865064)
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        if value <= 0:
            break
        total += value
    return total


def _log2_binom(n: int, k: int) -> float:
    """``log2 C(n, k)`` via lgamma (bits to index a k-subset of n)."""
    if k < 0 or k > n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


@dataclass(frozen=True)
class Structure:
    """One vocabulary structure covering a node set."""

    kind: str                      # "fc" | "nc" | "st" | "bc" | "ch"
    nodes: Tuple[int, ...]         # covered nodes (hub first for stars)
    extra: Tuple[int, ...] = ()    # second side for bipartite cores
    cost: float = 0.0              # model bits L(s)
    error_cost: float = 0.0        # bits to correct deviations inside cover


@dataclass
class VoGSummary:
    """Output of VoG: the selected structures and total code length."""

    num_nodes: int
    num_edges: int
    structures: List[Structure] = field(default_factory=list)
    total_bits: float = 0.0
    baseline_bits: float = 0.0
    seconds: float = 0.0
    algorithm: str = "VoG"

    @property
    def bit_savings(self) -> float:
        """Bits saved versus encoding every edge individually."""
        return self.baseline_bits - self.total_bits


class VoG:
    """Vocabulary-of-graphs summarizer.

    Parameters
    ----------
    max_candidates:
        Cap on candidate subgraphs scored (the expensive part).
    min_size / max_size:
        Candidate subgraph size window.
    lp_rounds:
        Label propagation rounds for community candidates.
    seed:
        Seed for label propagation tie-breaks.
    """

    name = "VoG"

    def __init__(
        self,
        max_candidates: int = 200,
        min_size: int = 3,
        max_size: int = 100,
        lp_rounds: int = 5,
        seed: int = 0,
        candidate_source: str = "labelprop",
    ) -> None:
        if min_size < 2:
            raise ValueError("min_size must be >= 2")
        if max_size < min_size:
            raise ValueError("max_size must be >= min_size")
        if candidate_source not in ("labelprop", "slashburn"):
            raise ValueError(
                "candidate_source must be 'labelprop' or 'slashburn'"
            )
        self.max_candidates = max_candidates
        self.min_size = min_size
        self.max_size = max_size
        self.lp_rounds = lp_rounds
        self.seed = seed
        self.candidate_source = candidate_source

    # ------------------------------------------------------------------
    def summarize(self, graph: Graph) -> VoGSummary:
        """Run candidate generation, labeling and greedy selection."""
        tic = time.perf_counter()
        candidates = self._candidates(graph)
        scored: List[Structure] = []
        for nodes in candidates:
            structure = self._best_structure(graph, nodes)
            if structure is not None:
                scored.append(structure)
        # Standalone quality: bits saved per covered edge, best first.
        scored.sort(key=lambda s: s.cost + s.error_cost)
        baseline = self._baseline_bits(graph)
        selected: List[Structure] = []
        covered: Set[Tuple[int, int]] = set()
        total = baseline
        for structure in scored:
            new_edges = self._covered_edges(graph, structure) - covered
            if not new_edges:
                continue
            # Keep the structure iff describing it beats leaving its edges
            # to the per-edge baseline code ("greedy'n'forget").
            per_edge = baseline / max(1, graph.num_edges)
            gain = per_edge * len(new_edges) - (
                structure.cost + structure.error_cost
            )
            if gain > 0:
                selected.append(structure)
                covered |= new_edges
                total -= gain
        summary = VoGSummary(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            structures=selected,
            total_bits=total,
            baseline_bits=baseline,
            seconds=time.perf_counter() - tic,
        )
        return summary

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    def _candidates(self, graph: Graph) -> List[Tuple[int, ...]]:
        candidates: List[Tuple[int, ...]] = []
        if self.candidate_source == "slashburn":
            # The original VoG's generator: SlashBurn spokes + hub egonets.
            from ..graph.traversal import slashburn

            _, spokes = slashburn(graph, hub_count=max(1, graph.num_nodes // 100))
            for spoke in spokes:
                if self.min_size <= spoke.size <= self.max_size:
                    candidates.append(tuple(sorted(spoke.tolist())))
        else:
            communities = self._label_propagation(graph)
            for community in communities:
                if self.min_size <= len(community) <= self.max_size:
                    candidates.append(tuple(sorted(community)))
        # Egonets of the top-degree nodes (hub-centred candidates).
        degrees = graph.degrees()
        hubs = np.argsort(degrees)[::-1][: max(1, self.max_candidates // 2)]
        for hub in hubs.tolist():
            ego = [hub] + graph.neighbors(hub).tolist()
            if self.min_size <= len(ego) <= self.max_size:
                candidates.append(tuple(sorted(ego)))
        # Dedupe, keep deterministic order, cap.
        unique = sorted(set(candidates))
        return unique[: self.max_candidates]

    def _label_propagation(self, graph: Graph) -> List[List[int]]:
        rng = np.random.default_rng(self.seed)
        labels = np.arange(graph.num_nodes, dtype=np.int64)
        order = np.arange(graph.num_nodes)
        for _ in range(self.lp_rounds):
            rng.shuffle(order)
            changed = False
            for v in order.tolist():
                nbrs = graph.neighbors(v)
                if nbrs.size == 0:
                    continue
                neighbor_labels = labels[nbrs]
                values, counts = np.unique(neighbor_labels, return_counts=True)
                best = int(values[int(np.argmax(counts))])
                if best != labels[v]:
                    labels[v] = best
                    changed = True
            if not changed:
                break
        groups: Dict[int, List[int]] = {}
        for v, label in enumerate(labels.tolist()):
            groups.setdefault(label, []).append(v)
        return list(groups.values())

    # ------------------------------------------------------------------
    # structure identification
    # ------------------------------------------------------------------
    def _best_structure(
        self, graph: Graph, nodes: Sequence[int]
    ) -> Optional[Structure]:
        node_set = set(nodes)
        internal = 0
        degrees_in = {v: 0 for v in nodes}
        for v in nodes:
            for u in graph.neighbors(v).tolist():
                if u in node_set:
                    degrees_in[v] += 1
                    if u > v:
                        internal += 1
        n = len(nodes)
        pairs = n * (n - 1) // 2
        if internal == 0:
            return None
        options: List[Structure] = []
        model_bits = _log2_star(n) + _log2_binom(graph.num_nodes, n)
        # Full clique: errors are the missing pairs.
        options.append(
            Structure(
                kind="fc",
                nodes=tuple(nodes),
                cost=model_bits,
                error_cost=_log2_binom(pairs, pairs - internal),
            )
        )
        # Near clique: encode which pairs are present.
        options.append(
            Structure(
                kind="nc",
                nodes=tuple(nodes),
                cost=model_bits,
                error_cost=_log2_binom(pairs, internal),
            )
        )
        # Star: hub = max internal degree; errors = deviations from a star.
        hub = max(nodes, key=lambda v: degrees_in[v])
        star_edges = degrees_in[hub]
        non_star = internal - star_edges
        missing_spokes = (n - 1) - star_edges
        options.append(
            Structure(
                kind="st",
                nodes=(hub, *sorted(node_set - {hub})),
                cost=model_bits + math.log2(max(2, n)),
                error_cost=_log2_binom(pairs, non_star + missing_spokes),
            )
        )
        # Bipartite core: split by a 2-coloring BFS heuristic.
        side_a, side_b, bc_errors = self._bipartite_split(graph, nodes, node_set)
        if side_a and side_b:
            options.append(
                Structure(
                    kind="bc",
                    nodes=tuple(sorted(side_a)),
                    extra=tuple(sorted(side_b)),
                    cost=model_bits + _log2_binom(n, len(side_a)),
                    error_cost=_log2_binom(pairs, bc_errors),
                )
            )
        # Chain: a path covering the nodes; errors = off-path edges plus
        # missing path edges (approximated from internal degree profile).
        chain_missing = sum(
            1 for v in nodes if degrees_in[v] == 0
        ) + max(0, internal - (n - 1))
        options.append(
            Structure(
                kind="ch",
                nodes=tuple(nodes),
                cost=model_bits + _log2_star(n),
                error_cost=_log2_binom(pairs, min(pairs, chain_missing + max(0, (n - 1) - internal))),
            )
        )
        return min(options, key=lambda s: s.cost + s.error_cost)

    def _bipartite_split(
        self, graph: Graph, nodes: Sequence[int], node_set: Set[int]
    ) -> Tuple[List[int], List[int], int]:
        """Greedy 2-coloring; returns (side A, side B, monochromatic edges)."""
        color: Dict[int, int] = {}
        for start in nodes:
            if start in color:
                continue
            color[start] = 0
            stack = [start]
            while stack:
                v = stack.pop()
                for u in graph.neighbors(v).tolist():
                    if u in node_set and u not in color:
                        color[u] = 1 - color[v]
                        stack.append(u)
        errors = 0
        for v in nodes:
            for u in graph.neighbors(v).tolist():
                if u in node_set and u > v and color[u] == color[v]:
                    errors += 1
        side_a = [v for v in nodes if color.get(v, 0) == 0]
        side_b = [v for v in nodes if color.get(v, 0) == 1]
        return side_a, side_b, errors

    # ------------------------------------------------------------------
    # code lengths
    # ------------------------------------------------------------------
    def _baseline_bits(self, graph: Graph) -> float:
        """Bits to encode the whole edge set one edge at a time."""
        if graph.num_edges == 0:
            return 0.0
        return graph.num_edges * 2 * math.log2(max(2, graph.num_nodes))

    def _covered_edges(
        self, graph: Graph, structure: Structure
    ) -> Set[Tuple[int, int]]:
        nodes = set(structure.nodes) | set(structure.extra)
        edges: Set[Tuple[int, int]] = set()
        for v in structure.nodes + structure.extra:
            for u in graph.neighbors(v).tolist():
                if u in nodes and u > v:
                    edges.add((v, u))
        return edges
