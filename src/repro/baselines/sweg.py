"""SWeG baseline (Shin et al., WWW 2019) — the prior state of the art.

Same outer loop as LDME but with the three un-optimized phases the paper
targets:

* **Divide** by a single random shingle per supernode — few, large groups.
* **Merge** candidates ranked by *SuperJaccard* (node-level supervector
  scans), with the exact Saving evaluated only for the chosen candidate.
* **Encode** with the per-supernode algorithm (hashtable churn growing with
  ``|S|``) instead of the sort-based encoder.

Every deviation from LDME is a policy choice in :mod:`repro.core`, so the
timing gaps measured in the benchmarks isolate exactly the paper's claimed
improvements.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.base import BaseSummarizer
from ..core.divide import DivideStats, shingle_divide
from ..core.merge import MergeStats, merge_group_superjaccard
from ..core.partition import SupernodePartition
from ..graph.graph import Graph

__all__ = ["SWeG"]


class SWeG(BaseSummarizer):
    """The SWeG summarizer.

    Parameters
    ----------
    iterations:
        Number of divide+merge rounds ``T``.
    epsilon:
        Lossy error bound (0 = lossless).
    seed:
        Seed for shingles and merge order.
    max_group_size:
        When > 0, oversized shingle groups are recursively re-split (SWeG's
        practical refinement). 0 keeps the paper's plain behaviour.
    encoder:
        Defaults to the per-supernode encoder SWeG is described with; pass
        ``"sorted"`` to ablate LDME's encoder inside SWeG.
    """

    name = "SWeG"

    def __init__(
        self,
        iterations: int = 20,
        epsilon: float = 0.0,
        seed: int = 0,
        max_group_size: int = 0,
        encoder: str = "per-supernode",
        cost_model: str = "exact",
        early_stop_rounds: int = 0,
        track_compression: bool = False,
    ) -> None:
        super().__init__(
            iterations=iterations,
            epsilon=epsilon,
            seed=seed,
            encoder=encoder,
            cost_model=cost_model,
            early_stop_rounds=early_stop_rounds,
            track_compression=track_compression,
        )
        if max_group_size < 0:
            raise ValueError("max_group_size must be >= 0")
        self.max_group_size = max_group_size

    # ------------------------------------------------------------------
    def divide(
        self,
        graph: Graph,
        partition: SupernodePartition,
        rng: np.random.Generator,
    ) -> Tuple[List[List[int]], DivideStats]:
        """Single-shingle divide (optionally re-splitting huge groups)."""
        return shingle_divide(
            graph, partition, rng, max_group_size=self.max_group_size
        )

    def merge_one_group(
        self,
        graph: Graph,
        partition: SupernodePartition,
        group: List[int],
        threshold: float,
        rng: np.random.Generator,
    ) -> MergeStats:
        """SuperJaccard candidate search + single Saving check."""
        return merge_group_superjaccard(
            graph, partition, group, threshold, rng, cost_model=self.cost_model
        )
