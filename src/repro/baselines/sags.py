"""SAGS baseline (Khan, ICDEW 2015).

Set-based lossless summarization that replaces Saving/SuperJaccard scoring
with *simple* (unweighted) locality sensitive hashing: nodes are bucketed by
MinHash band keys of their neighbourhood sets, and candidate pairs inside a
bucket are merged when their plain Jaccard similarity clears a threshold.
Included as the historical "LSH for grouping" precursor the related-work
section contrasts LDME against (simple LSH over set similarity vs. LDME's
weighted LSH over SuperJaccard).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from ..core.encode import encode_sorted
from ..core.partition import SupernodePartition
from ..core.summary import RunStats, Summarization
from ..graph.graph import Graph
from ..lsh.minhash import MinHasher, jaccard

__all__ = ["SAGS"]


class SAGS:
    """Simple-LSH set-based summarizer.

    Parameters
    ----------
    num_hashes:
        MinHash signature length.
    bands:
        LSH bands (must divide ``num_hashes``); more bands = more candidate
        pairs = better compression, slower.
    similarity_threshold:
        Minimum plain Jaccard of the supernodes' neighbourhoods to merge.
    rounds:
        How many LSH rounds to run (fresh hash family each round).
    """

    name = "SAGS"

    def __init__(
        self,
        num_hashes: int = 8,
        bands: int = 4,
        similarity_threshold: float = 0.5,
        rounds: int = 3,
        seed: int = 0,
    ) -> None:
        if num_hashes < 1 or bands < 1 or num_hashes % bands != 0:
            raise ValueError("bands must divide num_hashes")
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.num_hashes = num_hashes
        self.bands = bands
        self.similarity_threshold = similarity_threshold
        self.rounds = rounds
        self.seed = seed

    def summarize(self, graph: Graph) -> Summarization:
        """Bucket by MinHash bands, merge similar pairs, then encode."""
        rng = np.random.default_rng(self.seed)
        partition = SupernodePartition(graph.num_nodes)
        stats = RunStats()
        tic = time.perf_counter()
        for _ in range(self.rounds):
            self._one_round(graph, partition, rng)
        stats.merge_seconds = time.perf_counter() - tic
        tic = time.perf_counter()
        encoded = encode_sorted(graph, partition)
        stats.encode_seconds = time.perf_counter() - tic
        return Summarization(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            partition=partition,
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            stats=stats,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    def _one_round(
        self,
        graph: Graph,
        partition: SupernodePartition,
        rng: np.random.Generator,
    ) -> int:
        """One LSH bucketing + greedy merge pass; returns merges done."""
        hasher = MinHasher(
            max(1, graph.num_nodes), self.num_hashes, rng
        )
        buckets: Dict[Tuple, List[int]] = {}
        neighborhoods: Dict[int, np.ndarray] = {}
        for sid in list(partition.supernode_ids()):
            neighborhood = partition.neighborhood(graph, sid)
            if neighborhood.size == 0:
                continue
            neighborhoods[sid] = neighborhood
            signature = hasher.signature(neighborhood)
            for key in hasher.band_keys(signature, self.bands):
                buckets.setdefault(key, []).append(sid)
        merges = 0
        for bucket in buckets.values():
            if len(bucket) < 2:
                continue
            alive = [sid for sid in bucket if sid in partition]
            while len(alive) >= 2:
                a = alive.pop()
                best, best_sim = None, self.similarity_threshold
                for b in alive:
                    sim = jaccard(
                        partition.neighborhood(graph, a).tolist(),
                        partition.neighborhood(graph, b).tolist(),
                    )
                    if sim >= best_sim:
                        best, best_sim = b, sim
                if best is None:
                    continue
                survivor, absorbed = partition.merge(a, best)
                alive = [sid for sid in alive if sid != absorbed]
                if survivor not in alive:
                    alive.append(survivor)
                merges += 1
        return merges
