"""RANDOMIZED baseline (Navlakha, Rastogi & Shrivastava, SIGMOD 2008).

The original correction-set summarizer: repeatedly pick a random supernode,
score every candidate within **2 hops** by exact Saving, and merge the best
pair while the savings stay positive. No dividing step — which is exactly
why SWeG (and then LDME) superseded it at scale. Included because it is the
framework's root and a useful compression-quality oracle on small graphs.
"""

from __future__ import annotations

import time
from typing import Set, Union

import numpy as np

from ..core.encode import encode_sorted
from ..core.partition import SupernodePartition
from ..core.saving import GroupAdjacency
from ..core.summary import RunStats, Summarization
from ..graph.graph import Graph

__all__ = ["Randomized"]

SeedLike = Union[int, np.random.Generator, None]


class Randomized:
    """Navlakha-style randomized greedy merging.

    Parameters
    ----------
    threshold:
        Minimum Saving to accept a merge (the original uses 0: any
        improvement). Merging stops when no candidate clears it.
    max_passes:
        Safety bound on full passes over the supernode set.
    seed:
        Seed for the random visit order.
    """

    name = "RANDOMIZED"

    def __init__(
        self,
        threshold: float = 0.0,
        max_passes: int = 10,
        seed: int = 0,
        cost_model: str = "exact",
    ) -> None:
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.threshold = threshold
        self.max_passes = max_passes
        self.seed = seed
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def _two_hop_candidates(
        self, graph: Graph, partition: SupernodePartition, sid: int
    ) -> Set[int]:
        """Supernodes within two hops of ``sid`` in the original graph."""
        node2super = partition.node2super
        candidates: Set[int] = set()
        for v in partition.members(sid):
            for u in graph.neighbors(v).tolist():
                candidates.add(int(node2super[u]))
                for w in graph.neighbors(u).tolist():
                    candidates.add(int(node2super[w]))
        candidates.discard(sid)
        return candidates

    def summarize(self, graph: Graph) -> Summarization:
        """Run randomized greedy merging to a local optimum, then encode."""
        rng = np.random.default_rng(self.seed)
        partition = SupernodePartition(graph.num_nodes)
        stats = RunStats()
        tic = time.perf_counter()
        for _ in range(self.max_passes):
            merged_any = False
            order = list(partition.supernode_ids())
            rng.shuffle(order)
            for sid in order:
                if sid not in partition:
                    continue  # merged away earlier this pass
                candidates = self._two_hop_candidates(graph, partition, sid)
                if not candidates:
                    continue
                adjacency = GroupAdjacency(
                    graph,
                    partition,
                    [sid, *candidates],
                    cost_model=self.cost_model,
                )
                best, best_saving = adjacency.best_candidate(sid, candidates)
                if best is not None and best_saving > self.threshold:
                    partition.merge(sid, best)
                    merged_any = True
            if not merged_any:
                break
        stats.merge_seconds = time.perf_counter() - tic
        tic = time.perf_counter()
        encoded = encode_sorted(graph, partition)
        stats.encode_seconds = time.perf_counter() - tic
        return Summarization(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            partition=partition,
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            stats=stats,
            algorithm=self.name,
        )
